//! Measurement-based testing on the real threaded mini-IS (paper
//! Section 5): run actual application/daemon/collector threads over OS
//! pipes and measure per-thread CPU time under the CF and BF policies.

use paradyn_testbed::{run, KernelKind, Policy, TestbedConfig};
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let (source, probe) = paradyn_testbed::self_check();
    println!("per-thread CPU accounting: {source:?} (50 ms spin measured as {probe:?})\n");

    let base = TestbedConfig {
        sampling_period: Duration::from_millis(10),
        duration: Duration::from_secs(3),
        nodes: 2,
        kernel: KernelKind::Bt,
        ..Default::default()
    };
    let mut results = vec![];
    for policy in [Policy::Cf, Policy::Bf { batch: 32 }] {
        let m = run(&TestbedConfig {
            policy,
            ..base.clone()
        })?;
        println!(
            "{:<7}  Pd CPU {:>9.3} ms  main CPU {:>9.3} ms  app CPU {:>6.2} s  \
             samples {:>5}  forwards {:>5}  latency {:>7.2?}",
            policy.label(),
            m.pd_cpu.as_secs_f64() * 1e3,
            m.main_cpu.as_secs_f64() * 1e3,
            m.app_cpu.as_secs_f64(),
            m.samples_received,
            m.forward_ops,
            m.latency_mean,
        );
        results.push(m);
    }
    let pd_red = 1.0 - results[1].pd_cpu.as_secs_f64() / results[0].pd_cpu.as_secs_f64();
    let main_red = 1.0 - results[1].main_cpu.as_secs_f64() / results[0].main_cpu.as_secs_f64();
    println!(
        "\nBF(32) vs CF: daemon CPU -{:.0}%, main-process CPU -{:.0}%",
        pd_red * 100.0,
        main_red * 100.0
    );
    println!("paper (SP-2, AIX traces): >60% daemon and ~80% main reduction");
    Ok(())
}

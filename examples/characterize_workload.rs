//! The full workload-characterization pipeline (paper Section 2.3):
//! synthesize an AIX-style trace, persist and reload it through the text
//! codec, compute Table 1 statistics, fit Table 2 distributions, and build
//! ROCC parameters for the simulator from the fits.

use paradyn_core::{run, validation_config, SimConfig};
use paradyn_stats::SplitMix64;
use paradyn_workload::{
    characterize, synthesize, table1, ProcessClass, RoccParams, SynthConfig, Trace,
};

fn main() -> std::io::Result<()> {
    // 1. "Trace" the system (synthetic SP-2 stand-in; see DESIGN.md).
    let cfg = SynthConfig {
        duration_us: 30.0e6,
        ..Default::default()
    };
    let trace = synthesize(&cfg, &mut SplitMix64(7));
    println!("synthesized {} trace records (30 s of pvmbt on one node)", trace.len());

    // 2. Persist and reload — the codec used for on-disk traces.
    let mut buf = Vec::new();
    trace.write_to(&mut buf)?;
    let trace = Trace::read_from(&buf[..])?;
    println!("round-tripped {} bytes through the trace codec", buf.len());

    // 3. Table 1: occupancy statistics.
    println!("\nper-class CPU occupancy (Table 1):");
    for row in table1(&trace) {
        if let Some(cpu) = row.cpu {
            println!(
                "  {:<22} mean {:>7.0} us  std {:>7.0}  min {:>5.0}  max {:>7.0}",
                row.class.label(),
                cpu.mean,
                cpu.std_dev,
                cpu.min,
                cpu.max
            );
        }
    }

    // 4. Table 2: fitted distributions.
    let ch = characterize(&trace);
    println!("\nwinning distribution fits (Table 2):");
    for class in ProcessClass::ALL {
        let fits = ch.class(class);
        println!(
            "  {:<22} cpu: {:<24} net: {}",
            class.label(),
            fits.best_cpu().map_or("-".into(), |r| r.describe()),
            fits.best_net().map_or("-".into(), |r| r.describe()),
        );
    }

    // 5. Parameterize the ROCC model from the fits and run the Table 3
    //    validation scenario with them.
    let params: RoccParams = ch.to_rocc_params(&RoccParams::default());
    let sim_cfg = SimConfig {
        params,
        ..validation_config()
    };
    let m = run(&sim_cfg);
    println!(
        "\nvalidation run with fitted parameters: app CPU {:.2} s (measured 85.71), \
         Pd CPU {:.2} s (measured 0.74)",
        m.cpu_time_s(ProcessClass::Application),
        m.cpu_time_s(ProcessClass::ParadynDaemon)
    );
    Ok(())
}

//! MPP forwarding configurations and barrier effects.
//!
//! Compares direct against binary-tree data forwarding on a 128-node MPP
//! (Section 4.4), then sweeps the application's barrier frequency
//! (Figure 28's factor) to show how synchronization stalls shift CPU share
//! from the application to the instrumentation system.

use paradyn_core::{run, Arch, Forwarding, SimConfig};
use paradyn_workload::pvmbt;

fn main() {
    let base = SimConfig {
        nodes: 128,
        batch: 32,
        duration_s: 10.0,
        ..Default::default()
    };

    println!("128-node MPP, BF(32), 40 ms sampling\n");
    println!(
        "{:>8}  {:>14}  {:>13}  {:>12}  {:>12}",
        "config", "Pd CPU %/node", "Paradyn CPU %", "app CPU %", "latency ms"
    );
    for (label, fwd) in [
        ("direct", Forwarding::Direct),
        ("tree", Forwarding::BinaryTree),
    ] {
        let m = run(&SimConfig {
            arch: Arch::Mpp { forwarding: fwd },
            ..base.clone()
        });
        println!(
            "{:>8}  {:>14.4}  {:>13.2}  {:>12.1}  {:>12.2}",
            label,
            m.pd_cpu_util_per_node * 100.0,
            m.main_cpu_util * 100.0,
            m.app_cpu_util_per_node * 100.0,
            m.latency_mean_s * 1e3
        );
    }
    println!("\nTree forwarding offloads the main process (two incoming streams instead");
    println!("of 128) at the cost of per-node merge work in the daemons.\n");

    println!("barrier sweep (direct forwarding):");
    println!(
        "{:>17}  {:>12}  {:>14}  {:>12}",
        "barrier period ms", "app CPU %", "Pd CPU %/node", "barrier ops"
    );
    for bp_ms in [f64::INFINITY, 100.0, 10.0, 1.0] {
        let mut cfg = SimConfig {
            arch: Arch::Mpp {
                forwarding: Forwarding::Direct,
            },
            ..base.clone()
        };
        if bp_ms.is_finite() {
            cfg.app = pvmbt().with_barriers(bp_ms * 1e3);
        }
        let m = run(&cfg);
        println!(
            "{:>17}  {:>12.1}  {:>14.4}  {:>12}",
            if bp_ms.is_finite() {
                format!("{bp_ms}")
            } else {
                "none".into()
            },
            m.app_cpu_util_per_node * 100.0,
            m.pd_cpu_util_per_node * 100.0,
            m.barrier_ops
        );
    }
    println!("\nFrequent barriers idle the application (waiting on the slowest peer)");
    println!("while barrier-event samples raise the daemons' CPU share (Figure 28).");
}

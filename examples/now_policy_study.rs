//! A NOW "what-if" study: how do the CF and BF policies trade daemon
//! overhead against monitoring latency as the sampling period varies?
//!
//! This is the workflow of the paper's Section 4.2, driven through the
//! public API with replicated runs and 90% confidence intervals.

use paradyn_core::{run_replicated, Arch, SimConfig};

fn main() {
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 8,
        duration_s: 10.0,
        ..Default::default()
    };
    println!("8-node NOW, one instrumented app process per node, 5 replications\n");
    println!(
        "{:>9}  {:>7}  {:>22}  {:>22}  {:>14}",
        "period ms", "policy", "Pd CPU util/node (90% CI)", "fwd latency ms (CI)", "throughput/s"
    );
    for period_ms in [2.0, 8.0, 40.0] {
        for (label, batch) in [("CF", 1usize), ("BF(32)", 32)] {
            let cfg = SimConfig {
                sampling_period_us: period_ms * 1e3,
                batch,
                ..base.clone()
            };
            let r = run_replicated(&cfg, 5, 0.90);
            println!(
                "{:>9}  {:>7}  {:>11.4}% ± {:<8.4}  {:>10.3} ± {:<9.3}  {:>12.0}",
                period_ms,
                label,
                r.pd_cpu_util_per_node.mean * 100.0,
                r.pd_cpu_util_per_node.half_width * 100.0,
                r.latency_s.mean * 1e3,
                r.latency_s.half_width * 1e3,
                r.throughput_per_s.mean,
            );
        }
    }
    println!("\nReading: BF cuts the daemon's direct CPU overhead by several times at");
    println!("every sampling rate; the price is batch-accumulation latency. This is");
    println!("the feedback that led the Paradyn developers to implement BF (Section 4.5).");
}

//! The Section 6 extension in action: adaptive batch regulation.
//!
//! The paper closes by noting that "with an appropriate model for the IS,
//! users can specify tolerable limits for IS overheads ... The IS can use
//! the model to adapt its behavior in order to regulate overheads"
//! (after Paradyn's dynamic cost model). This example gives each daemon a
//! CPU budget and lets the controller pick the batch size, comparing the
//! result against the static CF and BF policies.

use paradyn_core::{run, AdaptiveBatch, Arch, SimConfig};

fn main() {
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 8,
        sampling_period_us: 5_000.0,
        duration_s: 20.0,
        ..Default::default()
    };
    println!("8-node NOW, 5 ms sampling (200 samples/s/node), 20 s\n");
    println!(
        "{:<22} {:>13} {:>14} {:>12} {:>11}",
        "policy", "Pd CPU %/node", "full latency ms", "mean batch", "adjustments"
    );

    let report = |label: &str, cfg: &SimConfig| {
        let m = run(cfg);
        println!(
            "{:<22} {:>13.3} {:>14.1} {:>12.1} {:>11}",
            label,
            m.pd_cpu_util_per_node * 100.0,
            m.latency_mean_s * 1e3,
            m.mean_daemon_batch,
            m.batch_adjustments
        );
    };

    report("CF (static)", &base);
    report(
        "BF(64) (static)",
        &SimConfig {
            batch: 64,
            ..base.clone()
        },
    );
    for budget in [0.04, 0.02, 0.015] {
        report(
            &format!("adaptive ({}% budget)", budget * 100.0),
            &SimConfig {
                adaptive: Some(AdaptiveBatch {
                    target_pd_util: budget,
                    interval_us: 250_000.0,
                    min_batch: 1,
                    max_batch: 64,
                }),
                batch_timeout_us: Some(200_000.0),
                ..base.clone()
            },
        );
    }
    println!(
        "\nReading: the controller finds the smallest batch that honours the budget —\n\
         near-CF latency when the budget is loose, near-BF overhead when it is tight,\n\
         with the flush timeout capping worst-case staleness either way."
    );
}

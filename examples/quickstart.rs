//! Quickstart: simulate the Paradyn IS under the CF and BF policies and
//! print the headline comparison the paper's study is about.

use paradyn_core::{run, validate, SimConfig};

fn main() {
    println!("== Table 3 validation (pvmbt on one SP-2 node, CF, 40 ms) ==");
    let v = validate();
    println!(
        "application CPU time: measured {:.2} s | paper-sim {:.2} s | our sim {:.2} s",
        v.reference.measured_app_cpu_s, v.reference.paper_sim_app_cpu_s, v.app_cpu_s
    );
    println!(
        "Paradyn daemon CPU time: measured {:.2} s | paper-sim {:.2} s | our sim {:.2} s",
        v.reference.measured_pd_cpu_s, v.reference.paper_sim_pd_cpu_s, v.pd_cpu_s
    );

    println!("\n== CF vs BF on an 8-node NOW, 5 ms sampling, 10 s ==");
    let base = SimConfig {
        sampling_period_us: 5_000.0,
        duration_s: 10.0,
        ..Default::default()
    };
    let cf = run(&base);
    let bf = run(&SimConfig { batch: 32, ..base });
    println!(
        "CF: Pd CPU/node {:.4} s  latency {:.2} ms  throughput {:.0}/s  app util {:.1}%",
        cf.pd_cpu_per_node_s,
        cf.latency_mean_s * 1e3,
        cf.throughput_per_s,
        cf.app_cpu_util_per_node * 100.0
    );
    println!(
        "BF: Pd CPU/node {:.4} s  latency {:.2} ms  throughput {:.0}/s  app util {:.1}%",
        bf.pd_cpu_per_node_s,
        bf.latency_mean_s * 1e3,
        bf.throughput_per_s,
        bf.app_cpu_util_per_node * 100.0
    );
    let reduction = 1.0 - bf.pd_cpu_per_node_s / cf.pd_cpu_per_node_s;
    println!("BF reduces direct daemon overhead by {:.0}%", reduction * 100.0);
}

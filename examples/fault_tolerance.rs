//! Graceful degradation under injected faults: the robustness cost of
//! batching.
//!
//! Daemons crash (and recover) on a seeded exponential schedule, and each
//! crash takes the daemon's unread pipe backlog and its in-memory batch
//! with it. CF daemons forward every sample immediately, so a crash kills
//! almost nothing in flight; a BF(64) daemon dies holding up to 63
//! samples. This example runs the same faulty workload under both
//! policies and three pipe overflow policies, and prints the loss
//! breakdown the new fault metrics expose.

use paradyn_core::{
    run, Arch, DaemonCrashFaults, FaultPlan, LinkFaults, OverflowPolicy, SimConfig,
};

fn main() {
    let faults = |overflow| FaultPlan {
        overflow,
        // A 1.2 s outage at 5 ms sampling backs ~240 samples up behind a
        // 170-slot pipe, so the overflow policy actually has to act.
        daemon_crash: Some(DaemonCrashFaults {
            mtbf_us: 3_000_000.0,
            recovery_us: 1_200_000.0,
        }),
        link: Some(LinkFaults {
            fail_prob: 0.05,
            max_retries: 3,
            backoff_base_us: 5_000.0,
        }),
        stall: None,
    };
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 8,
        sampling_period_us: 5_000.0,
        duration_s: 30.0,
        ..Default::default()
    };
    println!(
        "8-node NOW, 5 ms sampling, 30 s; daemon MTBF 3 s, recovery 1.2 s,\n\
         5% link failures with 3 retries\n"
    );
    println!(
        "{:<22} {:>10} {:>11} {:>10} {:>9} {:>11} {:>12}",
        "policy", "deliver %", "lost/crash", "lost link", "crashes", "downtime s", "wr.block s"
    );

    let report = |label: &str, cfg: &SimConfig| {
        let m = run(cfg);
        let per_crash = if m.daemon_crashes > 0 {
            m.lost_daemon_crash as f64 / m.daemon_crashes as f64
        } else {
            0.0
        };
        println!(
            "{:<22} {:>10.2} {:>11.1} {:>10} {:>9} {:>11.2} {:>12.3}",
            label,
            100.0 * m.received_samples as f64 / m.emitted_samples.max(1) as f64,
            per_crash,
            m.lost_link,
            m.daemon_crashes,
            m.daemon_downtime_s,
            m.writer_block_time_s,
        );
    };

    for (label, batch) in [("CF", 1usize), ("BF(64)", 64)] {
        for (oname, ov) in [
            ("block", OverflowPolicy::Block),
            ("drop-new", OverflowPolicy::DropNewest),
            ("drop-old", OverflowPolicy::DropOldest),
        ] {
            report(
                &format!("{label} / {oname}"),
                &SimConfig {
                    batch,
                    faults: faults(ov),
                    ..base.clone()
                },
            );
        }
    }
    println!(
        "\nReading: BF loses far more samples per crash than CF — the batch dies with\n\
         the daemon — while blocking pipes convert daemon downtime into writer-block\n\
         time and lossy pipes convert it into overflow loss instead."
    );
}

//! How many Paradyn daemons does an SMP need?
//!
//! Reproduces the Section 4.3.2 question on a 16-CPU shared-memory system:
//! under CF a single daemon is swamped by 32 application processes, while
//! under BF one daemon keeps up — so extra daemons only help CF.

use paradyn_core::{run, Arch, SimConfig};

fn main() {
    let base = SimConfig {
        arch: Arch::Smp,
        nodes: 16,
        apps_per_node: 32,
        sampling_period_us: 40_000.0,
        duration_s: 10.0,
        ..Default::default()
    };
    let offered = 32.0 / 0.040;
    println!("16-CPU SMP, 32 app processes, 40 ms sampling (offered {offered:.0} samples/s)\n");
    println!(
        "{:>7}  {:>4}  {:>12}  {:>13}  {:>12}  {:>8}",
        "policy", "Pds", "throughput/s", "IS CPU %/node", "app CPU %", "blocked"
    );
    for (label, batch) in [("CF", 1usize), ("BF(32)", 32)] {
        for pds in [1usize, 2, 4] {
            let m = run(&SimConfig {
                pds,
                batch,
                ..base.clone()
            });
            println!(
                "{:>7}  {:>4}  {:>12.0}  {:>13.3}  {:>12.1}  {:>8}",
                label,
                pds,
                m.throughput_per_s,
                m.is_cpu_util_per_node * 100.0,
                m.app_cpu_util_per_node * 100.0,
                m.blocked_deposits
            );
        }
    }
    println!("\nReading: CF throughput falls short of the offered load with one daemon");
    println!("and recovers with more; BF delivers the full load with a single daemon —");
    println!("\"batching of data samples provides adequate computational resources so");
    println!("that one Paradyn daemon is sufficient\" (Section 4.3.2).");
}

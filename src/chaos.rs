//! Chaos search: randomized fault/overload scenarios run against the
//! model's invariant oracles, with failing scenarios shrunk to minimal
//! reproductions by the in-tree property harness.
//!
//! A *scenario* is a full [`SimConfig`] drawn from a [`Gen`]: architecture,
//! scale, overflow policy, an arbitrary composition of the three fault
//! classes, and optionally an overload ramp plus a degradation controller
//! with randomized watermarks. Every scenario's RNG seed is derived from a
//! master seed through the dedicated `CHAOS_SCENARIO` stream
//! ([`paradyn_core::model::stream_kind`]), so the chaos suite perturbs no
//! other stream and two suites with the same master seed explore the same
//! scenario space.
//!
//! Each scenario is checked against four oracles:
//!
//! 1. **Conservation** — `emitted == received + lost + shed + in-flight`,
//!    the shed total matches its per-tier breakdown, and protected tiers
//!    are never shed.
//! 2. **Thread invariance** — replicated runs are bit-identical at 1 and 4
//!    worker threads.
//! 3. **Calendar equivalence** — the timing-wheel and binary-heap calendars
//!    end in byte-identical canonical state; a mismatch is localized with
//!    [`rewind_bisect`] and the first divergent `(time, event)` pair is
//!    included in the failure report.
//! 4. **Snapshot equivalence** — a snapshot taken mid-run (possibly
//!    mid-shed) restores to the exact final state of an uninterrupted run.
//!
//! On failure, [`paradyn_stats::check`] shrinks the scenario's raw draw
//! tape by repeated halving — driving the config toward fewer nodes, the
//! simplest architecture, fewer fault classes, and no controller — before
//! reporting, so the surviving reproduction is close to minimal.

use paradyn_core::model::stream_kind;
use paradyn_core::{
    build_with_calendar, run, run_replicated_threads, Arch, ConsumerStallFaults,
    DaemonCrashFaults, DegradationConfig, FaultPlan, Forwarding, LinkFaults, OverflowPolicy,
    OverloadRamp, RoccModel, SimConfig, SimMetrics,
};
use paradyn_des::{rewind_bisect, CalendarKind, Sim, SimTime, Streams};
use paradyn_stats::check::{check, Failure, Gen, PropResult};

/// Default master seed for the chaos suite (override per call site).
pub const DEFAULT_MASTER_SEED: u64 = 0xC4A0_5EED;

/// Derive the simulation seed for scenario `index` from `master` via the
/// dedicated chaos stream, leaving every model stream untouched.
pub fn scenario_seed(master: u64, index: u64) -> u64 {
    Streams::new(master)
        .stream3(stream_kind::CHAOS_SCENARIO, index, 0)
        .next_u64()
}

/// Draw a full chaos scenario. Every draw maps smaller raw words to
/// simpler values (first choice, fewer nodes, `false`), so tape shrinking
/// minimizes the scenario.
pub fn gen_scenario(g: &mut Gen, master: u64) -> SimConfig {
    let arch = *g.choice(&[
        Arch::Now {
            contention_free: true,
        },
        Arch::Now {
            contention_free: false,
        },
        Arch::Smp,
        Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
    ]);
    let nodes = match arch {
        Arch::Mpp { .. } => g.usize_in(2, 9),
        _ => g.usize_in(1, 5),
    };
    let batch = *g.choice(&[1usize, 4, 8]);
    let overflow = *g.choice(&[
        OverflowPolicy::Block,
        OverflowPolicy::DropNewest,
        OverflowPolicy::DropOldest,
    ]);
    let faults = FaultPlan {
        overflow,
        daemon_crash: g.bool().then(|| DaemonCrashFaults {
            mtbf_us: g.f64_in(20_000.0, 200_000.0),
            recovery_us: g.f64_in(5_000.0, 50_000.0),
        }),
        link: g.bool().then(|| LinkFaults {
            fail_prob: g.f64_in(0.01, 0.3),
            max_retries: g.u64_in(1, 5) as u32,
            backoff_base_us: g.f64_in(1_000.0, 10_000.0),
        }),
        stall: g.bool().then(|| ConsumerStallFaults {
            interval_us: g.f64_in(10_000.0, 100_000.0),
            stall_us: g.f64_in(2_000.0, 20_000.0),
        }),
    };
    let duration_s = g.f64_in(0.05, 0.25);
    let degradation = g.bool().then(|| DegradationConfig {
        tiers: g.usize_in(2, 5),
        keep_tiers: 1,
        pipe_hi: g.f64_in(0.4, 0.7),
        pipe_lo: g.f64_in(0.1, 0.35),
        daemon_hi: g.usize_in(4, 12),
        daemon_lo: g.usize_in(1, 4),
        recover_period_us: g.f64_in(2_000.0, 20_000.0),
        hysteresis_us: g.f64_in(5_000.0, 50_000.0),
        ..Default::default()
    });
    let overload = g.bool().then(|| OverloadRamp {
        at_s: duration_s * g.f64_in(0.1, 0.5),
        factor: g.f64_in(1.5, 8.0),
    });
    let mut params = paradyn_workload::RoccParams::default();
    // Pipes small enough that overflow/watermark machinery can engage
    // within the short horizon, but never smaller than the batch (the
    // config validator rejects that as a BF deadlock).
    params.pipe_capacity = (*g.choice(&[8usize, 16, 170])).max(batch);
    let index = g.u64_in(0, 1 << 16);
    SimConfig {
        arch,
        nodes,
        apps_per_node: g.usize_in(1, 5),
        batch,
        sampling_period_us: *g.choice(&[500.0, 1_000.0, 2_000.0, 4_000.0]),
        duration_s,
        seed: scenario_seed(master, index),
        params,
        faults,
        degradation,
        overload,
        ..Default::default()
    }
}

/// Like [`gen_scenario`], but the degradation controller and an early
/// aggressive overload ramp are always active, over small pipes and
/// several apps per daemon — nearly every drawn scenario actually sheds.
pub fn gen_degraded_scenario(g: &mut Gen, master: u64) -> SimConfig {
    let mut cfg = gen_scenario(g, master);
    cfg.params.pipe_capacity = 8.max(cfg.batch);
    cfg.apps_per_node = cfg.apps_per_node.max(3);
    cfg.sampling_period_us = cfg.sampling_period_us.min(1_000.0);
    cfg.duration_s = cfg.duration_s.max(0.1);
    cfg.degradation = Some(DegradationConfig {
        tiers: 4,
        keep_tiers: 2,
        pipe_hi: 0.4,
        pipe_lo: 0.2,
        daemon_hi: 4,
        daemon_lo: 1,
        recover_period_us: 5_000.0,
        hysteresis_us: 10_000.0,
        ..Default::default()
    });
    cfg.overload = Some(OverloadRamp {
        at_s: cfg.duration_s * 0.2,
        factor: g.f64_in(4.0, 8.0),
    });
    cfg
}

/// Oracle 1: extended sample conservation and tier protection.
pub fn oracle_conservation(cfg: &SimConfig) -> Result<(), String> {
    let m = run(cfg);
    conservation_violation(cfg, &m).map_or(Ok(()), Err)
}

/// The conservation check itself, usable against externally produced
/// metrics (the mutation self-check feeds it deliberately corrupted ones).
pub fn conservation_violation(cfg: &SimConfig, m: &SimMetrics) -> Option<String> {
    let accounted = m.received_samples + m.samples_lost + m.shed_samples + m.samples_in_flight;
    if m.emitted_samples != accounted {
        return Some(format!(
            "conservation violated: emitted={} != received={} + lost={} + shed={} + in_flight={}",
            m.emitted_samples, m.received_samples, m.samples_lost, m.shed_samples,
            m.samples_in_flight
        ));
    }
    let loss_classes =
        m.lost_overflow + m.lost_while_blocked + m.lost_daemon_crash + m.lost_link;
    if m.samples_lost != loss_classes {
        return Some(format!(
            "loss breakdown violated: lost={} != overflow={} + blocked={} + crash={} + link={}",
            m.samples_lost, m.lost_overflow, m.lost_while_blocked, m.lost_daemon_crash,
            m.lost_link
        ));
    }
    if m.shed_samples != m.shed_by_tier.iter().sum::<u64>() {
        return Some(format!(
            "shed total {} does not match tier breakdown {:?}",
            m.shed_samples, m.shed_by_tier
        ));
    }
    if let Some(deg) = &cfg.degradation {
        for tier in 0..deg.keep_tiers.min(m.shed_by_tier.len()) {
            if m.shed_by_tier[tier] != 0 {
                return Some(format!(
                    "protected tier {tier} was shed: {:?}",
                    m.shed_by_tier
                ));
            }
        }
    } else if m.shed_samples != 0 {
        return Some(format!(
            "shed {} samples with no degradation config",
            m.shed_samples
        ));
    }
    if m.rejected_deposits != 0 {
        return Some(format!("{} deposits rejected", m.rejected_deposits));
    }
    None
}

/// Oracle 2: replicated runs are bit-identical at 1 and 4 threads.
pub fn oracle_thread_invariance(cfg: &SimConfig) -> Result<(), String> {
    let serial = run_replicated_threads(cfg, 3, 0.90, 1);
    let parallel = run_replicated_threads(cfg, 3, 0.90, 4);
    for (rep, (a, b)) in serial.runs.iter().zip(&parallel.runs).enumerate() {
        let (fa, fb) = (fingerprint(a), fingerprint(b));
        if fa != fb {
            return Err(format!(
                "thread-count divergence at rep {rep}:\n  1 thread: {fa}\n  4 threads: {fb}"
            ));
        }
    }
    Ok(())
}

/// Oracle 3: timing-wheel and binary-heap calendars agree byte-for-byte;
/// mismatches come back with the first divergent event located by
/// [`rewind_bisect`].
pub fn oracle_calendar_equivalence(cfg: &SimConfig) -> Result<(), String> {
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    let run_on = |kind: CalendarKind| {
        let mut sim = build_with_calendar(cfg, kind);
        sim.run_until(horizon);
        sim.state_payload()
    };
    if run_on(CalendarKind::Wheel) == run_on(CalendarKind::Heap) {
        return Ok(());
    }
    let report = match rewind_bisect(
        || build_with_calendar(cfg, CalendarKind::Wheel),
        || build_with_calendar(cfg, CalendarKind::Heap),
        horizon,
    ) {
        Ok(Some(d)) => format!("first divergence: {d}"),
        Ok(None) => "not reproducible under rewind_bisect".to_string(),
        Err(e) => format!("rewind_bisect failed: {e}"),
    };
    Err(format!("calendar backends diverge; {report}"))
}

/// Oracle 4: a mid-run snapshot/restore is bitwise invisible.
pub fn oracle_snapshot_equivalence(cfg: &SimConfig) -> Result<(), String> {
    let kind = CalendarKind::Wheel;
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    let mut full = build_with_calendar(cfg, kind);
    full.run_until(horizon);
    let reference = full.state_payload();

    let mut pre = build_with_calendar(cfg, kind);
    let split = SimTime::from_secs_f64(cfg.duration_s * 0.5);
    let bytes = pre
        .snapshot(split)
        .map_err(|e| format!("snapshot at {split:?} failed: {e}"))?;
    let mut resumed = Sim::restore(RoccModel::new(cfg.clone()), kind, &bytes)
        .map_err(|e| format!("restore failed: {e}"))?;
    resumed.run_until(horizon);
    if resumed.state_payload() != reference {
        return Err(format!(
            "snapshot/restore at {split:?} is not bitwise invisible"
        ));
    }
    Ok(())
}

/// Run all four oracles against one scenario.
pub fn check_scenario(cfg: &SimConfig) -> Result<(), String> {
    oracle_conservation(cfg)?;
    oracle_thread_invariance(cfg)?;
    oracle_calendar_equivalence(cfg)?;
    oracle_snapshot_equivalence(cfg)
}

/// Wrap a scenario generator and an oracle into a property for
/// [`paradyn_stats::check`]. Failures include the full scenario config so
/// the shrunk reproduction is directly replayable.
pub fn scenario_property<G, O>(
    master: u64,
    generate: G,
    oracle: O,
) -> impl Fn(&mut Gen) -> PropResult
where
    G: Fn(&mut Gen, u64) -> SimConfig,
    O: Fn(&SimConfig) -> Result<(), String>,
{
    move |g| {
        let cfg = generate(g, master);
        oracle(&cfg).map_err(|e| Failure::fail(format!("{e}\n  scenario: {cfg:?}")))
    }
}

/// Run the full chaos suite: random scenarios plus always-degraded
/// scenarios, each against all four oracles. Case count follows
/// `PARADYN_PROP_CASES`; failures shrink and report a minimal scenario.
pub fn run_suite(master: u64) {
    check(
        "chaos_scenarios",
        scenario_property(master, gen_scenario, |cfg| check_scenario(cfg)),
    );
    check(
        "chaos_degraded_scenarios",
        scenario_property(master, gen_degraded_scenario, |cfg| check_scenario(cfg)),
    );
}

fn fingerprint(m: &SimMetrics) -> String {
    format!("{m:?}")
}

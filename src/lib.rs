#![warn(missing_docs)]
//! # paradyn-isim — facade crate
//!
//! Re-exports the workspace members under one roof so the examples and
//! integration tests read naturally. See the individual crates for the
//! real API surface:
//!
//! * [`paradyn_des`] — discrete-event simulation kernel;
//! * [`paradyn_stats`] — distributions, fitting, factorial designs, PCA;
//! * [`paradyn_workload`] — traces and workload characterization;
//! * [`paradyn_core`] — the ROCC model of the Paradyn IS;
//! * [`paradyn_analytic`] — the operational-law analysis;
//! * [`paradyn_testbed`] — the real threaded mini-IS.
//!
//! The [`chaos`] module lives here rather than in a member crate: it
//! composes the model, the DES kernel, and the property harness into a
//! randomized scenario search with shrinking.

pub mod chaos;

pub use paradyn_analytic as analytic;
pub use paradyn_core as core_model;
pub use paradyn_des as des;
pub use paradyn_stats as stats;
pub use paradyn_testbed as testbed;
pub use paradyn_workload as workload;

#!/usr/bin/env bash
# Tier-1 verification, hermetically: build and test with the registry
# disabled, proving the workspace has no external dependencies. A clean
# checkout on a machine with no crates.io access must pass this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== fault-injection suite =="
cargo test -q --offline --test fault_injection

echo "== fault-sweep smoke (repro faults, quick scale) =="
cargo run --release --offline -p paradyn-bench --bin repro -- --scale quick faults

echo "== bench smoke (every bench once, short mode) =="
smoke_json="$(mktemp)"
for b in des_engine rocc_model policies stats_kernels time_repr; do
  PARADYN_BENCH_SMOKE=1 PARADYN_BENCH_ITERS=1 PARADYN_BENCH_WARMUP=1 \
  PARADYN_BENCH_JSON="$smoke_json" \
    cargo bench -q --offline -p paradyn-bench --bench "$b"
done

echo "== bench JSON schema check (smoke output + committed baseline) =="
cargo run --release --offline -q -p paradyn-bench --bin check_bench_json -- "$smoke_json"
rm -f "$smoke_json"
if [ -f BENCH_des.json ]; then
  cargo run --release --offline -q -p paradyn-bench --bin check_bench_json
fi

echo "verify: OK"

#!/usr/bin/env bash
# Tier-1 verification, hermetically: build and test with the registry
# disabled, proving the workspace has no external dependencies. A clean
# checkout on a machine with no crates.io access must pass this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== paradyn-lint (determinism / no-panic / hermeticity gate) =="
lint_json="$(mktemp)"
lint_t0="$(date +%s%N)"
cargo run --release --offline -q -p paradyn-lint -- --format json > "$lint_json"
lint_t1="$(date +%s%N)"
lint_ms="$(( (lint_t1 - lint_t0) / 1000000 ))"
echo "lint pass took ${lint_ms} ms"
if [ "$lint_ms" -ge 2000 ]; then
  echo "verify: FAIL — lint pass exceeded the 2 s budget" >&2
  exit 1
fi
grep -q '"clean": true' "$lint_json" || {
  echo "verify: FAIL — lint JSON did not report clean" >&2
  exit 1
}
# Schema + registry validation: the embedded rules/markers tables must
# match the compiled-in registries.
cargo run --release --offline -q -p paradyn-bench --bin check_lint_json -- "$lint_json"
rm -f "$lint_json"
# The rule registry is reachable from the CLI.
cargo run --release --offline -q -p paradyn-lint -- --explain snapshot-completeness > /dev/null
cargo run --release --offline -q -p paradyn-lint -- --explain snapshot-exempt > /dev/null

echo "== paradyn-lint mutation self-checks (seeded violations must go red) =="
mut_dir="$(mktemp -d)"
chaos_dir="$(mktemp -d)"
ratchet_dir="$(mktemp -d)"
trap 'rm -rf "$mut_dir" "$chaos_dir" "$ratchet_dir"' EXIT
# The workspace passes read the whole tree (Acc lives in crates/core, the
# conservation identity in src/chaos.rs), so the scratch copy carries the
# root package sources too.
cp Cargo.toml lint-baseline.txt "$mut_dir"/
cp -r crates src tests examples "$mut_dir"/

# Each mutation: seed one violation into the scratch tree, expect exit 1
# with the named rule in the JSON findings, then restore the file.
# Exit 1 is "findings"; 0 would mean the gate is blind, 2 an engine error.
run_lint_mutation() { # <label> <rule> <mutated-file (repo-relative)>
  local label="$1" rule="$2" file="$3"
  local out="$mut_dir/mutation.json"
  set +e
  cargo run --release --offline -q -p paradyn-lint -- \
    --root "$mut_dir" --format json > "$out" 2>&1
  local rc=$?
  set -e
  if [ "$rc" -ne 1 ]; then
    echo "verify: FAIL — $label mutation expected exit 1, got $rc" >&2
    exit 1
  fi
  if ! grep -q "\"rule\": \"$rule\"" "$out"; then
    echo "verify: FAIL — $label mutation did not produce a $rule finding" >&2
    exit 1
  fi
  cp "$file" "$mut_dir/$file"
  rm -f "$out"
  echo "mutation self-check ($label): seeded violation correctly rejected"
}

# 1. A wall-clock read in simulation code (token-level rule).
printf '\npub fn sneaky_now() -> std::time::Instant { std::time::Instant::now() }\n' \
  >> "$mut_dir/crates/des/src/lib.rs"
run_lint_mutation "wall-clock" "wall-clock" "crates/des/src/lib.rs"

# 2. One field write deleted from Persist::save for Acc — the snapshot
#    would silently drop the counter.
sed -i '/w\.put_u64(self\.emitted_samples);/d' "$mut_dir/crates/core/src/model/snapshot.rs"
run_lint_mutation "snapshot" "snapshot-completeness" "crates/core/src/model/snapshot.rs"

# 3. One counter dropped from the cross-cell merge Acc::add.
sed -i '/self\.throttle_events += o\.throttle_events;/d' "$mut_dir/crates/core/src/model/mod.rs"
run_lint_mutation "metrics-merge" "metrics-merge-completeness" "crates/core/src/model/mod.rs"

# 4. A cross-cell accumulator write outside the designated merge fns.
printf '\npub fn sneaky_merge(m: &mut RoccModel, other: usize) { m.accs[other].barrier_ops += 1; }\n' \
  >> "$mut_dir/crates/core/src/shard.rs"
run_lint_mutation "shard-purity" "shard-purity" "crates/core/src/shard.rs"

echo "== snapshot-equivalence suite (checkpoint/fork/rewind gate) =="
snap_t0="$(date +%s%N)"
cargo test -q --offline --test snapshot_equivalence
snap_t1="$(date +%s%N)"
snap_ms="$(( (snap_t1 - snap_t0) / 1000000 ))"
echo "snapshot suite took ${snap_ms} ms"
if [ "$snap_ms" -ge 60000 ]; then
  echo "verify: FAIL — snapshot suite exceeded the 60 s budget" >&2
  exit 1
fi

echo "== snapshot mutation self-check (perturbed RNG stream must go red) =="
# perturbed_restore_breaks_equivalence restores a snapshot, perturbs its RNG
# streams, and asserts the equivalence oracle notices. If it fails, the
# suite above is blind to stream-state corruption.
cargo test -q --offline --test snapshot_equivalence perturbed_restore_breaks_equivalence \
  | grep -q "1 passed" || {
  echo "verify: FAIL — snapshot mutation self-check did not run/pass" >&2
  exit 1
}
echo "snapshot mutation self-check: perturbation correctly detected"

echo "== fault-injection suite =="
cargo test -q --offline --test fault_injection

echo "== shard-determinism smoke (sharded runs bit-identical to serial) =="
shard_t0="$(date +%s%N)"
cargo test -q --offline --test sharding
shard_t1="$(date +%s%N)"
shard_ms="$(( (shard_t1 - shard_t0) / 1000000 ))"
echo "sharding suite took ${shard_ms} ms"
if [ "$shard_ms" -ge 60000 ]; then
  echo "verify: FAIL — sharding suite exceeded the 60 s budget" >&2
  exit 1
fi

echo "== lookahead mutation self-check (inflated lookahead must be caught) =="
# inflated_lookahead_is_caught_by_the_oracle runs the sharded driver with a
# lookahead far beyond the model's real forwarding floor and asserts the
# driver counts violations AND the differential oracle flags the trace. If
# it fails, the suite above could pass with an unsound window protocol.
cargo test -q --offline --test sharding inflated_lookahead_is_caught_by_the_oracle \
  | grep -q "1 passed" || {
  echo "verify: FAIL — lookahead mutation self-check did not run/pass" >&2
  exit 1
}
echo "lookahead mutation self-check: unsound window correctly detected"

echo "== chaos-search suite (randomized fault/overload scenarios + oracles) =="
chaos_t0="$(date +%s%N)"
cargo test -q --offline --test chaos
chaos_t1="$(date +%s%N)"
chaos_ms="$(( (chaos_t1 - chaos_t0) / 1000000 ))"
echo "chaos suite took ${chaos_ms} ms"
if [ "$chaos_ms" -ge 120000 ]; then
  echo "verify: FAIL — chaos suite exceeded the 120 s budget" >&2
  exit 1
fi

echo "== chaos mutation self-check (seeded conservation bug must be found and shrunk) =="
# Scratch copy of the workspace (the chaos module lives in the root crate's
# src/, the suite in tests/) with the source-side shed counter deleted:
# shed samples then vanish from the conservation identity, and the chaos
# search must find a scenario exposing it and shrink the failure.
cp Cargo.toml Cargo.lock lint-baseline.txt "$chaos_dir"/ 2>/dev/null || \
  cp Cargo.toml lint-baseline.txt "$chaos_dir"/
cp -r crates src tests examples "$chaos_dir"/
sed -i 's/self\.accs\[self\.cell\]\.shed_by_tier\[tier\] += 1;/\/* seeded bug: shed uncounted *\//' \
  "$chaos_dir/crates/core/src/model/app.rs"
grep -q "seeded bug" "$chaos_dir/crates/core/src/model/app.rs" || {
  echo "verify: FAIL — could not seed the conservation bug" >&2
  exit 1
}
chaos_out="$chaos_dir/chaos-out.txt"
set +e
( cd "$chaos_dir" && CARGO_TARGET_DIR="$chaos_dir/target" \
    cargo test -q --offline --test chaos ) > "$chaos_out" 2>&1
chaos_rc=$?
set -e
if [ "$chaos_rc" -eq 0 ]; then
  echo "verify: FAIL — chaos suite passed with a seeded conservation bug" >&2
  exit 1
fi
grep -q "conservation violated" "$chaos_out" || {
  echo "verify: FAIL — seeded bug failed for the wrong reason:" >&2
  tail -n 40 "$chaos_out" >&2
  exit 1
}
grep -q "shrunk input tape" "$chaos_out" || {
  echo "verify: FAIL — chaos failure was not shrunk to a minimal tape" >&2
  tail -n 40 "$chaos_out" >&2
  exit 1
}
echo "chaos mutation self-check: seeded bug found and shrunk"

echo "== fault-sweep smoke (repro faults, quick scale) =="
cargo run --release --offline -p paradyn-bench --bin repro -- --scale quick faults

echo "== degradation smoke (repro degradation, quick scale) =="
cargo run --release --offline -p paradyn-bench --bin repro -- --scale quick degradation

echo "== bench smoke (every bench once, short mode) =="
smoke_json="$(mktemp)"
for b in des_engine rocc_model policies stats_kernels time_repr; do
  PARADYN_BENCH_SMOKE=1 PARADYN_BENCH_ITERS=1 PARADYN_BENCH_WARMUP=1 \
  PARADYN_BENCH_JSON="$smoke_json" \
    cargo bench -q --offline -p paradyn-bench --bench "$b"
done

echo "== bench JSON schema check (smoke output + committed baseline) =="
cargo run --release --offline -q -p paradyn-bench --bin check_bench_json -- "$smoke_json"
rm -f "$smoke_json"
if [ -f BENCH_des.json ]; then
  # Non-smoke baseline: check_bench_json also enforces the throughput
  # ratchet in BENCH_floor.json (fails on regression below any floor,
  # prints a ratchet hint on sustained improvement).
  cargo run --release --offline -q -p paradyn-bench --bin check_bench_json
fi

echo "== perf-ratchet self-check (inflated floor must go red) =="
# Raise one floor above any achievable throughput in a scratch copy; the
# checker must report a regression, proving the ratchet actually bites.
cp BENCH_des.json BENCH_floor.json "$ratchet_dir"/
sed -i 's/"min_events_per_sec": 2600000\.0/"min_events_per_sec": 99000000000000.0/' \
  "$ratchet_dir/BENCH_floor.json"
set +e
cargo run --release --offline -q -p paradyn-bench --bin check_bench_json -- \
  "$ratchet_dir/BENCH_des.json" > /dev/null 2>&1
ratchet_rc=$?
set -e
if [ "$ratchet_rc" -ne 1 ]; then
  echo "verify: FAIL — ratchet self-check expected exit 1, got $ratchet_rc" >&2
  exit 1
fi
echo "perf-ratchet self-check: inflated floor correctly rejected"

echo "verify: OK"

#!/usr/bin/env bash
# Tier-1 verification, hermetically: build and test with the registry
# disabled, proving the workspace has no external dependencies. A clean
# checkout on a machine with no crates.io access must pass this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== fault-injection suite =="
cargo test -q --offline --test fault_injection

echo "== fault-sweep smoke (repro faults, quick scale) =="
cargo run --release --offline -p paradyn-bench --bin repro -- --scale quick faults

echo "verify: OK"

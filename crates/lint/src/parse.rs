//! A lightweight item parser over the token stream: per-file trees of
//! structs (with named fields), enums, impl blocks (trait + self type),
//! and fns (name + body token range).
//!
//! This is *not* a Rust parser — it recognizes just enough item structure
//! for the workspace-consistency passes (snapshot-completeness,
//! metrics-merge-completeness, shard-purity) to resolve "which struct does
//! this impl serialize" and "which tokens are inside this fn's body". It
//! must never panic and must degrade gracefully on malformed input: an
//! unparsable construct yields no item (the surrounding items still
//! parse), never an error. Conservative failure is safe because every
//! consumer treats "item not found" as "skip the check".

use crate::lexer::TokKind;
use crate::source::SourceFile;

/// What kind of item a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `struct Name { fields }` / tuple / unit struct.
    Struct,
    /// `enum Name { … }`.
    Enum,
    /// `union Name { … }`.
    Union,
    /// `trait Name { … }` — children are its member fns.
    Trait,
    /// `impl [Trait for] Type { … }` — children are its member fns.
    Impl,
    /// `fn name(…) { … }` — `body` is the sig-index range of the body.
    Fn,
    /// `mod name { … }` — children are the contained items.
    Mod,
    /// `type Name = …;`
    TypeAlias,
    /// `const NAME: … = …;` / `static NAME: … = …;`
    Const,
    /// `macro_rules! name { … }` — body deliberately not descended into.
    MacroDef,
}

/// One named field of a struct (or union).
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Kind tag.
    pub kind: ItemKind,
    /// Item name; empty for impl blocks.
    pub name: String,
    /// For impls: last path segment of the implemented trait, if any
    /// (`Persist` in `impl snapshot::Persist for Acc`).
    pub impl_trait: Option<String>,
    /// For impls: last depth-0 ident of the self type (`Acc` above,
    /// `Vec` in `impl<T> Persist for Vec<T>`).
    pub impl_self: Option<String>,
    /// Named fields (structs/unions with brace bodies only).
    pub fields: Vec<FieldDef>,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// 1-based column of the introducing keyword.
    pub col: u32,
    /// Byte span start (first token of the item, attributes included).
    pub start: usize,
    /// Byte span end (one past the item's last token).
    pub end: usize,
    /// For fns with bodies: sig-index range `[open+1, close)` of the body
    /// tokens (outer braces excluded).
    pub body: Option<(usize, usize)>,
    /// Contained items (mods, traits, impls).
    pub children: Vec<Item>,
}

/// Parse a file's item tree.
pub fn parse_items(file: &SourceFile) -> Vec<Item> {
    let mut p = Parser { f: file, n: 0 };
    p.container_body(file.sig.len())
}

struct Parser<'a> {
    f: &'a SourceFile,
    /// Cursor: position in the file's significant-token list.
    n: usize,
}

impl<'a> Parser<'a> {
    fn tok(&self, n: usize) -> Option<&crate::lexer::Token> {
        self.f.sig_tok(n)
    }

    fn is_punct(&self, n: usize, p: u8) -> bool {
        self.f.sig_is_punct(n, p)
    }

    fn is_ident(&self, n: usize, s: &str) -> bool {
        self.f.sig_is_ident(n, s)
    }

    fn ident_text(&self, n: usize) -> Option<&str> {
        self.tok(n).and_then(|t| {
            if t.kind == TokKind::Ident {
                Some(t.text(&self.f.text))
            } else {
                None
            }
        })
    }

    /// Byte offset one past the token at sig position `n` (or file end).
    fn end_byte(&self, n: usize) -> usize {
        self.tok(n).map_or(self.f.text.len(), |t| t.end)
    }

    /// Token kind at the cursor, bounded by the enclosing container: a
    /// malformed item may never scan past its parent's close brace.
    fn bounded_kind(&self, end: usize) -> Option<TokKind> {
        if self.n >= end {
            None
        } else {
            self.tok(self.n).map(|t| t.kind)
        }
    }

    /// Parse items until `end` (exclusive sig position). Non-item tokens
    /// are skipped one at a time, so progress is guaranteed.
    fn container_body(&mut self, end: usize) -> Vec<Item> {
        let mut items = vec![];
        while self.n < end {
            let save = self.n;
            if let Some(item) = self.try_item(end) {
                items.push(item);
            }
            if self.n <= save {
                self.n = save + 1;
            }
        }
        self.n = end;
        items
    }

    /// Skip `#[…]` / `#![…]` attributes starting at the cursor.
    fn skip_attrs(&mut self, end: usize) {
        loop {
            if !self.is_punct(self.n, b'#') || self.n >= end {
                return;
            }
            let mut m = self.n + 1;
            if self.is_punct(m, b'!') {
                m += 1;
            }
            if !self.is_punct(m, b'[') {
                return;
            }
            let mut depth = 0usize;
            while m < end {
                if self.is_punct(m, b'[') {
                    depth += 1;
                } else if self.is_punct(m, b']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                m += 1;
            }
            self.n = (m + 1).min(end);
        }
    }

    /// Skip `pub` / `pub(crate)` / `pub(in path)` visibility.
    fn skip_visibility(&mut self, end: usize) {
        if !self.is_ident(self.n, "pub") {
            return;
        }
        self.n += 1;
        if self.is_punct(self.n, b'(') {
            let mut depth = 0usize;
            let mut m = self.n;
            while m < end {
                if self.is_punct(m, b'(') {
                    depth += 1;
                } else if self.is_punct(m, b')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                m += 1;
            }
            self.n = (m + 1).min(end);
        }
    }

    /// Skip a `<…>` generics list at the cursor, if present.
    fn skip_generics(&mut self, end: usize) {
        if !self.is_punct(self.n, b'<') {
            return;
        }
        let mut depth = 0usize;
        let mut m = self.n;
        while m < end {
            if self.is_punct(m, b'<') {
                depth += 1;
            } else if self.is_punct(m, b'>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            m += 1;
        }
        self.n = (m + 1).min(end);
    }

    /// From an opening brace at sig position `open`, the matching close
    /// (or the last in-range position when unbalanced).
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut m = open;
        while m < end {
            if self.is_punct(m, b'{') {
                depth += 1;
            } else if self.is_punct(m, b'}') {
                depth -= 1;
                if depth == 0 {
                    return m;
                }
            }
            m += 1;
        }
        end.saturating_sub(1)
    }

    /// Advance to the terminating `;` of a brace-free-at-depth-0 item
    /// (use/const/static/type), tracking all three bracket kinds so
    /// `const X: Foo = Foo { a: [1; 2] };` terminates correctly.
    fn skip_to_semi(&mut self, end: usize) {
        let mut depth = 0usize;
        while self.n < end {
            match self.tok(self.n).map(|t| t.kind) {
                Some(TokKind::Punct(b'{' | b'(' | b'[')) => depth += 1,
                Some(TokKind::Punct(b'}' | b')' | b']')) => {
                    depth = depth.saturating_sub(1)
                }
                Some(TokKind::Punct(b';')) if depth == 0 => {
                    self.n += 1;
                    return;
                }
                _ => {}
            }
            self.n += 1;
        }
    }

    /// Try to parse one item at the cursor. On success the cursor is past
    /// the item; on failure the caller restores it.
    fn try_item(&mut self, end: usize) -> Option<Item> {
        let start_byte = self.tok(self.n).map(|t| t.start)?;
        self.skip_attrs(end);
        self.skip_visibility(end);
        // Fn qualifiers; a `const` followed by another qualifier or `fn`
        // is a qualifier, otherwise it introduces a const item.
        loop {
            let cur = self.ident_text(self.n);
            match cur {
                Some("unsafe") | Some("async") => self.n += 1,
                Some("default") if self.is_ident(self.n + 1, "fn") => self.n += 1,
                Some("extern")
                    if self
                        .tok(self.n + 1)
                        .is_some_and(|t| t.kind == TokKind::Str) =>
                {
                    self.n += 2
                }
                Some("const")
                    if matches!(
                        self.ident_text(self.n + 1),
                        Some("fn") | Some("unsafe") | Some("async") | Some("extern")
                    ) =>
                {
                    self.n += 1
                }
                _ => break,
            }
        }
        let kw_tok = self.tok(self.n)?;
        let (line, col) = (kw_tok.line, kw_tok.col);
        let kw = self.ident_text(self.n)?;
        match kw {
            "struct" | "union" => self.named_type(
                if kw == "struct" {
                    ItemKind::Struct
                } else {
                    ItemKind::Union
                },
                start_byte,
                line,
                col,
                end,
            ),
            "enum" => self.braced_type(ItemKind::Enum, start_byte, line, col, end),
            "trait" | "mod" => self.container(
                if kw == "trait" {
                    ItemKind::Trait
                } else {
                    ItemKind::Mod
                },
                start_byte,
                line,
                col,
                end,
            ),
            "impl" => self.impl_block(start_byte, line, col, end),
            "fn" => self.fn_item(start_byte, line, col, end),
            "type" => {
                self.n += 1;
                let name = self.ident_text(self.n)?.to_string();
                self.skip_to_semi(end);
                Some(self.leaf(ItemKind::TypeAlias, name, start_byte, line, col))
            }
            "const" | "static" => {
                self.n += 1;
                if self.is_ident(self.n, "mut") {
                    self.n += 1;
                }
                let name = self.ident_text(self.n)?.to_string();
                self.skip_to_semi(end);
                Some(self.leaf(ItemKind::Const, name, start_byte, line, col))
            }
            "use" | "extern" => {
                self.n += 1;
                self.skip_to_semi(end);
                // Anonymous leaf: spans matter for tiling, names do not.
                Some(self.leaf(ItemKind::Const, String::new(), start_byte, line, col))
            }
            "macro_rules" => {
                // `macro_rules ! name { … }` — the body is free-form token
                // soup; never descend into it.
                if !self.is_punct(self.n + 1, b'!') {
                    return None;
                }
                let name = self.ident_text(self.n + 2)?.to_string();
                self.n += 3;
                let open = self.n;
                if !self.is_punct(open, b'{') {
                    self.skip_to_semi(end);
                    return Some(self.leaf(ItemKind::MacroDef, name, start_byte, line, col));
                }
                let close = self.matching_brace(open, end);
                self.n = (close + 1).min(end);
                Some(Item {
                    kind: ItemKind::MacroDef,
                    name,
                    impl_trait: None,
                    impl_self: None,
                    fields: vec![],
                    line,
                    col,
                    start: start_byte,
                    end: self.end_byte(close),
                    body: None,
                    children: vec![],
                })
            }
            _ => None,
        }
    }

    fn leaf(
        &self,
        kind: ItemKind,
        name: String,
        start: usize,
        line: u32,
        col: u32,
    ) -> Item {
        Item {
            kind,
            name,
            impl_trait: None,
            impl_self: None,
            fields: vec![],
            line,
            col,
            start,
            end: self.end_byte(self.n.saturating_sub(1)),
            body: None,
            children: vec![],
        }
    }

    /// `struct` / `union`: unit (`;`), tuple (`(…);`), or named fields.
    fn named_type(
        &mut self,
        kind: ItemKind,
        start: usize,
        line: u32,
        col: u32,
        end: usize,
    ) -> Option<Item> {
        self.n += 1;
        let name = self.ident_text(self.n)?.to_string();
        self.n += 1;
        self.skip_generics(end);
        // Scan to the struct's shape marker: `;`, `(`, or `{` (a where
        // clause may intervene; it contains no braces of its own).
        let mut fields = vec![];
        let last;
        loop {
            match self.bounded_kind(end) {
                None => {
                    last = self.n.saturating_sub(1);
                    break;
                }
                Some(TokKind::Punct(b';')) => {
                    last = self.n;
                    self.n += 1;
                    break;
                }
                Some(TokKind::Punct(b'(')) => {
                    // Tuple struct: skip the parens, then the trailing `;`.
                    let mut depth = 0usize;
                    while self.n < end {
                        if self.is_punct(self.n, b'(') {
                            depth += 1;
                        } else if self.is_punct(self.n, b')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        self.n += 1;
                    }
                    self.n += 1;
                    self.skip_to_semi(end);
                    last = self.n.saturating_sub(1);
                    break;
                }
                Some(TokKind::Punct(b'{')) => {
                    let open = self.n;
                    let close = self.matching_brace(open, end);
                    fields = self.named_fields(open + 1, close);
                    self.n = (close + 1).min(end);
                    last = close;
                    break;
                }
                _ => self.n += 1,
            }
        }
        Some(Item {
            kind,
            name,
            impl_trait: None,
            impl_self: None,
            fields,
            line,
            col,
            start,
            end: self.end_byte(last),
            body: None,
            children: vec![],
        })
    }

    /// Named fields between `open+1` and `close`: at depth 0, each
    /// `[attrs] [vis] name :` starts a field; its type runs to the next
    /// depth-0 `,`.
    fn named_fields(&mut self, open: usize, close: usize) -> Vec<FieldDef> {
        let mut out = vec![];
        let save = self.n;
        self.n = open;
        while self.n < close {
            self.skip_attrs(close);
            self.skip_visibility(close);
            let at_field = self
                .ident_text(self.n)
                .is_some()
                .then(|| self.is_punct(self.n + 1, b':'))
                == Some(true);
            if at_field {
                if let (Some(t), Some(name)) = (self.tok(self.n), self.ident_text(self.n)) {
                    out.push(FieldDef {
                        name: name.to_string(),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            // Skip to the next depth-0 comma (the field separator).
            let mut depth = 0usize;
            while self.n < close {
                match self.tok(self.n).map(|t| t.kind) {
                    Some(TokKind::Punct(b'{' | b'(' | b'[' | b'<')) => depth += 1,
                    Some(TokKind::Punct(b'}' | b')' | b']' | b'>')) => {
                        depth = depth.saturating_sub(1)
                    }
                    Some(TokKind::Punct(b',')) if depth == 0 => {
                        self.n += 1;
                        break;
                    }
                    _ => {}
                }
                self.n += 1;
            }
        }
        self.n = save;
        out
    }

    /// `enum`: name, skip to the brace body, do not model variants.
    fn braced_type(
        &mut self,
        kind: ItemKind,
        start: usize,
        line: u32,
        col: u32,
        end: usize,
    ) -> Option<Item> {
        self.n += 1;
        let name = self.ident_text(self.n)?.to_string();
        self.n += 1;
        self.skip_generics(end);
        let last = loop {
            match self.bounded_kind(end) {
                None => break self.n.saturating_sub(1),
                Some(TokKind::Punct(b';')) => {
                    self.n += 1;
                    break self.n - 1;
                }
                Some(TokKind::Punct(b'{')) => {
                    let close = self.matching_brace(self.n, end);
                    self.n = (close + 1).min(end);
                    break close;
                }
                _ => self.n += 1,
            }
        };
        Some(Item {
            kind,
            name,
            impl_trait: None,
            impl_self: None,
            fields: vec![],
            line,
            col,
            start,
            end: self.end_byte(last),
            body: None,
            children: vec![],
        })
    }

    /// `trait Name { … }` / `mod name { … }`: children parsed recursively.
    fn container(
        &mut self,
        kind: ItemKind,
        start: usize,
        line: u32,
        col: u32,
        end: usize,
    ) -> Option<Item> {
        self.n += 1;
        let name = self.ident_text(self.n)?.to_string();
        self.n += 1;
        self.skip_generics(end);
        // To the body `{` or an out-lined `;` (supertraits / where clauses
        // may intervene).
        let mut children = vec![];
        let last = loop {
            match self.bounded_kind(end) {
                None => break self.n.saturating_sub(1),
                Some(TokKind::Punct(b';')) => {
                    self.n += 1;
                    break self.n - 1;
                }
                Some(TokKind::Punct(b'{')) => {
                    let open = self.n;
                    let close = self.matching_brace(open, end);
                    self.n = open + 1;
                    children = self.container_body(close);
                    self.n = (close + 1).min(end);
                    break close;
                }
                _ => self.n += 1,
            }
        };
        Some(Item {
            kind,
            name,
            impl_trait: None,
            impl_self: None,
            fields: vec![],
            line,
            col,
            start,
            end: self.end_byte(last),
            body: None,
            children,
        })
    }

    /// `impl [<…>] [!] TraitPath for SelfType { … }` or an inherent
    /// `impl [<…>] SelfType { … }`. For both paths only the last ident at
    /// bracket-depth 0 is kept — `snapshot::Persist` → `Persist`,
    /// `Vec<T>` → `Vec`, `&mut [T]` → none.
    fn impl_block(
        &mut self,
        start: usize,
        line: u32,
        col: u32,
        end: usize,
    ) -> Option<Item> {
        self.n += 1;
        self.skip_generics(end);
        if self.is_punct(self.n, b'!') {
            self.n += 1;
        }
        let mut first: Option<String> = None;
        let mut second: Option<String> = None;
        let mut saw_for = false;
        let mut depth = 0usize;
        let open = loop {
            let Some(t) = self.tok(self.n) else {
                return None;
            };
            if self.n >= end {
                return None;
            }
            match t.kind {
                TokKind::Punct(b'<' | b'(' | b'[') => depth += 1,
                TokKind::Punct(b'>' | b')' | b']') => depth = depth.saturating_sub(1),
                TokKind::Punct(b'{') if depth == 0 => break self.n,
                TokKind::Ident if depth == 0 => {
                    let s = t.text(&self.f.text);
                    if s == "for" && !saw_for {
                        saw_for = true;
                    } else if s == "where" {
                        // Type grammar ends here; scan on to the `{`.
                    } else if !matches!(s, "dyn" | "mut" | "where") {
                        let slot = if saw_for { &mut second } else { &mut first };
                        *slot = Some(s.to_string());
                    }
                }
                _ => {}
            }
            self.n += 1;
        };
        let (impl_trait, impl_self) = if saw_for {
            (first, second)
        } else {
            (None, first)
        };
        let close = self.matching_brace(open, end);
        self.n = open + 1;
        let children = self.container_body(close);
        self.n = (close + 1).min(end);
        Some(Item {
            kind: ItemKind::Impl,
            name: String::new(),
            impl_trait,
            impl_self,
            fields: vec![],
            line,
            col,
            start,
            end: self.end_byte(close),
            body: None,
            children,
        })
    }

    /// `fn name [<…>] ( … ) [-> …] [where …] { body }` (or `;` for a
    /// trait-method declaration).
    fn fn_item(
        &mut self,
        start: usize,
        line: u32,
        col: u32,
        end: usize,
    ) -> Option<Item> {
        self.n += 1;
        let name = self.ident_text(self.n)?.to_string();
        self.n += 1;
        self.skip_generics(end);
        // Parameter list.
        if self.is_punct(self.n, b'(') {
            let mut depth = 0usize;
            while self.n < end {
                if self.is_punct(self.n, b'(') {
                    depth += 1;
                } else if self.is_punct(self.n, b')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                self.n += 1;
            }
            self.n += 1;
        }
        // Return type / where clause, to the body `{` or a `;`. The only
        // braces that can appear before the body belong to bracketed
        // constructs already at depth > 0 (e.g. `-> [u8; { N }]`).
        let mut depth = 0usize;
        let (body, last) = loop {
            match self.bounded_kind(end) {
                None => break (None, self.n.saturating_sub(1)),
                Some(TokKind::Punct(b'(' | b'[' | b'<')) => {
                    depth += 1;
                    self.n += 1;
                }
                Some(TokKind::Punct(b')' | b']' | b'>')) => {
                    depth = depth.saturating_sub(1);
                    self.n += 1;
                }
                Some(TokKind::Punct(b';')) if depth == 0 => {
                    self.n += 1;
                    break (None, self.n - 1);
                }
                Some(TokKind::Punct(b'{')) if depth == 0 => {
                    let open = self.n;
                    let close = self.matching_brace(open, end);
                    self.n = (close + 1).min(end);
                    break (Some((open + 1, close)), close);
                }
                _ => self.n += 1,
            }
        };
        Some(Item {
            kind: ItemKind::Fn,
            name,
            impl_trait: None,
            impl_self: None,
            fields: vec![],
            line,
            col,
            start,
            end: self.end_byte(last),
            body,
            children: vec![],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&SourceFile::parse("crates/x/src/lib.rs", src.to_string()))
    }

    fn find<'a>(items: &'a [Item], name: &str) -> &'a Item {
        items
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no item `{name}` in {items:?}"))
    }

    #[test]
    fn struct_fields_are_collected_with_positions() {
        let src = "pub struct Acc {\n    pub cpu_busy_us: u64,\n    #[allow(dead_code)]\n    net: Vec<(u32, u64)>,\n    pub shed_by_tier: [u64; 4],\n}\n";
        let items = parse(src);
        let s = find(&items, "Acc");
        assert_eq!(s.kind, ItemKind::Struct);
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["cpu_busy_us", "net", "shed_by_tier"]);
        assert_eq!(s.fields[0].line, 2);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_named_fields() {
        let items = parse("struct T(u64, u32);\nstruct U;\nstruct W<T> where T: Copy { a: T }\n");
        assert!(find(&items, "T").fields.is_empty());
        assert!(find(&items, "U").fields.is_empty());
        assert_eq!(find(&items, "W").fields.len(), 1);
    }

    #[test]
    fn impl_trait_and_self_type_resolve_to_last_segment() {
        let src = "impl snapshot::Persist for model::Acc { fn save(&self) {} }\n\
                   impl<T: Persist> Persist for Vec<T> { }\n\
                   impl Acc { fn add(&mut self) { self.x += 1; } }\n";
        let items = parse(src);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].impl_trait.as_deref(), Some("Persist"));
        assert_eq!(items[0].impl_self.as_deref(), Some("Acc"));
        assert_eq!(items[1].impl_trait.as_deref(), Some("Persist"));
        assert_eq!(items[1].impl_self.as_deref(), Some("Vec"));
        assert_eq!(items[2].impl_trait, None);
        assert_eq!(items[2].impl_self.as_deref(), Some("Acc"));
        assert_eq!(items[2].children.len(), 1);
        assert_eq!(items[2].children[0].name, "add");
    }

    #[test]
    fn fn_bodies_are_sig_ranges_excluding_braces() {
        let src = "fn f(x: u64) -> u64 { let y = x + 1; y }\nfn decl();\n";
        let items = parse(src);
        let f = find(&items, "f");
        let (lo, hi) = f.body.expect("f has a body");
        assert!(lo < hi);
        assert_eq!(find(&items, "decl").body, None);
    }

    #[test]
    fn mods_nest_and_spans_are_ordered_and_nested() {
        let src = "mod outer {\n    struct In { a: u8 }\n    mod inner { fn g() {} }\n}\nfn after() {}\n";
        let items = parse(src);
        let outer = find(&items, "outer");
        assert_eq!(outer.children.len(), 2);
        let inner = find(&outer.children, "inner");
        assert_eq!(inner.children[0].name, "g");
        // Nesting: children inside parent span; siblings ordered.
        for c in &outer.children {
            assert!(c.start >= outer.start && c.end <= outer.end);
        }
        let after = find(&items, "after");
        assert!(after.start >= outer.end);
    }

    #[test]
    fn malformed_input_degrades_without_panicking() {
        for src in [
            "struct",
            "struct {",
            "impl {{{",
            "fn ) ( }",
            "struct S { a: , , }",
            "impl for for for {}",
            "mod m { struct T { x: u8 }",
            "#[derive(]) struct Q { b: u8 }",
        ] {
            let _ = parse(src);
        }
        // A malformed item does not eat its well-formed successor.
        let items = parse("struct ;;; struct Ok { a: u8 }\n");
        assert_eq!(find(&items, "Ok").fields.len(), 1);
    }

    #[test]
    fn const_items_and_qualified_fns_parse() {
        let src = "pub const N: usize = { 3 };\nstatic mut S: u8 = 0;\n\
                   pub(crate) const unsafe fn q() {}\nextern \"C\" fn c() {}\n\
                   macro_rules! m { ($x:expr) => { struct NotAnItem; } }\n";
        let items = parse(src);
        assert_eq!(find(&items, "N").kind, ItemKind::Const);
        assert_eq!(find(&items, "S").kind, ItemKind::Const);
        assert_eq!(find(&items, "q").kind, ItemKind::Fn);
        assert_eq!(find(&items, "c").kind, ItemKind::Fn);
        assert_eq!(find(&items, "m").kind, ItemKind::MacroDef);
        // The struct inside the macro body is not modeled as an item.
        assert!(items.iter().all(|i| i.name != "NotAnItem"));
    }
}

//! Per-file source model: token stream, test-code regions, and
//! `lint:allow` suppression comments.

use crate::lexer::{tokenize, TokKind, Token};

/// A suppression comment: `// lint:allow(<rule>): <justification>`.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// 1-based line the comment sits on. The suppression covers findings
    /// on this line and on the next line (so it can sit above the site).
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Whether a non-empty justification follows the rule name. Allows
    /// without justification are themselves findings.
    pub justified: bool,
}

/// One workspace source file, lexed and annotated.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Full source text.
    pub text: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-comment) tokens.
    pub sig: Vec<usize>,
    /// Byte ranges of test-only code: `#[cfg(test)]` mod/fn/impl bodies
    /// and `#[test]` functions.
    pub test_regions: Vec<(usize, usize)>,
    /// Whole file is test code (under `tests/`, or a `tests.rs` out-lined
    /// from a `#[cfg(test)] mod tests;`).
    pub is_test_file: bool,
    /// Suppression comments found in the file.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lex and annotate one file.
    pub fn parse(rel: &str, text: String) -> SourceFile {
        let tokens = tokenize(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            })
            .map(|(i, _)| i)
            .collect();
        let test_regions = find_test_regions(&text, &tokens, &sig);
        let allows = find_allows(&text, &tokens);
        let is_test_file = rel.starts_with("tests/")
            || rel.ends_with("/tests.rs")
            || rel.contains("/tests/");
        SourceFile {
            rel: rel.to_string(),
            text,
            tokens,
            sig,
            test_regions,
            is_test_file,
            allows,
        }
    }

    /// Is the byte offset inside test-only code (or a test-only file)?
    pub fn in_test_code(&self, byte: usize) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| byte >= s && byte < e)
    }

    /// Iterate significant tokens as `(position-in-sig, &Token)`.
    pub fn sig_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.sig.iter().enumerate().map(|(i, &ti)| (i, &self.tokens[ti]))
    }

    /// The `n`-th significant token, if any.
    pub fn sig_tok(&self, n: usize) -> Option<&Token> {
        self.sig.get(n).map(|&ti| &self.tokens[ti])
    }

    /// Does the significant token at sig-position `n` equal an identifier
    /// with this exact text?
    pub fn sig_is_ident(&self, n: usize, text: &str) -> bool {
        self.sig_tok(n)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(&self.text) == text)
    }

    /// Does the significant token at sig-position `n` equal this punct?
    pub fn sig_is_punct(&self, n: usize, p: u8) -> bool {
        self.sig_tok(n).is_some_and(|t| t.kind == TokKind::Punct(p))
    }
}

/// Find `#[cfg(test)]`-gated item bodies and `#[test]` functions by token
/// pattern + brace matching. Over-approximation is safe: marking extra code
/// as "test" only relaxes rules that skip tests, never creates findings.
fn find_test_regions(text: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let tok = |n: usize| -> Option<&Token> { sig.get(n).map(|&ti| &tokens[ti]) };
    let is_punct = |n: usize, p: u8| tok(n).is_some_and(|t| t.kind == TokKind::Punct(p));

    let mut regions = vec![];
    let mut n = 0;
    while n < sig.len() {
        if !(is_punct(n, b'#') && is_punct(n + 1, b'[')) {
            n += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let attr_start = n;
        let mut depth = 0usize;
        let mut m = n + 1;
        let mut saw_test = false;
        let mut first_ident: Option<String> = None;
        while let Some(t) = tok(m) {
            match t.kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident => {
                    let s = t.text(text);
                    if first_ident.is_none() {
                        first_ident = Some(s.to_string());
                    }
                    if s == "test" {
                        saw_test = true;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        let attr_end = m; // sig index of the closing `]`
        let is_test_attr = saw_test
            && matches!(first_ident.as_deref(), Some("test") | Some("cfg"));
        if !is_test_attr {
            n = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = attr_end + 1;
        while is_punct(k, b'#') && is_punct(k + 1, b'[') {
            let mut d = 0usize;
            let mut j = k + 1;
            while let Some(t) = tok(j) {
                match t.kind {
                    TokKind::Punct(b'[') => d += 1,
                    TokKind::Punct(b']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            k = j + 1;
        }
        // The item: find its first `{` (body start) or `;` (out-lined —
        // e.g. `#[cfg(test)] mod tests;` — nothing to mark here).
        let mut j = k;
        let body_open = loop {
            match tok(j) {
                None => break None,
                Some(t) if t.kind == TokKind::Punct(b';') => break None,
                Some(t) if t.kind == TokKind::Punct(b'{') => break Some(j),
                Some(_) => j += 1,
            }
        };
        let Some(open) = body_open else {
            n = k;
            continue;
        };
        // Match braces to the body's close.
        let mut d = 0usize;
        let mut c = open;
        let close = loop {
            match tok(c) {
                None => break c.saturating_sub(1),
                Some(t) if t.kind == TokKind::Punct(b'{') => {
                    d += 1;
                    c += 1;
                }
                Some(t) if t.kind == TokKind::Punct(b'}') => {
                    d -= 1;
                    if d == 0 {
                        break c;
                    }
                    c += 1;
                }
                Some(_) => c += 1,
            }
        };
        let start_byte = tok(attr_start).map_or(0, |t| t.start);
        let end_byte = tok(close).map_or(text.len(), |t| t.end);
        regions.push((start_byte, end_byte));
        n = close + 1;
    }
    regions
}

/// Extract `lint:allow(<rule>): <justification>` suppressions from line
/// comments.
fn find_allows(text: &str, tokens: &[Token]) -> Vec<Allow> {
    let mut out = vec![];
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text(text);
        // Doc comments (`///`, `//!`) are prose, not directives — only a
        // plain `//` comment can suppress.
        if body.starts_with("///") || body.starts_with("//!") {
            continue;
        }
        let Some(at) = body.find("lint:allow(") else {
            continue;
        };
        let rest = &body[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let justified = after
            .strip_prefix(':')
            .map(str::trim)
            .is_some_and(|j| !j.is_empty());
        out.push(Allow {
            rule,
            line: t.line,
            col: t.col,
            justified,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_body_is_a_test_region() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\npub fn also_real() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert_eq!(f.test_regions.len(), 1);
        let helper_at = src.find("helper").unwrap();
        assert!(f.in_test_code(helper_at));
        assert!(!f.in_test_code(src.find("real").unwrap()));
        assert!(!f.in_test_code(src.find("also_real").unwrap()));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_a_test_region() {
        let src = "#[test]\n#[ignore]\nfn slow_case() { body(); }\nfn prod() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(f.in_test_code(src.find("body").unwrap()));
        assert!(!f.in_test_code(src.find("prod").unwrap()));
    }

    #[test]
    fn outlined_cfg_test_mod_marks_nothing_locally() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(f.test_regions.is_empty());
        assert!(!f.in_test_code(src.find("prod").unwrap()));
    }

    #[test]
    fn tests_rs_file_is_all_test_code() {
        let f = SourceFile::parse("crates/core/src/model/tests.rs", "fn x() {}".into());
        assert!(f.in_test_code(0));
        let f2 = SourceFile::parse("tests/determinism.rs", "fn x() {}".into());
        assert!(f2.in_test_code(0));
    }

    #[test]
    fn allow_comments_parse_with_and_without_justification() {
        let src = "\
foo(); // lint:allow(panic-path): invariant — len checked above
bar(); // lint:allow(wall-clock)
// lint:allow(hermeticity):   \n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert_eq!(f.allows.len(), 3);
        assert!(f.allows[0].justified);
        assert_eq!(f.allows[0].rule, "panic-path");
        assert_eq!(f.allows[0].line, 1);
        assert!(!f.allows[1].justified);
        assert!(!f.allows[2].justified, "blank justification does not count");
    }

    #[test]
    fn allow_inside_string_literal_is_not_a_suppression() {
        let src = "let s = \"// lint:allow(panic-path): fake\";\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(f.allows.is_empty());
    }
}

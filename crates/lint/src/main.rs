//! `paradyn-lint` binary: lint the workspace, print findings, exit
//! nonzero when the gate is red.
//!
//! ```text
//! cargo run --release -p paradyn-lint -- [--root DIR] [--baseline FILE] [--format human|json]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use paradyn_lint::engine::{run, Options};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "usage: paradyn-lint [--root DIR] [--baseline FILE] [--format human|json]".to_string()
}

fn parse_args() -> Result<(Options, bool), String> {
    // Default root: the workspace this binary was built from, so plain
    // `cargo run -p paradyn-lint` lints the right tree from any cwd.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut baseline = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or_else(usage)?),
            "--baseline" => baseline = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--format" => {
                json = match args.next().ok_or_else(usage)?.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format `{other}`; {}", usage())),
                }
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`; {}", usage())),
        }
    }
    let root = root
        .canonicalize()
        .map_err(|e| format!("bad --root {}: {e}", root.display()))?;
    Ok((Options { root, baseline }, json))
}

fn main() -> ExitCode {
    let (opts, json) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.human());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("paradyn-lint: {e}");
            ExitCode::from(2)
        }
    }
}

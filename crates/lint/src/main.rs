//! `paradyn-lint` binary: lint the workspace, print findings, exit
//! nonzero when the gate is red.
//!
//! ```text
//! cargo run --release -p paradyn-lint -- [--root DIR] [--baseline FILE] [--format human|json]
//! cargo run --release -p paradyn-lint -- --explain <rule>
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use paradyn_lint::engine::{run, Options};
use paradyn_lint::{MARKERS, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    "usage: paradyn-lint [--root DIR] [--baseline FILE] [--format human|json] \
     | --explain <rule>"
        .to_string()
}

/// `--explain <rule>`: print the registry entry for one rule or pass
/// marker (or list everything for `--explain list`). Returns the process
/// exit code.
fn explain(what: &str) -> i32 {
    if what == "list" {
        for (name, _) in RULES {
            println!("{name}");
        }
        for (name, _) in MARKERS {
            println!("{name} (marker)");
        }
        return 0;
    }
    let rule = RULES.iter().find(|(n, _)| *n == what);
    let marker = MARKERS.iter().find(|(n, _)| *n == what);
    match rule.or(marker) {
        Some((name, desc)) => {
            let kind = if rule.is_some() { "rule" } else { "marker" };
            println!("{name} ({kind})\n\n{desc}");
            0
        }
        None => {
            eprintln!(
                "unknown rule `{what}`; try `--explain list` for the registry"
            );
            2
        }
    }
}

fn parse_args() -> Result<(Options, bool), String> {
    // Default root: the workspace this binary was built from, so plain
    // `cargo run -p paradyn-lint` lints the right tree from any cwd.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut baseline = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--explain" => {
                let what = args.next().ok_or_else(usage)?;
                std::process::exit(explain(&what));
            }
            "--root" => root = PathBuf::from(args.next().ok_or_else(usage)?),
            "--baseline" => baseline = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--format" => {
                json = match args.next().ok_or_else(usage)?.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format `{other}`; {}", usage())),
                }
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`; {}", usage())),
        }
    }
    let root = root
        .canonicalize()
        .map_err(|e| format!("bad --root {}: {e}", root.display()))?;
    Ok((Options { root, baseline }, json))
}

fn main() -> ExitCode {
    let (opts, json) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.human());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("paradyn-lint: {e}");
            ExitCode::from(2)
        }
    }
}

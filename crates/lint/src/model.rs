//! Workspace symbol table over the per-file item trees ([`crate::parse`]):
//! struct lookup with same-file → same-crate → unique-global resolution,
//! impl enumeration, and body-token queries. The consistency passes
//! ([`crate::passes`]) are written entirely against this module.

use crate::lexer::TokKind;
use crate::parse::{parse_items, Item, ItemKind};
use crate::source::SourceFile;

/// The parsed workspace: one item tree per source file, index-aligned
/// with `files`.
pub struct Workspace<'a> {
    /// The lexed files.
    pub files: &'a [SourceFile],
    /// `items[i]` is the item tree of `files[i]`.
    pub items: Vec<Vec<Item>>,
}

/// A reference to one item together with the file that declares it.
#[derive(Clone, Copy)]
pub struct ItemRef<'a> {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The item.
    pub item: &'a Item,
}

impl<'a> Workspace<'a> {
    /// Parse every file's item tree.
    pub fn build(files: &'a [SourceFile]) -> Workspace<'a> {
        let items = files.iter().map(parse_items).collect();
        Workspace { files, items }
    }

    /// Visit every item in every file, depth-first.
    pub fn for_each_item<'s>(&'s self, mut f: impl FnMut(ItemRef<'s>)) {
        for (fi, tree) in self.items.iter().enumerate() {
            for item in tree {
                visit(fi, item, &mut f);
            }
        }
    }

    /// Every struct with named fields, declared outside test files and
    /// test regions (test-only scaffolding types never enroll a pass).
    pub fn structs(&self) -> Vec<ItemRef<'_>> {
        let mut out = vec![];
        self.for_each_item(|r| {
            let file = &self.files[r.file];
            if matches!(r.item.kind, ItemKind::Struct | ItemKind::Union)
                && !r.item.fields.is_empty()
                && !file.in_test_code(r.item.start)
            {
                out.push(r);
            }
        });
        out
    }

    /// Every impl block outside test files and test regions.
    pub fn impls(&self) -> Vec<ItemRef<'_>> {
        let mut out = vec![];
        self.for_each_item(|r| {
            if r.item.kind == ItemKind::Impl
                && !self.files[r.file].in_test_code(r.item.start)
            {
                out.push(r);
            }
        });
        out
    }

    /// Resolve a struct name as seen from `from_file`: a struct in the
    /// same file wins, else a unique struct in the same crate, else a
    /// unique struct workspace-wide. Ambiguity resolves to `None` —
    /// conservative, since every consumer skips unresolved names.
    pub fn resolve_struct(&self, name: &str, from_file: usize) -> Option<ItemRef<'_>> {
        let all: Vec<ItemRef<'_>> = self
            .structs()
            .into_iter()
            .filter(|r| r.item.name == name)
            .collect();
        if let Some(r) = all.iter().find(|r| r.file == from_file) {
            return Some(*r);
        }
        let from_crate = crate_key(&self.files[from_file].rel);
        let in_crate: Vec<&ItemRef<'_>> = all
            .iter()
            .filter(|r| crate_key(&self.files[r.file].rel) == from_crate)
            .collect();
        match in_crate.len() {
            1 => Some(*in_crate[0]),
            0 if all.len() == 1 => Some(all[0]),
            _ => None,
        }
    }

    /// Does `name` occur as an identifier token inside a fn's body range?
    pub fn body_contains_ident(&self, file: usize, body: (usize, usize), name: &str) -> bool {
        let f = &self.files[file];
        (body.0..body.1).any(|n| f.sig_is_ident(n, name))
    }

    /// Does the struct-literal form `Name {` occur inside a fn's body
    /// range? (Used to enroll helper structs a `save`/`load` pair
    /// constructs inline.)
    pub fn body_constructs(&self, file: usize, body: (usize, usize), name: &str) -> bool {
        let f = &self.files[file];
        (body.0..body.1)
            .any(|n| f.sig_is_ident(n, name) && f.sig_is_punct(n + 1, b'{') && n + 1 < body.1)
    }

    /// Names an item tree declares anywhere in a file: item names from
    /// the tree, plus declaration keywords scanned inside fn bodies
    /// (items may be declared fn-locally; the tree does not descend into
    /// statement position).
    pub fn declared_names(&self, file: usize) -> Vec<String> {
        let f = &self.files[file];
        let mut out = vec![];
        for item in &self.items[file] {
            visit(file, item, &mut |r: ItemRef<'_>| {
                if !r.item.name.is_empty() {
                    out.push(r.item.name.clone());
                }
                if let Some((lo, hi)) = r.item.body {
                    const DECL: &[&str] =
                        &["mod", "enum", "struct", "trait", "type", "union", "fn"];
                    for n in lo..hi {
                        let is_decl = f
                            .sig_tok(n)
                            .is_some_and(|t| {
                                t.kind == TokKind::Ident
                                    && DECL.contains(&t.text(&f.text))
                            });
                        if is_decl {
                            if let Some(name) = f.sig_tok(n + 1) {
                                if name.kind == TokKind::Ident && n + 1 < hi {
                                    out.push(name.text(&f.text).to_string());
                                }
                            }
                        }
                    }
                }
            });
        }
        out.sort();
        out.dedup();
        out
    }
}

fn visit<'s>(file: usize, item: &'s Item, f: &mut impl FnMut(ItemRef<'s>)) {
    f(ItemRef { file, item });
    for c in &item.children {
        visit(file, c, f);
    }
}

/// The crate a workspace-relative path belongs to: `crates/<name>/…` →
/// `<name>`, everything else (the root package's `src/`, `tests/`,
/// `examples/`) → `""`.
pub fn crate_key(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(specs: &[(&str, &str)]) -> Vec<SourceFile> {
        specs
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src.to_string()))
            .collect()
    }

    #[test]
    fn resolution_prefers_same_file_then_same_crate_then_unique_global() {
        let fs = files(&[
            ("crates/a/src/lib.rs", "struct S { x: u8 }\nstruct OnlyA { y: u8 }\n"),
            ("crates/a/src/other.rs", "struct S { z: u8 }\n"),
            ("crates/b/src/lib.rs", "struct S { w: u8 }\nstruct Uniq { q: u8 }\n"),
        ]);
        let ws = Workspace::build(&fs);
        // Same file wins.
        let r = ws.resolve_struct("S", 0).expect("same-file S");
        assert_eq!((r.file, r.item.fields[0].name.as_str()), (0, "x"));
        // Same crate, ambiguous (two S in crate a as seen from… none): from
        // crate b the local S wins; from a third crate, three S → None.
        let fs2 = files(&[("crates/c/src/lib.rs", "fn f() {}\n")]);
        let mut all = fs.clone_into_vec();
        all.extend(fs2);
        let ws2 = Workspace::build(&all);
        assert!(ws2.resolve_struct("S", 3).is_none(), "globally ambiguous");
        // Unique global resolves cross-crate.
        let u = ws2.resolve_struct("Uniq", 3).expect("unique global");
        assert_eq!(u.file, 2);
    }

    #[test]
    fn test_region_structs_are_invisible() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "struct Real { x: u8 }\n#[cfg(test)]\nmod tests { struct Fake { y: u8 } }\n",
        )]);
        let ws = Workspace::build(&fs);
        assert!(ws.resolve_struct("Fake", 0).is_none());
        assert!(ws.resolve_struct("Real", 0).is_some());
    }

    #[test]
    fn body_queries_see_idents_and_constructions() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "struct H { a: u8 }\nfn mk() -> H { let v = 1; H { a: v } }\n",
        )]);
        let ws = Workspace::build(&fs);
        let mut body = None;
        ws.for_each_item(|r| {
            if r.item.name == "mk" {
                body = r.item.body;
            }
        });
        let body = body.expect("mk body");
        assert!(ws.body_contains_ident(0, body, "v"));
        assert!(ws.body_constructs(0, body, "H"));
        assert!(!ws.body_constructs(0, body, "v"));
    }

    #[test]
    fn declared_names_include_fn_local_items() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "mod helpers { }\nfn f() { struct Local { a: u8 } enum E { A } }\n",
        )]);
        let ws = Workspace::build(&fs);
        let names = ws.declared_names(0);
        for expect in ["helpers", "f", "Local", "E"] {
            assert!(names.iter().any(|n| n == expect), "{expect} in {names:?}");
        }
    }

    #[test]
    fn crate_keys_split_crates_from_root_package() {
        assert_eq!(crate_key("crates/core/src/model/mod.rs"), "core");
        assert_eq!(crate_key("src/chaos.rs"), "");
        assert_eq!(crate_key("tests/chaos.rs"), "");
    }

    // Small helper: Vec<SourceFile> is not Clone (SourceFile isn't), so
    // rebuild from text for the multi-workspace test above.
    trait CloneIntoVec {
        fn clone_into_vec(&self) -> Vec<SourceFile>;
    }
    impl CloneIntoVec for Vec<SourceFile> {
        fn clone_into_vec(&self) -> Vec<SourceFile> {
            self.iter()
                .map(|f| SourceFile::parse(&f.rel, f.text.clone()))
                .collect()
        }
    }
}

//! The lint rules. Each rule is a pure function from an annotated source
//! file (plus a little workspace context) to findings; the engine owns
//! file walking, suppression, and baselining.
//!
//! Every rule guards an invariant that a tier-1 test already relies on at
//! runtime (see DESIGN.md §7) — the lint makes the invariant hold for all
//! seeds and configurations, not just the ones a test happens to exercise.

use crate::lexer::TokKind;
use crate::source::SourceFile;

/// One lint finding, before suppression/baseline filtering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`], or the meta-rules `suppression`
    /// / `baseline` the engine itself emits).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Rule registry: `(name, what it enforces)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "wall-clock",
        "Instant/SystemTime are forbidden outside crates/bench and crates/testbed: \
         model and analysis code must use simulated time only, or replication is \
         no longer bit-identical",
    ),
    (
        "unordered-iteration",
        "HashMap/HashSet are forbidden in non-test code of the simulation crates \
         (core, des, analytic, workload, stats): iteration order varies between \
         runs and would break deterministic replication",
    ),
    (
        "panic-path",
        "unwrap()/expect()/panic! are forbidden on the testbed decode/I-O paths, \
         the DES hot path, and the sharded window driver: a truncated record or \
         full pipe must surface as an error, not abort the measurement",
    ),
    (
        "rng-stream-id",
        "RNG stream ids must come from the stream_kind registry; raw literal ids \
         can silently collide with an allocated stream (fault streams 11-13, \
         controller streams 14-15, chaos stream 16, shard stream 17) and \
         correlate supposedly independent draws",
    ),
    (
        "hot-path-alloc",
        "Box::new/Vec::new/.clone()/.to_vec() are forbidden in non-test code of \
         the per-event hot-path files (engine, calendar, shard driver, daemon, \
         degrade, pipe): \
         the steady state is budgeted to zero heap allocations per delivered \
         event (tests/zero_alloc.rs measures it; this rule makes it hold for \
         all paths, not just the ones the test drives)",
    ),
    (
        "hermeticity",
        "use/extern-crate paths must resolve to std or a workspace crate: the \
         build is offline-hermetic and a registry dependency would break it \
         (tests/hermetic.rs checks manifests; this rule checks sources)",
    ),
    (
        "snapshot-completeness",
        "every field of a type with a Persist/PersistState impl must be \
         referenced in both the save and the load body: a field missing from \
         either silently drops state across checkpoint/fork/rewind, which the \
         equivalence suite only spot-checks per seed — deliberate exclusions \
         carry lint:allow(snapshot-exempt) on the field",
    ),
    (
        "metrics-merge-completeness",
        "every Acc counter must appear in the cross-cell merge (Acc::add) and \
         the reporting projection (SimMetrics::from_model), and every \
         ledger-class SimMetrics field in the conservation identity \
         (conservation_violation): a counter outside any of the three leaks \
         samples past the conservation gate — deliberate exclusions carry \
         lint:allow(merge-exempt) on the field",
    ),
    (
        "shard-purity",
        "inside crates/core/src/shard.rs and crates/des/src/shard.rs, \
         model/accumulator arrays may only be indexed by the shard's own cell \
         (`cell` / `self.cell`) outside the designated partition/absorb/merge \
         fns: any other cross-cell access breaks the serial-equivalence \
         argument (DESIGN.md §11)",
    ),
];

/// Directories whose crates may read the wall clock: the bench harness and
/// the real-machine testbed are the only components whose *job* is to
/// measure real time.
const WALL_CLOCK_ALLOWED: &[&str] = &["crates/bench/", "crates/testbed/"];

/// Crates whose non-test code must not iterate unordered containers.
const SIM_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/des/src/",
    "crates/analytic/src/",
    "crates/workload/src/",
    "crates/stats/src/",
];

/// Files on the panic-sensitive paths: testbed record decode / pipe I-O,
/// and the DES engine + calendar hot path. Test code in these files is
/// covered too — a panicking test helper can mask the very error path it
/// exists to exercise — with legacy sites held by the baseline ratchet.
const PANIC_PATHS: &[&str] = &[
    "crates/testbed/src/pipes.rs",
    "crates/testbed/src/harness.rs",
    "crates/des/src/calendar.rs",
    "crates/des/src/engine.rs",
    "crates/des/src/snapshot.rs",
    "crates/core/src/model/degrade.rs",
    "crates/des/src/shard.rs",
    "src/chaos.rs",
];

/// The documented fault-stream allocation (DESIGN.md §6): ids 11-13 are
/// reserved for fault injection and must carry FAULT_* names, so an inert
/// fault plan leaves every other stream untouched.
pub const FAULT_STREAM_IDS: std::ops::RangeInclusive<u64> = 11..=13;

/// Degradation-controller stream allocation (DESIGN.md §9): ids 14-15 are
/// reserved for CTRL_* streams, so an inert degradation config leaves
/// every other stream untouched.
pub const CTRL_STREAM_IDS: std::ops::RangeInclusive<u64> = 14..=15;

/// Chaos-search stream allocation (DESIGN.md §9): id 16 is reserved for
/// CHAOS_* scenario derivation, which must never overlap a model stream.
pub const CHAOS_STREAM_IDS: std::ops::RangeInclusive<u64> = 16..=16;

/// Sharded-run stream allocation (DESIGN.md §11): id 17 is reserved for
/// SHARD_* streams (smoke/differential case derivation), which must never
/// overlap a model stream — a collision would correlate the shard suite's
/// configuration draws with the model's own randomness.
pub const SHARD_STREAM_IDS: std::ops::RangeInclusive<u64> = 17..=17;

/// Files on the per-event hot path where steady-state heap allocation is
/// budgeted to zero (`tests/zero_alloc.rs` measures it with the counting
/// allocator). Test code is exempt: an allocating test helper cannot
/// regress the measured path. Construction-time allocation is fine — hoist
/// it out of the per-event code or justify with `lint:allow`.
const HOT_PATH_ALLOC_FILES: &[&str] = &[
    "crates/des/src/engine.rs",
    "crates/des/src/calendar.rs",
    "crates/des/src/shard.rs",
    "crates/core/src/model/daemon.rs",
    "crates/core/src/model/degrade.rs",
    "crates/core/src/pipe.rs",
];

/// First path segments always permitted in `use` paths.
const STD_SEGMENTS: &[&str] = &["std", "core", "alloc", "crate", "self", "super"];

/// One `const NAME: u64 = id;` entry of a `mod stream_kind { … }` registry.
#[derive(Clone, Debug)]
pub struct StreamIdEntry {
    /// Constant name (e.g. `FAULT_CRASH`).
    pub name: String,
    /// Allocated stream id.
    pub id: u64,
    /// File that declares it.
    pub path: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

fn finding(
    rule: &'static str,
    file: &SourceFile,
    line: u32,
    col: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: file.rel.clone(),
        line,
        col,
        message,
    }
}

/// `wall-clock`: ban `Instant` / `SystemTime` identifiers outside the two
/// crates that legitimately measure real time.
pub fn wall_clock(file: &SourceFile) -> Vec<Finding> {
    if WALL_CLOCK_ALLOWED.iter().any(|p| file.rel.starts_with(p)) {
        return vec![];
    }
    let mut out = vec![];
    for (_, t) in file.sig_tokens() {
        if t.kind == TokKind::Ident {
            let s = t.text(&file.text);
            if s == "Instant" || s == "SystemTime" {
                out.push(finding(
                    "wall-clock",
                    file,
                    t.line,
                    t.col,
                    format!(
                        "wall-clock source `{s}` outside crates/bench and \
                         crates/testbed; use simulated time (SimTime) instead"
                    ),
                ));
            }
        }
    }
    out
}

/// `unordered-iteration`: ban `HashMap` / `HashSet` in non-test code of
/// the simulation crates.
pub fn unordered_iteration(file: &SourceFile) -> Vec<Finding> {
    if !SIM_CRATES.iter().any(|p| file.rel.starts_with(p)) {
        return vec![];
    }
    let mut out = vec![];
    for (_, t) in file.sig_tokens() {
        if t.kind == TokKind::Ident && !file.in_test_code(t.start) {
            let s = t.text(&file.text);
            if s == "HashMap" || s == "HashSet" {
                out.push(finding(
                    "unordered-iteration",
                    file,
                    t.line,
                    t.col,
                    format!(
                        "`{s}` in simulation-crate non-test code; iteration order \
                         is nondeterministic — use BTreeMap/BTreeSet or a Vec"
                    ),
                ));
            }
        }
    }
    out
}

/// `panic-path`: ban `.unwrap()` / `.expect(` / `panic!` in the files on
/// the decode/I-O and DES hot paths.
pub fn panic_path(file: &SourceFile) -> Vec<Finding> {
    if !PANIC_PATHS.contains(&file.rel.as_str()) {
        return vec![];
    }
    let mut out = vec![];
    for (n, t) in file.sig_tokens() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text(&file.text);
        let hit = match s {
            "unwrap" | "expect" => {
                // Method-call position: `.unwrap(` / `.expect(`.
                n > 0
                    && file.sig_is_punct(n - 1, b'.')
                    && file.sig_is_punct(n + 1, b'(')
            }
            "panic" => file.sig_is_punct(n + 1, b'!'),
            _ => false,
        };
        if hit {
            out.push(finding(
                "panic-path",
                file,
                t.line,
                t.col,
                format!(
                    "`{s}` on a panic-sensitive path; propagate the error \
                     (Result/`?`) or justify with lint:allow(panic-path)"
                ),
            ));
        }
    }
    out
}

/// `hot-path-alloc`: ban the common allocation tokens (`Box::new`,
/// `Vec::new`, `.clone()`, `.to_vec()`) in non-test code of the enrolled
/// hot-path files.
pub fn hot_path_alloc(file: &SourceFile) -> Vec<Finding> {
    if !HOT_PATH_ALLOC_FILES.contains(&file.rel.as_str()) {
        return vec![];
    }
    let mut out = vec![];
    for (n, t) in file.sig_tokens() {
        if t.kind != TokKind::Ident || file.in_test_code(t.start) {
            continue;
        }
        let s = t.text(&file.text);
        let what = match s {
            // Method-call position: `.clone(` / `.to_vec(`.
            "clone" | "to_vec"
                if n > 0
                    && file.sig_is_punct(n - 1, b'.')
                    && file.sig_is_punct(n + 1, b'(') =>
            {
                format!(".{s}()")
            }
            // Path-call position: `Box::new(` / `Vec::new(`.
            "new"
                if n >= 3
                    && file.sig_is_punct(n - 1, b':')
                    && file.sig_is_punct(n - 2, b':')
                    && file.sig_is_punct(n + 1, b'(')
                    && (file.sig_is_ident(n - 3, "Box") || file.sig_is_ident(n - 3, "Vec")) =>
            {
                let head = if file.sig_is_ident(n - 3, "Box") { "Box" } else { "Vec" };
                format!("{head}::new()")
            }
            _ => continue,
        };
        out.push(finding(
            "hot-path-alloc",
            file,
            t.line,
            t.col,
            format!(
                "`{what}` on a zero-alloc hot path; reuse a buffer or hoist the \
                 allocation to construction, or justify with \
                 lint:allow(hot-path-alloc)"
            ),
        ));
    }
    out
}

/// Collect `mod stream_kind { const NAME: u64 = <int>; … }` registries.
pub fn collect_stream_registry(file: &SourceFile) -> Vec<StreamIdEntry> {
    let mut out = vec![];
    let mut n = 0;
    let count = file.sig.len();
    while n < count {
        if !(file.sig_is_ident(n, "mod") && file.sig_is_ident(n + 1, "stream_kind")) {
            n += 1;
            continue;
        }
        // Walk the registry body.
        let mut m = n + 2;
        if !file.sig_is_punct(m, b'{') {
            n += 2;
            continue;
        }
        let mut depth = 0usize;
        while m < count {
            if file.sig_is_punct(m, b'{') {
                depth += 1;
            } else if file.sig_is_punct(m, b'}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if file.sig_is_ident(m, "const") {
                // const NAME : u64 = <int>
                let name_tok = file.sig_tok(m + 1);
                let val_tok = file.sig_tok(m + 5);
                if let (Some(name), Some(val)) = (name_tok, val_tok) {
                    if name.kind == TokKind::Ident && val.kind == TokKind::Int {
                        if let Some(id) = val.int_value(&file.text) {
                            out.push(StreamIdEntry {
                                name: name.text(&file.text).to_string(),
                                id,
                                path: file.rel.clone(),
                                line: name.line,
                            });
                        }
                    }
                }
            }
            m += 1;
        }
        n = m + 1;
    }
    out
}

/// `rng-stream-id`, per-file part: flag raw integer-literal arguments to
/// `.stream(…)` / `.stream3(…)` in non-test code — stream ids must be
/// named constants from the registry so collisions are visible in one
/// place.
pub fn rng_stream_literals(file: &SourceFile, registry: &[StreamIdEntry]) -> Vec<Finding> {
    let mut out = vec![];
    for (n, t) in file.sig_tokens() {
        if t.kind != TokKind::Ident || file.in_test_code(t.start) {
            continue;
        }
        let s = t.text(&file.text);
        if !(s == "stream" || s == "stream3") {
            continue;
        }
        if !(n > 0 && file.sig_is_punct(n - 1, b'.') && file.sig_is_punct(n + 1, b'(')) {
            continue;
        }
        let Some(arg) = file.sig_tok(n + 2) else {
            continue;
        };
        if arg.kind != TokKind::Int {
            continue;
        }
        let id = arg.int_value(&file.text);
        let clash = id.and_then(|v| registry.iter().find(|e| e.id == v));
        let mut msg = format!(
            "raw literal stream id in `.{s}({})` bypasses the stream_kind \
             registry",
            arg.text(&file.text)
        );
        if let Some(e) = clash {
            msg.push_str(&format!(
                " and collides with allocated stream {}::{} ({})",
                "stream_kind", e.name, e.id
            ));
        }
        msg.push_str("; allocate a named constant instead");
        out.push(finding("rng-stream-id", file, arg.line, arg.col, msg));
    }
    out
}

/// `rng-stream-id`, cross-file part: duplicate ids inside the collected
/// registries, and drift from the documented fault-stream allocation.
pub fn rng_registry_collisions(registry: &[StreamIdEntry]) -> Vec<Finding> {
    let mut out = vec![];
    for (i, e) in registry.iter().enumerate() {
        if let Some(prev) = registry[..i].iter().find(|p| p.id == e.id) {
            out.push(Finding {
                rule: "rng-stream-id",
                path: e.path.clone(),
                line: e.line,
                col: 1,
                message: format!(
                    "stream id {} of `{}` collides with `{}` ({}:{}); colliding \
                     streams yield correlated draws",
                    e.id, e.name, prev.name, prev.path, prev.line
                ),
            });
        }
        // Bidirectional reserved-range checks: an id inside a reserved
        // range must carry the range's prefix, and a prefixed name must
        // sit inside its range — either drift silently breaks the
        // inertness guarantee the allocation exists for.
        let ranges: [(&std::ops::RangeInclusive<u64>, &str, &str); 4] = [
            (&FAULT_STREAM_IDS, "FAULT_", "an inert fault plan"),
            (&CTRL_STREAM_IDS, "CTRL_", "an inert degradation config"),
            (&CHAOS_STREAM_IDS, "CHAOS_", "a chaos-free run"),
            (&SHARD_STREAM_IDS, "SHARD_", "an unsharded run"),
        ];
        for (range, prefix, guard) in ranges {
            let in_range = range.contains(&e.id);
            let named = e.name.starts_with(prefix);
            if in_range != named {
                out.push(Finding {
                    rule: "rng-stream-id",
                    path: e.path.clone(),
                    line: e.line,
                    col: 1,
                    message: format!(
                        "stream `{}` = {} violates the documented allocation: ids \
                         {}-{} are reserved for {prefix}* streams (DESIGN.md §6/§9) \
                         so {guard} stays bitwise-inert",
                        e.name,
                        e.id,
                        range.start(),
                        range.end()
                    ),
                });
            }
        }
    }
    out
}

/// `hermeticity`: every `use` / `extern crate` first segment must be std,
/// a path keyword, a workspace crate, or an item declared in the same
/// file — Rust 2018 uniform paths let `use bounds::X;` follow a local
/// `mod bounds;`, and `use DetailedState as S;` alias a local enum.
/// `crate_names` comes from the workspace manifests (underscore form);
/// `local_items` from the item model ([`crate::model::Workspace::declared_names`]),
/// which replaces the keyword-scan heuristic this rule used to carry.
pub fn hermeticity(
    file: &SourceFile,
    crate_names: &[String],
    local_items: &[String],
) -> Vec<Finding> {
    let allowed = |seg: &str| {
        STD_SEGMENTS.contains(&seg)
            || crate_names.iter().any(|c| c == seg)
            || local_items.iter().any(|m| m == seg)
    };
    let mut out = vec![];
    for (n, t) in file.sig_tokens() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text(&file.text);
        let (site, seg_tok) = if s == "use" {
            // First path segment: skip a leading `$` (macro `$crate`) or
            // leading `::`; a brace group (`use {a, b}`) is not used in
            // this workspace and is skipped conservatively.
            let mut m = n + 1;
            while file.sig_is_punct(m, b'$') || file.sig_is_punct(m, b':') {
                m += 1;
            }
            (t, file.sig_tok(m))
        } else if s == "extern" && file.sig_is_ident(n + 1, "crate") {
            (t, file.sig_tok(n + 2))
        } else {
            continue;
        };
        let Some(seg) = seg_tok else { continue };
        if seg.kind != TokKind::Ident {
            continue;
        }
        let seg_text = seg.text(&file.text);
        if !allowed(seg_text) {
            out.push(finding(
                "hermeticity",
                file,
                site.line,
                site.col,
                format!(
                    "`{seg_text}` is not std or a workspace crate; the build is \
                     offline-hermetic — vendor the functionality in-tree instead"
                ),
            ));
        }
    }
    out
}

/// Run every per-file rule on one file. `local_items` is the file's
/// declared-name set from the item model.
pub fn run_file_rules(
    file: &SourceFile,
    registry: &[StreamIdEntry],
    crate_names: &[String],
    local_items: &[String],
) -> Vec<Finding> {
    let mut out = wall_clock(file);
    out.extend(unordered_iteration(file));
    out.extend(panic_path(file));
    out.extend(hot_path_alloc(file));
    out.extend(rng_stream_literals(file, registry));
    out.extend(hermeticity(file, crate_names, local_items));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src.to_string())
    }

    fn names() -> Vec<String> {
        ["paradyn_des", "paradyn_stats", "paradyn_isim"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn wall_clock_flags_sim_code_but_not_bench_or_testbed() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(wall_clock(&file("crates/des/src/x.rs", src)).len(), 2);
        assert_eq!(wall_clock(&file("crates/bench/src/x.rs", src)).len(), 0);
        assert_eq!(wall_clock(&file("crates/testbed/src/x.rs", src)).len(), 0);
        // Mentions in comments and strings never count.
        let masked = "// Instant::now is banned\nlet s = \"SystemTime\";\n";
        assert_eq!(wall_clock(&file("crates/des/src/x.rs", masked)).len(), 0);
    }

    #[test]
    fn unordered_iteration_skips_tests_and_other_crates() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        let f = file("crates/core/src/x.rs", src);
        let hits = unordered_iteration(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 1);
        assert_eq!(unordered_iteration(&file("crates/lint/src/x.rs", src)).len(), 0);
    }

    #[test]
    fn panic_path_matches_calls_not_similar_names() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); \
                   z.unwrap_or(3); let expected = 1; map.expect_none; }\n";
        let hits = panic_path(&file("crates/testbed/src/pipes.rs", src));
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert_eq!(panic_path(&file("crates/testbed/src/kernels.rs", src)).len(), 0);
    }

    #[test]
    fn hot_path_alloc_flags_enrolled_files_only() {
        let src = "fn f(v: &Vec<u32>) -> Vec<u32> { let b = Box::new(1); let w = Vec::new(); \
                   let c = v.clone(); let d = v[..].to_vec(); d }\n\
                   #[cfg(test)]\nmod tests { fn t(v: &Vec<u32>) -> Vec<u32> { v.clone() } }\n";
        let hits = hot_path_alloc(&file("crates/des/src/engine.rs", src));
        assert_eq!(hits.len(), 4, "{hits:?}");
        assert!(hits[0].message.contains("Box::new()"));
        assert!(hits[1].message.contains("Vec::new()"));
        assert!(hits[2].message.contains(".clone()"));
        assert!(hits[3].message.contains(".to_vec()"));
        // Unenrolled files and test code are exempt.
        assert_eq!(hot_path_alloc(&file("crates/des/src/rng.rs", src)).len(), 0);
        // Similar-but-different tokens never match: a bare `new()`, a
        // `clone` field, `VecDeque::new`.
        let ok = "fn f() { let a = Slab::new(); let b = x.clone; let c = \
                  std::collections::VecDeque::<u32>::new(); }\n";
        assert_eq!(hot_path_alloc(&file("crates/des/src/engine.rs", ok)).len(), 0);
    }

    #[test]
    fn stream_registry_collects_and_flags_collisions() {
        let src = "mod stream_kind {\n    pub const A: u64 = 1;\n    pub const B: u64 = 1;\n    pub const FAULT_X: u64 = 11;\n    pub const ROGUE: u64 = 12;\n}\n";
        let f = file("crates/core/src/model/mod.rs", src);
        let reg = collect_stream_registry(&f);
        assert_eq!(reg.len(), 4);
        let hits = rng_registry_collisions(&reg);
        // B collides with A; ROGUE sits in the fault range without the name.
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].message.contains("collides"));
        assert!(hits[1].message.contains("FAULT_"));
    }

    #[test]
    fn reserved_ctrl_and_chaos_ranges_are_bidirectional() {
        // Seeded violations of every drift direction: unprefixed ids inside
        // the reserved ranges, and prefixed names outside them.
        let src = "mod stream_kind {\n    pub const SNEAKY: u64 = 14;\n    pub const ALSO: u64 = 16;\n    pub const HIDER: u64 = 17;\n    pub const CTRL_LOST: u64 = 3;\n    pub const CHAOS_LOST: u64 = 4;\n    pub const SHARD_LOST: u64 = 5;\n    pub const CTRL_OK: u64 = 15;\n    pub const CHAOS_OK: u64 = 16;\n    pub const SHARD_OK: u64 = 17;\n}\n";
        let f = file("crates/core/src/model/mod.rs", src);
        let reg = collect_stream_registry(&f);
        let hits = rng_registry_collisions(&reg);
        let drift: Vec<_> = hits
            .iter()
            .filter(|h| h.message.contains("violates the documented allocation"))
            .collect();
        // SNEAKY / ALSO / HIDER (inside the CTRL / CHAOS / SHARD ranges,
        // unprefixed) and CTRL_LOST / CHAOS_LOST / SHARD_LOST (prefixed,
        // out of range).
        assert_eq!(drift.len(), 6, "{drift:?}");
        assert!(drift.iter().any(|h| h.message.contains("CTRL_*")));
        assert!(drift.iter().any(|h| h.message.contains("CHAOS_*")));
        assert!(drift.iter().any(|h| h.message.contains("SHARD_*")));
        // The correctly allocated constants produce no drift findings.
        assert!(!drift.iter().any(|h| h.message.contains("`CTRL_OK`")));
        assert!(!drift.iter().any(|h| h.message.contains("`CHAOS_OK`")));
        assert!(!drift.iter().any(|h| h.message.contains("`SHARD_OK`")));
    }

    #[test]
    fn degrade_chaos_and_shard_files_are_on_the_panic_path() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(panic_path(&file("crates/core/src/model/degrade.rs", src)).len(), 1);
        assert_eq!(panic_path(&file("src/chaos.rs", src)).len(), 1);
        assert_eq!(panic_path(&file("crates/des/src/shard.rs", src)).len(), 1);
        assert_eq!(panic_path(&file("crates/core/src/model/app.rs", src)).len(), 0);
    }

    #[test]
    fn raw_literal_stream_ids_flagged_outside_tests() {
        let reg = vec![StreamIdEntry {
            name: "FAULT_CRASH".into(),
            id: 11,
            path: "crates/core/src/model/mod.rs".into(),
            line: 1,
        }];
        let src = "fn f(s: &Streams) { s.stream(11); s.stream(99); s.stream(id); }\n\
                   #[cfg(test)]\nmod tests { fn t(s: &Streams) { s.stream(11); } }\n";
        let hits = rng_stream_literals(&file("crates/des/src/x.rs", src), &reg);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].message.contains("FAULT_CRASH"));
        assert!(!hits[1].message.contains("collides"));
    }

    #[test]
    fn hermeticity_allows_std_workspace_and_local_items_only() {
        let src = "use std::io;\nuse core::fmt;\nuse crate::x;\nuse self::y;\nuse super::z;\nuse paradyn_des::Sim;\nuse bounds::B;\nuse serde::Serialize;\nextern crate rand;\n";
        let hits = hermeticity(
            &file("crates/des/src/x.rs", src),
            &names(),
            &["bounds".to_string()],
        );
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].message.contains("serde"));
        assert!(hits[1].message.contains("rand"));
    }
}

//! Workspace consistency passes over the item model ([`crate::model`]):
//!
//! * **snapshot-completeness** — every field of a type with a
//!   `Persist`/`PersistState` impl must be referenced in both the save
//!   and the load body, with `lint:allow(snapshot-exempt)` for deliberate
//!   exclusions (derived or config-owned state);
//! * **metrics-merge-completeness** — every `Acc` counter must survive
//!   the cross-cell merge (`Acc::add`, the path both replicated totals
//!   and sharded absorbs fold through) and the reporting projection
//!   (`SimMetrics::from_model`), and every ledger-class `SimMetrics`
//!   field must appear in the conservation identity
//!   (`conservation_violation`);
//! * **shard-purity** — inside the two shard drivers, indexing a model/
//!   accumulator array by anything other than the shard's own cell is
//!   confined to the designated partition/absorb/merge fns.
//!
//! Each pass reports which marker allows it consumed, so the engine's
//! suppression hygiene can flag stale `snapshot-exempt`/`merge-exempt`
//! comments exactly like unused `lint:allow`s.

use crate::model::{crate_key, ItemRef, Workspace};
use crate::parse::{FieldDef, Item, ItemKind};
use crate::rules::Finding;
use crate::source::SourceFile;

/// Marker registry: exemption annotations the passes understand, in the
/// same `lint:allow(<marker>): <justification>` comment syntax as rule
/// suppressions. A marker sits on (or directly above) a *field
/// declaration* and removes that field from a pass, where a rule allow
/// sits on a finding site.
pub const MARKERS: &[(&str, &str)] = &[
    (
        "snapshot-exempt",
        "excludes one field from snapshot-completeness: the field is \
         deliberately not serialized (rebuilt from config, derived during \
         load, or owned by the sharding scaffold) — justify with why a \
         restore reconstructs it correctly",
    ),
    (
        "merge-exempt",
        "excludes one field from metrics-merge-completeness: the field is \
         deliberately absent from the cross-cell merge, the reporting \
         projection, or the conservation identity — justify with why the \
         ledger stays balanced without it",
    ),
];

/// The outcome of the workspace passes.
pub struct PassResult {
    /// Findings, unfiltered (the engine applies suppression).
    pub findings: Vec<Finding>,
    /// Marker allows consumed, as `(file index, allow index)`.
    pub consumed: Vec<(usize, usize)>,
}

/// Run all three passes. `strict` additionally fails when a pass's anchor
/// (the `Acc`/`SimMetrics` structs, `Acc::add`, `SimMetrics::from_model`,
/// `conservation_violation`) cannot be found — a renamed anchor must turn
/// the gate red, not silently blind the pass. Single-file harnesses
/// (`lint_source`) run non-strict.
pub fn run_workspace_passes(ws: &Workspace<'_>, strict: bool) -> PassResult {
    let mut out = PassResult {
        findings: vec![],
        consumed: vec![],
    };
    snapshot_completeness(ws, &mut out);
    metrics_merge_completeness(ws, strict, &mut out);
    shard_purity(ws, &mut out);
    out
}

/// A justified marker allow covering a field declaration (same line or
/// the line above), as an index into the file's allow list.
fn field_marker(file: &SourceFile, field: &FieldDef, marker: &str) -> Option<usize> {
    file.allows.iter().position(|a| {
        a.justified
            && a.rule == marker
            && (a.line == field.line || a.line + 1 == field.line)
    })
}

/// The member fn of an impl/trait body with this name, body included.
fn member_fn<'a>(item: &'a Item, name: &str) -> Option<&'a Item> {
    item.children
        .iter()
        .find(|c| c.kind == ItemKind::Fn && c.name == name && c.body.is_some())
}

// ---------------------------------------------------------------------
// snapshot-completeness
// ---------------------------------------------------------------------

fn snapshot_completeness(ws: &Workspace<'_>, out: &mut PassResult) {
    let impls = ws.impls();
    // Self types that own a Persist/PersistState impl anywhere: helper
    // structs serialized inline by a parent impl must NOT be among them
    // (they are checked through their own impl instead).
    let persist_selfs: Vec<&str> = impls
        .iter()
        .filter(|r| is_persist_trait(r.item))
        .filter_map(|r| r.item.impl_self.as_deref())
        .collect();
    let structs = ws.structs();
    for r in &impls {
        let Some(trait_name) = r.item.impl_trait.as_deref() else {
            continue;
        };
        let (save_name, load_name) = match trait_name {
            "Persist" => ("save", "load"),
            "PersistState" => ("save_state", "load_state"),
            _ => continue,
        };
        let (Some(save), Some(load)) = (
            member_fn(r.item, save_name),
            member_fn(r.item, load_name),
        ) else {
            continue;
        };
        let (save_body, load_body) = match (save.body, load.body) {
            (Some(s), Some(l)) => (s, l),
            _ => continue,
        };
        let Some(self_name) = r.item.impl_self.as_deref() else {
            continue;
        };
        // Enroll the impl's own struct…
        let mut enrolled: Vec<ItemRef<'_>> = vec![];
        if let Some(sr) = ws.resolve_struct(self_name, r.file) {
            enrolled.push(sr);
        }
        // …plus same-crate helper structs the bodies construct inline
        // (`AppHot { … }` in an arena codec): their fields ride in this
        // frame, so drift in them is drift in this impl.
        let impl_crate = crate_key(&ws.files[r.file].rel);
        for s in &structs {
            let name = s.item.name.as_str();
            if name == self_name
                || persist_selfs.contains(&name)
                || crate_key(&ws.files[s.file].rel) != impl_crate
            {
                continue;
            }
            if ws.body_constructs(r.file, save_body, name)
                || ws.body_constructs(r.file, load_body, name)
            {
                enrolled.push(*s);
            }
        }
        for sr in enrolled {
            for field in &sr.item.fields {
                if let Some(ai) = field_marker(&ws.files[sr.file], field, "snapshot-exempt")
                {
                    out.consumed.push((sr.file, ai));
                    continue;
                }
                let in_save = ws.body_contains_ident(r.file, save_body, &field.name);
                let in_load = ws.body_contains_ident(r.file, load_body, &field.name);
                if in_save && in_load {
                    continue;
                }
                let missing = match (in_save, in_load) {
                    (false, false) => format!("`{save_name}` or `{load_name}`"),
                    (false, true) => format!("`{save_name}`"),
                    _ => format!("`{load_name}`"),
                };
                out.findings.push(Finding {
                    rule: "snapshot-completeness",
                    path: ws.files[r.file].rel.clone(),
                    line: r.item.line,
                    col: r.item.col,
                    message: format!(
                        "field `{}.{}` ({}:{}) is never referenced in {missing} of \
                         this {trait_name} impl — snapshots would silently drop it; \
                         serialize it or mark the field \
                         `lint:allow(snapshot-exempt): <why restore rebuilds it>`",
                        sr.item.name, field.name, ws.files[sr.file].rel, field.line
                    ),
                });
            }
        }
    }
}

fn is_persist_trait(item: &Item) -> bool {
    matches!(item.impl_trait.as_deref(), Some("Persist") | Some("PersistState"))
}

// ---------------------------------------------------------------------
// metrics-merge-completeness
// ---------------------------------------------------------------------

/// `SimMetrics` fields participating in the sample-conservation ledger:
/// every loss/shed class plus the identity's endpoints. Derived from the
/// field names so a new `lost_*` counter is enrolled the moment it is
/// declared.
fn is_ledger_field(name: &str) -> bool {
    name.starts_with("lost_")
        || name.starts_with("shed_")
        || matches!(
            name,
            "emitted_samples"
                | "received_samples"
                | "samples_lost"
                | "samples_in_flight"
                | "rejected_deposits"
        )
}

fn metrics_merge_completeness(ws: &Workspace<'_>, strict: bool, out: &mut PassResult) {
    let rule = "metrics-merge-completeness";
    let unique_struct = |name: &str| -> Option<ItemRef<'_>> {
        let all: Vec<ItemRef<'_>> = ws
            .structs()
            .into_iter()
            .filter(|r| r.item.name == name)
            .collect();
        (all.len() == 1).then(|| all[0])
    };
    let missing_anchor = |out: &mut PassResult, path: &str, what: &str| {
        out.findings.push(Finding {
            rule,
            path: path.to_string(),
            line: 0,
            col: 0,
            message: format!(
                "metrics-merge-completeness anchor missing: {what} — the pass \
                 cannot see the merge/conservation path and the gate must not \
                 go silently blind; restore or rename it in crates/lint/src/passes.rs"
            ),
        });
    };

    let acc = unique_struct("Acc");
    let metrics = unique_struct("SimMetrics");
    if strict {
        if acc.is_none() {
            missing_anchor(out, "<workspace>", "a unique struct `Acc`");
        }
        if metrics.is_none() {
            missing_anchor(out, "<workspace>", "a unique struct `SimMetrics`");
        }
    }

    // fn bodies: Acc::add (inherent), SimMetrics::from_model,
    // conservation_violation (free fn or member, anywhere).
    let impls = ws.impls();
    let find_member = |self_name: &str, fn_name: &str| -> Option<(usize, (usize, usize))> {
        impls
            .iter()
            .filter(|r| {
                r.item.impl_self.as_deref() == Some(self_name)
                    && (fn_name != "add" || r.item.impl_trait.is_none())
            })
            .find_map(|r| member_fn(r.item, fn_name).and_then(|f| f.body.map(|b| (r.file, b))))
    };
    let add = find_member("Acc", "add");
    let from_model = find_member("SimMetrics", "from_model");
    let conservation = {
        let mut found = None;
        ws.for_each_item(|r| {
            if found.is_none()
                && r.item.kind == ItemKind::Fn
                && r.item.name == "conservation_violation"
                && !ws.files[r.file].is_test_file
            {
                found = r.item.body.map(|b| (r.file, b));
            }
        });
        found
    };
    if strict {
        if let Some(a) = acc {
            if add.is_none() {
                missing_anchor(
                    out,
                    &ws.files[a.file].rel,
                    "fn `add` in an inherent `impl Acc` (the cross-cell merge)",
                );
            }
            if from_model.is_none() {
                missing_anchor(
                    out,
                    &ws.files[metrics.map_or(a.file, |m| m.file)].rel,
                    "fn `from_model` in `impl SimMetrics` (the reporting projection)",
                );
            }
        }
        if metrics.is_some() && conservation.is_none() {
            missing_anchor(
                out,
                &ws.files[metrics.map(|m| m.file).unwrap_or(0)].rel,
                "fn `conservation_violation` (the ledger identity)",
            );
        }
    }

    // Every Acc counter must survive the merge and the projection.
    if let Some(a) = acc {
        for field in &a.item.fields {
            if let Some(ai) = field_marker(&ws.files[a.file], field, "merge-exempt") {
                out.consumed.push((a.file, ai));
                continue;
            }
            for (what, body) in [("the cross-cell merge `Acc::add`", add),
                ("the reporting projection `SimMetrics::from_model`", from_model)]
            {
                let Some((bf, body)) = body else { continue };
                if !ws.body_contains_ident(bf, body, &field.name) {
                    out.findings.push(Finding {
                        rule,
                        path: ws.files[bf].rel.clone(),
                        line: field.line,
                        col: field.col,
                        message: format!(
                            "`Acc.{}` ({}:{}) never appears in {what} — the counter \
                             would silently vanish from replicated totals and \
                             sharded merges; fold it in or mark the field \
                             `lint:allow(merge-exempt): <why the ledger balances>`",
                            field.name, ws.files[a.file].rel, field.line
                        ),
                    });
                }
            }
        }
    }

    // Every ledger-class SimMetrics field must appear in the identity.
    if let (Some(m), Some((cf, cbody))) = (metrics, conservation) {
        for field in m.item.fields.iter().filter(|f| is_ledger_field(&f.name)) {
            if let Some(ai) = field_marker(&ws.files[m.file], field, "merge-exempt") {
                out.consumed.push((m.file, ai));
                continue;
            }
            if !ws.body_contains_ident(cf, cbody, &field.name) {
                out.findings.push(Finding {
                    rule,
                    path: ws.files[cf].rel.clone(),
                    line: field.line,
                    col: field.col,
                    message: format!(
                        "ledger field `SimMetrics.{}` ({}:{}) never appears in \
                         `conservation_violation` — a loss class outside the \
                         identity can leak samples unnoticed; extend the check or \
                         mark the field `lint:allow(merge-exempt): <why>`",
                        field.name, ws.files[m.file].rel, field.line
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// shard-purity
// ---------------------------------------------------------------------

/// The two shard drivers.
const SHARD_FILES: &[&str] = &["crates/core/src/shard.rs", "crates/des/src/shard.rs"];

/// Fns allowed to touch foreign cells: the partition/absorb/merge
/// boundary, where cross-cell movement is the whole point.
const DESIGNATED: &[&str] = &[
    "partition",
    "absorb_models",
    "absorb",
    "merge",
    "detach",
    "attach",
];

/// Model/accumulator arrays indexed by cell (or by entity id resolved
/// through a cell): one slot per scheduling cell or per entity owned by a
/// cell. Indexing these by a foreign cell outside the designated fns
/// breaks the serial-equivalence argument (DESIGN.md §11).
const MODEL_ARRAYS: &[&str] = &[
    "accs",
    "banks",
    "apps",
    "daemons",
    "pvmd_rngs",
    "other_rngs",
    "hot",
    "cold",
    "fifo",
    "pipe",
];

fn shard_purity(ws: &Workspace<'_>, out: &mut PassResult) {
    for (fi, file) in ws.files.iter().enumerate() {
        if !SHARD_FILES.contains(&file.rel.as_str()) {
            continue;
        }
        for root in &ws.items[fi] {
            each_fn(root, &mut |f: &Item| {
                if DESIGNATED.contains(&f.name.as_str()) {
                    return;
                }
                let Some((lo, hi)) = f.body else { return };
                for n in lo..hi {
                    let Some(t) = file.sig_tok(n) else { continue };
                    if t.kind != crate::lexer::TokKind::Ident
                        || file.in_test_code(t.start)
                    {
                        continue;
                    }
                    let name = t.text(&file.text);
                    if !MODEL_ARRAYS.contains(&name)
                        || !(n + 1 < hi && file.sig_is_punct(n + 1, b'['))
                    {
                        continue;
                    }
                    if index_is_own_cell(file, n + 1, hi) {
                        continue;
                    }
                    out.findings.push(Finding {
                        rule: "shard-purity",
                        path: file.rel.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{name}[…]` indexed by something other than the \
                             shard's own cell inside fn `{}` — cross-cell state \
                             access outside {DESIGNATED:?} breaks the \
                             serial-equivalence argument; route it through the \
                             partition/absorb boundary or justify with \
                             lint:allow(shard-purity)",
                            f.name
                        ),
                    });
                }
            });
        }
    }
}

/// Does the index expression opening at sig position `open` (`[`) consist
/// of exactly `cell` or `self.cell`?
fn index_is_own_cell(file: &SourceFile, open: usize, hi: usize) -> bool {
    // Collect the index tokens to the matching `]`.
    let mut depth = 0usize;
    let mut inner: Vec<usize> = vec![];
    let mut m = open;
    while m < hi + 1 {
        if file.sig_is_punct(m, b'[') {
            depth += 1;
        } else if file.sig_is_punct(m, b']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth >= 1 {
            inner.push(m);
        }
        m += 1;
    }
    match inner.len() {
        1 => file.sig_is_ident(inner[0], "cell"),
        3 => {
            file.sig_is_ident(inner[0], "self")
                && file.sig_is_punct(inner[1], b'.')
                && file.sig_is_ident(inner[2], "cell")
        }
        _ => false,
    }
}

fn each_fn(item: &Item, f: &mut impl FnMut(&Item)) {
    if item.kind == ItemKind::Fn {
        f(item);
    }
    for c in &item.children {
        each_fn(c, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(specs: &[(&str, &str)]) -> PassResult {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src.to_string()))
            .collect();
        let ws = Workspace::build(&files);
        run_workspace_passes(&ws, false)
    }

    #[test]
    fn snapshot_missing_field_in_save_is_flagged() {
        let src = "struct S { a: u64, b: u64 }\n\
                   impl Persist for S {\n\
                   fn save(&self, w: &mut Enc) { w.put_u64(self.a); }\n\
                   fn load(r: &mut Dec) -> Result<S, E> { Ok(S { a: r.u64()?, b: 0 }) }\n\
                   }\n";
        let out = run_on(&[("crates/des/src/x.rs", src)]);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        let f = &out.findings[0];
        assert_eq!(f.rule, "snapshot-completeness");
        assert!(f.message.contains("`S.b`"));
        assert!(f.message.contains("`save`"));
    }

    #[test]
    fn snapshot_exempt_marker_is_honored_and_consumed() {
        let src = "struct S {\n    a: u64,\n    // lint:allow(snapshot-exempt): derived from a at load\n    b: u64,\n}\n\
                   impl Persist for S {\n\
                   fn save(&self, w: &mut Enc) { w.put_u64(self.a); }\n\
                   fn load(r: &mut Dec) -> Result<S, E> { let a = r.u64()?; Ok(S { a, b: a * 2 }) }\n\
                   }\n";
        let out = run_on(&[("crates/des/src/x.rs", src)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.consumed.len(), 1);
    }

    #[test]
    fn snapshot_resolves_cross_file_within_crate_and_enrolls_helpers() {
        let def = "pub struct Outer { hot: Vec<Inner> }\npub struct Inner { x: u64, y: u64 }\n";
        let imp = "impl Persist for Outer {\n\
                   fn save(&self, w: &mut Enc) { for h in &self.hot { w.put_u64(h.x); w.put_u64(h.y); } }\n\
                   fn load(r: &mut Dec) -> Result<Self, E> { let hot = vec![Inner { x: r.u64()?, y: 0 }]; Ok(Outer { hot }) }\n\
                   }\n";
        // Compliant: both Inner fields appear in both bodies (y is read in
        // save and named in load's literal).
        let out = run_on(&[("crates/a/src/def.rs", def), ("crates/a/src/imp.rs", imp)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        // Drift: Inner gains `z`, codec untouched → exactly one finding.
        let def2 = "pub struct Outer { hot: Vec<Inner> }\npub struct Inner { x: u64, y: u64, z: u64 }\n";
        let out2 = run_on(&[("crates/a/src/def.rs", def2), ("crates/a/src/imp.rs", imp)]);
        assert_eq!(out2.findings.len(), 1, "{:?}", out2.findings);
        assert!(out2.findings[0].message.contains("`Inner.z`"));
    }

    #[test]
    fn snapshot_skips_test_structs_tuple_structs_and_foreign_types() {
        let src = "struct T(u64);\n\
                   impl Persist for T { fn save(&self, w: &mut Enc) {} fn load(r: &mut Dec) -> Result<T, E> { Ok(T(0)) } }\n\
                   impl Persist for u64 { fn save(&self, w: &mut Enc) {} fn load(r: &mut Dec) -> Result<u64, E> { Ok(0) } }\n";
        let out = run_on(&[("crates/des/src/x.rs", src)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn merge_dropped_counter_is_flagged() {
        let src = "pub struct Acc { hits: u64, misses: u64 }\n\
                   impl Acc { pub fn add(&mut self, o: &Acc) { self.hits += o.hits; } }\n";
        let out = run_on(&[("crates/core/src/m.rs", src)]);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].rule, "metrics-merge-completeness");
        assert!(out.findings[0].message.contains("`Acc.misses`"));
        assert!(out.findings[0].message.contains("Acc::add"));
    }

    #[test]
    fn ledger_field_outside_conservation_is_flagged() {
        let src = "pub struct SimMetrics { lost_fire: u64, duration_s: f64 }\n\
                   pub fn conservation_violation(m: &SimMetrics) -> Option<String> { let _ = m.duration_s; None }\n";
        let out = run_on(&[("crates/core/src/m.rs", src)]);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("`SimMetrics.lost_fire`"));
        // Non-ledger fields (duration_s) are not required.
    }

    #[test]
    fn merge_exempt_marker_is_honored() {
        let src = "pub struct Acc {\n    hits: u64,\n    // lint:allow(merge-exempt): recomputed per cell, never summed\n    scratch: u64,\n}\n\
                   impl Acc { pub fn add(&mut self, o: &Acc) { self.hits += o.hits; } }\n";
        let out = run_on(&[("crates/core/src/m.rs", src)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.consumed.len(), 1);
    }

    #[test]
    fn strict_mode_flags_missing_anchors() {
        let files: Vec<SourceFile> =
            vec![SourceFile::parse("crates/core/src/m.rs", "pub struct Acc { hits: u64 }\n".into())];
        let ws = Workspace::build(&files);
        let out = run_workspace_passes(&ws, true);
        // Missing: SimMetrics struct, Acc::add, from_model. (No
        // conservation finding without a SimMetrics to anchor it.)
        let msgs: Vec<&str> = out.findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`SimMetrics`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`add`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`from_model`")), "{msgs:?}");
    }

    #[test]
    fn cross_cell_index_outside_designated_fns_is_flagged() {
        let src = "pub fn sneak(m: &mut M, other: usize) { m.accs[other].x += 1; }\n\
                   pub fn fine(m: &mut M) { m.accs[m.cellish].x += 1; }\n";
        // `fine` uses a non-own-cell index too — both are findings; then
        // the own-cell forms and designated fns are quiet.
        let out = run_on(&[("crates/core/src/shard.rs", src)]);
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out.findings.iter().all(|f| f.rule == "shard-purity"));
        let ok = "impl M {\n fn tick(&mut self) { self.accs[self.cell].x += 1; }\n}\n\
                  fn absorb_models(ms: Vec<M>) { let c = 1; ms[0].accs[c].x += 1; }\n\
                  fn handle(m: &mut M, cell: usize) { m.banks[cell].go(); }\n";
        let out2 = run_on(&[("crates/core/src/shard.rs", ok)]);
        assert!(out2.findings.is_empty(), "{:?}", out2.findings);
        // Outside the two shard files the pass is silent.
        let out3 = run_on(&[("crates/core/src/model/mod.rs", src)]);
        assert!(out3.findings.is_empty(), "{:?}", out3.findings);
    }

    #[test]
    fn shard_purity_skips_test_regions() {
        let src = "#[cfg(test)]\nmod tests {\n fn scramble(m: &mut M, o: usize) { m.accs[o].x += 1; }\n}\n";
        let out = run_on(&[("crates/des/src/shard.rs", src)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}

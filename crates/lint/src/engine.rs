//! The lint engine: workspace walk, the item-model passes, suppression
//! handling, the baseline ratchet, and report emission (human text and
//! `paradyn.lint.v1` JSON).

use crate::model::Workspace;
use crate::passes::{self, MARKERS};
use crate::rules::{self, Finding, StreamIdEntry, RULES};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Engine options.
pub struct Options {
    /// Workspace root (the directory holding `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// Baseline file; defaults to `<root>/lint-baseline.txt`. A missing
    /// file is an empty baseline.
    pub baseline: Option<PathBuf>,
}

/// One baseline entry: up to `count` findings of `rule` in `path` are
/// accepted as legacy debt. The gate is ratchet-only — the engine fails
/// when the actual count moves in *either* direction, so the file can
/// never silently go stale.
#[derive(Clone, Debug)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Number of accepted legacy findings.
    pub count: usize,
    /// Why the debt is acceptable (mandatory).
    pub justification: String,
}

/// A `(rule, path)` group currently absorbed by the baseline.
#[derive(Clone, Debug)]
pub struct Baselined {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// How many findings the baseline absorbed here.
    pub allowed: usize,
}

/// The result of a full lint pass.
pub struct Report {
    /// Active findings — anything non-empty means the gate is red.
    pub findings: Vec<Finding>,
    /// Findings silenced by justified `lint:allow` comments.
    pub suppressed: usize,
    /// Findings absorbed by the baseline ratchet.
    pub baselined: Vec<Baselined>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The collected RNG stream-id registry.
    pub stream_registry: Vec<StreamIdEntry>,
}

impl Report {
    /// True when no active findings remain.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n",
                f.path, f.line, f.col, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "paradyn-lint: {} file(s), {} finding(s), {} suppressed, {} baselined group(s): {}\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed,
            self.baselined.len(),
            if self.clean() { "clean" } else { "FAIL" }
        ));
        out
    }

    /// Machine-readable report (`paradyn.lint.v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"paradyn.lint.v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": [\n");
        for (i, (name, desc)) in RULES.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"description\": {}}}{}\n",
                json_str(name),
                json_str(desc),
                comma(i, RULES.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"markers\": [\n");
        for (i, (name, desc)) in MARKERS.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"description\": {}}}{}\n",
                json_str(name),
                json_str(desc),
                comma(i, MARKERS.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}{}\n",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                f.col,
                json_str(&f.message),
                comma(i, self.findings.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"baselined\": [\n");
        for (i, b) in self.baselined.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"allowed\": {}}}{}\n",
                json_str(&b.rule),
                json_str(&b.path),
                b.allowed,
                comma(i, self.baselined.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"stream_registry\": [\n");
        for (i, e) in self.stream_registry.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"id\": {}, \"path\": {}, \"line\": {}}}{}\n",
                json_str(&e.name),
                e.id,
                json_str(&e.path),
                e.line,
                comma(i, self.stream_registry.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"clean\": {}\n", self.clean()));
        out.push_str("}\n");
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `use`-path allowlist the hermeticity rule runs against: underscore
/// forms of every workspace crate name, read from the manifests. Exposed
/// so `tests/hermetic.rs` can cross-check it against the manifest-level
/// offline guard — the two mechanisms must never disagree about what "in
/// the workspace" means.
pub fn workspace_crate_allowlist(root: &Path) -> Result<Vec<String>, String> {
    let mut names = vec![];
    let crates = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
        .map_err(|e| format!("read {}: {e}", crates.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    for dir in dirs {
        if let Some(name) = manifest_package_name(&dir.join("Cargo.toml"))? {
            names.push(name.replace('-', "_"));
        }
    }
    // The root package, when present (the mutation self-check may lint a
    // partial tree).
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        if let Some(name) = manifest_package_name(&root_manifest)? {
            names.push(name.replace('-', "_"));
        }
    }
    names.sort();
    names.dedup();
    if names.is_empty() {
        return Err(format!("no workspace crates under {}", crates.display()));
    }
    Ok(names)
}

/// `name = "…"` from a manifest's `[package]` section.
fn manifest_package_name(path: &Path) -> Result<Option<String>, String> {
    let toml =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut in_package = false;
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Ok(Some(v.trim().trim_matches('"').to_string()));
                }
            }
        }
    }
    Ok(None)
}

/// All `.rs` files under `root`, sorted, as workspace-relative paths.
fn walk_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = vec![];
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| format!("read {}: {e}", dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                let rel = p
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parse the baseline file. Format, one entry per line:
/// `rule<TAB>path<TAB>count<TAB>justification`; `#` comments and blank
/// lines are skipped.
fn parse_baseline(path: &Path) -> Result<Vec<BaselineEntry>, String> {
    if !path.is_file() {
        return Ok(vec![]);
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut out = vec![];
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 4 {
            return Err(format!(
                "{}:{}: baseline entries are rule<TAB>path<TAB>count<TAB>justification",
                path.display(),
                i + 1
            ));
        }
        let count: usize = parts[2]
            .parse()
            .map_err(|_| format!("{}:{}: bad count `{}`", path.display(), i + 1, parts[2]))?;
        out.push(BaselineEntry {
            rule: parts[0].to_string(),
            path: parts[1].to_string(),
            count,
            justification: parts[3].trim().to_string(),
        });
    }
    Ok(out)
}

/// Run the full pass over a workspace on disk.
pub fn run(opts: &Options) -> Result<Report, String> {
    let crate_names = workspace_crate_allowlist(&opts.root)?;
    let rels = walk_rs_files(&opts.root)?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        let text = std::fs::read_to_string(opts.root.join(rel))
            .map_err(|e| format!("read {rel}: {e}"))?;
        files.push(SourceFile::parse(rel, text));
    }

    // Pass A: collect the stream-id registry from every file.
    let mut registry: Vec<StreamIdEntry> = vec![];
    for f in &files {
        registry.extend(rules::collect_stream_registry(f));
    }

    // Pass B: the item model, the workspace consistency passes (strict —
    // a renamed anchor turns the gate red), and the per-file rules, with
    // suppression filtering applied to both finding sources.
    let ws = Workspace::build(&files);
    let pass_out = passes::run_workspace_passes(&ws, true);
    let mut used: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.allows.len()]).collect();
    for &(fi, ai) in &pass_out.consumed {
        used[fi][ai] = true;
    }
    let mut active: Vec<Finding> = rules::rng_registry_collisions(&registry);
    let mut suppressed = 0usize;
    let suppress = |fi: usize,
                        finding: Finding,
                        used: &mut Vec<Vec<bool>>,
                        suppressed: &mut usize,
                        active: &mut Vec<Finding>| {
        let f = &files[fi];
        let hit = f.allows.iter().position(|a| {
            a.justified
                && a.rule == finding.rule
                && (a.line == finding.line || a.line + 1 == finding.line)
        });
        match hit {
            Some(i) => {
                used[fi][i] = true;
                *suppressed += 1;
            }
            None => active.push(finding),
        }
    };
    for finding in pass_out.findings {
        // Workspace-pass findings carry the path of the body (or anchor)
        // they implicate; route them through that file's allows. Anchor
        // findings with a pseudo-path stay active unconditionally.
        match files.iter().position(|f| f.rel == finding.path) {
            Some(fi) => suppress(fi, finding, &mut used, &mut suppressed, &mut active),
            None => active.push(finding),
        }
    }
    for (fi, f) in files.iter().enumerate() {
        let local_items = ws.declared_names(fi);
        let raw = rules::run_file_rules(f, &registry, &crate_names, &local_items);
        for finding in raw {
            suppress(fi, finding, &mut used, &mut suppressed, &mut active);
        }
    }
    // Suppression hygiene: every allow must name a real rule or pass
    // marker, carry a justification, and actually suppress (or, for a
    // marker, exempt) something.
    for (fi, f) in files.iter().enumerate() {
        for (i, a) in f.allows.iter().enumerate() {
            let is_rule = RULES.iter().any(|(n, _)| *n == a.rule);
            let is_marker = MARKERS.iter().any(|(n, _)| *n == a.rule);
            let problem = if !is_rule && !is_marker {
                Some(format!("unknown rule `{}` in lint:allow", a.rule))
            } else if !a.justified {
                Some(format!(
                    "lint:allow({}) without a justification — write \
                     `lint:allow({}): <why this site is safe>`",
                    a.rule, a.rule
                ))
            } else if !used[fi][i] {
                Some(if is_marker {
                    format!(
                        "unused lint:allow({}) — no enrolled field on this or \
                         the next line; remove it",
                        a.rule
                    )
                } else {
                    format!(
                        "unused lint:allow({}) — no finding on this or the next \
                         line; remove it",
                        a.rule
                    )
                })
            } else {
                None
            };
            if let Some(message) = problem {
                active.push(Finding {
                    rule: "suppression",
                    path: f.rel.clone(),
                    line: a.line,
                    col: a.col,
                    message,
                });
            }
        }
    }

    // Pass C: the baseline ratchet.
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.txt"));
    let baseline = parse_baseline(&baseline_path)?;
    let mut baselined = vec![];
    for entry in &baseline {
        if entry.justification.is_empty() {
            active.push(Finding {
                rule: "baseline",
                path: entry.path.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "baseline entry ({}, {}) has no justification",
                    entry.rule, entry.path
                ),
            });
            continue;
        }
        let matching: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|(_, f)| f.rule == entry.rule && f.path == entry.path)
            .map(|(i, _)| i)
            .collect();
        let found = matching.len();
        if found == entry.count {
            // Absorb them, newest-index first so removal is stable.
            for &i in matching.iter().rev() {
                active.remove(i);
            }
            baselined.push(Baselined {
                rule: entry.rule.clone(),
                path: entry.path.clone(),
                allowed: entry.count,
            });
        } else if found < entry.count {
            active.push(Finding {
                rule: "baseline",
                path: entry.path.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "stale baseline: ({}, {}) allows {} finding(s) but only {} \
                     remain — ratchet the count down to {}",
                    entry.rule, entry.path, entry.count, found, found
                ),
            });
        } else {
            active.push(Finding {
                rule: "baseline",
                path: entry.path.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "({}, {}) grew to {} finding(s), above its baseline of {} — \
                     fix the new site(s), do not raise the baseline",
                    entry.rule, entry.path, found, entry.count
                ),
            });
        }
    }

    active.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(Report {
        findings: active,
        suppressed,
        baselined,
        files_scanned: files.len(),
        stream_registry: registry,
    })
}

/// Lint a single in-memory source file (no baseline, no suppression, no
/// cross-file rules except registry collisions within the same file; the
/// workspace passes run non-strict, so missing anchors do not fire). Used
/// by tests and by the seeded-violation self-checks.
pub fn lint_source(rel: &str, text: &str, crate_names: &[String]) -> Vec<Finding> {
    let files = vec![SourceFile::parse(rel, text.to_string())];
    let ws = Workspace::build(&files);
    let f = &files[0];
    let registry = rules::collect_stream_registry(f);
    let mut out = rules::rng_registry_collisions(&registry);
    out.extend(rules::run_file_rules(f, &registry, crate_names, &ws.declared_names(0)));
    out.extend(passes::run_workspace_passes(&ws, false).findings);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_and_control_bytes() {
        assert_eq!(json_str("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn lint_source_flags_a_seeded_wall_clock_read() {
        let names = vec!["paradyn_stats".to_string()];
        let bad = "pub fn sneaky() -> u64 { let t = std::time::Instant::now(); 0 }";
        let hits = lint_source("crates/des/src/lib.rs", bad, &names);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "wall-clock");
        // The same code in bench is fine.
        assert!(lint_source("crates/bench/src/lib.rs", bad, &names).is_empty());
    }

    #[test]
    fn empty_baseline_file_is_fine_and_missing_file_is_empty() {
        assert!(parse_baseline(Path::new("/nonexistent/x.txt")).unwrap().is_empty());
    }

    #[test]
    fn baseline_lines_must_have_four_fields() {
        let dir = std::env::temp_dir().join("paradyn_lint_bl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bl.txt");
        std::fs::write(&p, "# comment\npanic-path\tfoo.rs\t3\tlegacy tests\n").unwrap();
        let b = parse_baseline(&p).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!((b[0].count, b[0].rule.as_str()), (3, "panic-path"));
        std::fs::write(&p, "panic-path\tfoo.rs\t3\n").unwrap();
        assert!(parse_baseline(&p).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

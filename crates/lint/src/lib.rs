//! `paradyn-lint` — in-tree, zero-dependency static analysis for the
//! workspace's determinism, no-panic, and hermeticity invariants.
//!
//! The reproduction's headline claims (bit-identical replication at any
//! thread count, bitwise-inert fault plans, oracle-identical calendar
//! traces) rest on *source-level* invariants that runtime tests can only
//! spot-check: a wall-clock read or a `HashMap` iteration that a given
//! seed never exercises still breaks determinism for some other seed.
//! This crate enforces those invariants for every line of every file, on
//! every `cargo test` run (`tests/lint_clean.rs`) and in `scripts/
//! verify.sh`.
//!
//! Consistency invariants that span declarations and impl bodies (every
//! model field snapshotted, every counter merged, every shard touching
//! only its own cells) need more than token patterns, so the lexer feeds
//! a hand-written item parser ([`parse`]) building per-file trees of
//! structs, enums, impls, and fns, resolved workspace-wide into a symbol
//! table ([`model`]) that three completeness passes run against
//! ([`passes`]).
//!
//! Because the workspace is hermetic (no external crates — see
//! `tests/hermetic.rs`), everything is built from scratch: a hand-written
//! lexer ([`lexer`]), a per-file source model with test-region and
//! suppression tracking ([`source`]), the token-level rules ([`rules`]),
//! the item model ([`parse`], [`model`], [`passes`]), and an engine with
//! a ratchet-only baseline ([`engine`]). See DESIGN.md §7.

pub mod engine;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod passes;
pub mod rules;
pub mod source;

pub use engine::{lint_source, run, workspace_crate_allowlist, Options, Report};
pub use passes::MARKERS;
pub use rules::{Finding, RULES};

//! A hand-written Rust lexer, just deep enough for span-accurate linting.
//!
//! The workspace is hermetic (no `syn`, no `proc-macro2` — see
//! `tests/hermetic.rs`), so the lint pass carries its own tokenizer. It does
//! not parse; it produces a flat token stream with byte spans and resolves
//! the classic lexical ambiguities that would otherwise corrupt findings:
//!
//! * `r#"…"#` raw strings (any number of `#`s), `b"…"`/`br#"…"#`/`c"…"`
//!   byte- and C-string prefixes, and `r#ident` raw identifiers;
//! * nested block comments `/* /* */ */` (Rust nests them, C does not);
//! * `'a` lifetimes vs `'x'` char literals (including `'\''` escapes);
//! * `//` sequences *inside* string literals, which must not start a
//!   comment.
//!
//! Rules must never match source text directly — only tokens — so a
//! forbidden name inside a string, comment, or doc example can never
//! produce a false finding.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, stored without `r#`).
    Ident,
    /// A lifetime such as `'a` or `'_` (no trailing quote).
    Lifetime,
    /// Character literal `'x'` / byte char `b'x'`, escapes included.
    Char,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    Str,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e9`).
    Float,
    /// `// …` comment, text kept for `lint:allow` parsing.
    LineComment,
    /// `/* … */` comment (nesting handled).
    BlockComment,
    /// A single punctuation byte (`.`, `(`, `#`, …).
    Punct(u8),
}

/// One token with its span.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind tag.
    pub kind: TokKind,
    /// Byte offset of the token start in the source.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
    /// 1-based source line of the token start.
    pub line: u32,
    /// 1-based column (in bytes) of the token start.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// For `Int` tokens: the numeric value, if it fits in `u64`.
    pub fn int_value(&self, src: &str) -> Option<u64> {
        let t = self.text(src);
        let t: String = t.chars().filter(|&c| c != '_').collect();
        // Strip a type suffix (`u64`, `usize`, `i32`, …).
        let strip = |s: &str, radix: u32| {
            let end = s
                .char_indices()
                .find(|&(_, c)| !c.is_digit(radix))
                .map_or(s.len(), |(i, _)| i);
            u64::from_str_radix(&s[..end], radix).ok()
        };
        if let Some(hex) = t.strip_prefix("0x").or(t.strip_prefix("0X")) {
            strip(hex, 16)
        } else if let Some(oct) = t.strip_prefix("0o") {
            strip(oct, 8)
        } else if let Some(bin) = t.strip_prefix("0b") {
            strip(bin, 2)
        } else {
            strip(&t, 10)
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Unterminated constructs (string, comment) consume the
/// rest of the file rather than erroring: the lint must degrade gracefully
/// on code that `rustc` itself would reject.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        out: Vec::with_capacity(src.len() / 4),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.lifetime_or_char(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    self.push(TokKind::Punct(b), self.pos, self.pos + 1);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) {
        self.out.push(Token {
            kind,
            start,
            end,
            line: self.line,
            col: (start - self.line_start) as u32 + 1,
        });
    }

    /// Advance over `self.src[start..end]`, keeping the line counter right.
    fn advance_to(&mut self, end: usize) {
        while self.pos < end {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.line_start = self.pos + 1;
            }
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let mut end = self.pos;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        self.push(TokKind::LineComment, start, end);
        self.pos = end; // newline handled by the main loop
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < self.src.len() {
            if self.src[i] == b'/' && self.src.get(i + 1) == Some(&b'*') {
                depth += 1;
                i += 2;
            } else if self.src[i] == b'*' && self.src.get(i + 1) == Some(&b'/') {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                i += 1;
            }
        }
        self.push(TokKind::BlockComment, start, i);
        self.advance_to(i);
    }

    /// Plain (non-raw) string body starting at the opening quote.
    fn string(&mut self, start: usize) {
        let mut i = self.pos + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2, // escape: skip the escaped byte (covers \" and \\)
                b'"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        self.push(TokKind::Str, start, i.min(self.src.len()));
        self.advance_to(i.min(self.src.len()));
    }

    /// Raw string body: `pos` sits on the first `#` or the quote; `hashes`
    /// is how many `#`s open it.
    fn raw_string(&mut self, start: usize, hashes: usize) {
        let mut i = self.pos + hashes + 1; // past #s and the opening quote
        while i < self.src.len() {
            if self.src[i] == b'"' {
                let tail = &self.src[i + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                    i += 1 + hashes;
                    break;
                }
            }
            i += 1;
        }
        self.push(TokKind::Str, start, i.min(self.src.len()));
        self.advance_to(i.min(self.src.len()));
    }

    /// `'a` / `'_` lifetime, or `'x'` / `'\n'` char literal.
    fn lifetime_or_char(&mut self) {
        let start = self.pos;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: skip to the closing quote.
                let mut i = self.pos + 2;
                if i < self.src.len() {
                    i += 1; // the escaped byte itself ('\'' and '\\' included)
                }
                while i < self.src.len() && self.src[i] != b'\'' {
                    i += 1; // multi-byte escapes: \u{…}, \x7f
                }
                let end = (i + 1).min(self.src.len());
                self.push(TokKind::Char, start, end);
                self.advance_to(end);
            }
            Some(c) if is_ident_start(c) && self.peek(2) != Some(b'\'') => {
                // Lifetime: 'ident with no closing quote.
                let mut i = self.pos + 2;
                while i < self.src.len() && is_ident_continue(self.src[i]) {
                    i += 1;
                }
                self.push(TokKind::Lifetime, start, i);
                self.advance_to(i);
            }
            Some(_) => {
                // 'x' char literal (possibly multi-byte UTF-8 payload).
                let mut i = self.pos + 1;
                while i < self.src.len() && self.src[i] != b'\'' {
                    i += 1;
                }
                let end = (i + 1).min(self.src.len());
                self.push(TokKind::Char, start, end);
                self.advance_to(end);
            }
            None => {
                self.push(TokKind::Punct(b'\''), start, start + 1);
                self.pos += 1;
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut i = self.pos;
        let mut float = false;
        if self.src[i] == b'0' && matches!(self.src.get(i + 1), Some(b'x' | b'X' | b'o' | b'b')) {
            i += 2;
            while i < self.src.len() && (self.src[i].is_ascii_alphanumeric() || self.src[i] == b'_')
            {
                i += 1;
            }
        } else {
            while i < self.src.len() && (self.src[i].is_ascii_digit() || self.src[i] == b'_') {
                i += 1;
            }
            // Fraction — but `1..2` is two range dots, not a float.
            if self.src.get(i) == Some(&b'.')
                && self.src.get(i + 1).is_some_and(|b| b.is_ascii_digit())
            {
                float = true;
                i += 1;
                while i < self.src.len() && (self.src[i].is_ascii_digit() || self.src[i] == b'_') {
                    i += 1;
                }
            }
            // Exponent.
            if matches!(self.src.get(i), Some(b'e' | b'E'))
                && (self.src.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                    || (matches!(self.src.get(i + 1), Some(b'+' | b'-'))
                        && self.src.get(i + 2).is_some_and(|b| b.is_ascii_digit())))
            {
                float = true;
                i += 1;
                if matches!(self.src.get(i), Some(b'+' | b'-')) {
                    i += 1;
                }
                while i < self.src.len() && self.src[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // Type suffix: `u64`, `f32`, `usize`, …
            if self.src.get(i).is_some_and(|&b| is_ident_start(b)) {
                if self.src[i] == b'f' {
                    float = true;
                }
                while i < self.src.len() && is_ident_continue(self.src[i]) {
                    i += 1;
                }
            }
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, start, i);
        self.pos = i;
    }

    /// An identifier — unless it is one of the literal prefixes (`r`, `b`,
    /// `c`, `br`, `cr`) glued to a quote, in which case the whole literal
    /// is lexed; or `r#ident`, a raw identifier.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        let mut i = self.pos;
        while i < self.src.len() && is_ident_continue(self.src[i]) {
            i += 1;
        }
        let word = &self.src[start..i];
        let next = self.src.get(i).copied();

        // b'x' — byte char literal.
        if word == b"b" && next == Some(b'\'') {
            self.pos = i;
            self.lifetime_or_char();
            // Rewrite the just-pushed token to include the `b` prefix.
            if let Some(t) = self.out.last_mut() {
                t.start = start;
                t.col -= 1;
            }
            return;
        }

        // "…"-starting literal prefixes.
        let raw_capable = matches!(word, b"r" | b"br" | b"cr");
        let plain_prefix = matches!(word, b"b" | b"c");
        if (raw_capable || plain_prefix) && matches!(next, Some(b'"' | b'#')) {
            if next == Some(b'"') {
                self.pos = i;
                if raw_capable {
                    self.raw_string(start, 0);
                } else {
                    self.string(start);
                }
                return;
            }
            // `#`s: count them; a quote must follow for this to be a raw
            // string — `r#ident` falls through to the raw-identifier case.
            if raw_capable {
                let mut hashes = 0;
                while self.src.get(i + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if self.src.get(i + hashes) == Some(&b'"') {
                    self.pos = i;
                    self.raw_string(start, hashes);
                    return;
                }
            }
        }

        // r#ident raw identifier: token text is the bare ident.
        if word == b"r" && next == Some(b'#') && self.src.get(i + 1).is_some_and(|&b| is_ident_start(b))
        {
            let id_start = i + 1;
            let mut j = id_start;
            while j < self.src.len() && is_ident_continue(self.src[j]) {
                j += 1;
            }
            self.push(TokKind::Ident, id_start, j);
            // Span text excludes `r#` so rules compare the bare name; fix
            // the column to point at the true start.
            if let Some(t) = self.out.last_mut() {
                t.col -= 2;
            }
            self.pos = j;
            return;
        }

        self.push(TokKind::Ident, start, i);
        self.pos = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        let src = r####"let s = r#"has "quotes" and \ backslash"# ; end"####;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.starts_with("r#\""));
        assert!(strs[0].1.ends_with("\"#"));
        // The trailing `end` ident survives — the raw string did not swallow it.
        assert_eq!(idents(src), ["let", "s", "end"]);
    }

    #[test]
    fn raw_string_with_two_hashes_ignores_single_hash_close() {
        let src = r###"r##"inner "# still inside"## tail"###;
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].text(src), r###"r##"inner "# still inside"##"###);
        assert_eq!(idents(src), ["tail"]);
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        for src in [r#"b"bytes""#, r##"br#"raw bytes"#"##, r#"c"cstr""#] {
            let toks = tokenize(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokKind::Str, "{src}");
            assert_eq!(toks[0].text(src), src);
        }
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "before /* outer /* inner */ still comment */ after";
        assert_eq!(idents(src), ["before", "after"]);
        let toks = tokenize(src);
        let c: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::BlockComment)
            .collect();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].text(src), "/* outer /* inner */ still comment */");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let q = '\\''; }";
        let toks = tokenize(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'", "'\\''"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let src = "&'static str; &'_ u8";
        let toks = tokenize(src);
        let l: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(l, ["'static", "'_"]);
    }

    #[test]
    fn slashes_inside_string_literals_do_not_start_comments() {
        let src = r#"let url = "https://example.com // not a comment"; trailing"#;
        assert_eq!(idents(src), ["let", "url", "trailing"]);
        assert!(tokenize(src).iter().all(|t| t.kind != TokKind::LineComment));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#""escaped \" quote // still string" ident"#;
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokKind::Str);
        assert_eq!(toks[0].text(src), r#""escaped \" quote // still string""#);
        assert_eq!(idents(src), ["ident"]);
    }

    #[test]
    fn line_comments_keep_text_and_spans() {
        let src = "x // lint:allow(test-rule): reason\ny";
        let toks = tokenize(src);
        let c: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::LineComment)
            .collect();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].text(src), "// lint:allow(test-rule): reason");
        assert_eq!(c[0].line, 1);
        // `y` lands on line 2.
        assert_eq!(toks.last().map(|t| (t.line, t.col)), Some((2, 1)));
    }

    #[test]
    fn raw_identifiers_compare_as_bare_names() {
        let src = "let r#type = 1;";
        assert_eq!(idents(src), ["let", "type"]);
    }

    #[test]
    fn int_values_parse_across_radices_and_suffixes() {
        let src = "11 0xFF 0o17 0b1010 1_000u64 12usize";
        let vals: Vec<u64> = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .filter_map(|t| t.int_value(src))
            .collect();
        assert_eq!(vals, [11, 255, 15, 10, 1000, 12]);
    }

    #[test]
    fn range_dots_are_not_floats() {
        let src = "for i in 0..13 { }";
        let toks = tokenize(src);
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(ints, ["0", "13"]);
        assert!(toks.iter().all(|t| t.kind != TokKind::Float));
        // Floats still lex as floats.
        let toks2 = tokenize("1.5e3 2f64");
        assert!(toks2.iter().all(|t| t.kind == TokKind::Float));
    }

    #[test]
    fn multiline_raw_string_keeps_line_numbers_honest() {
        let src = "a\nr\"line\nline\nline\"\nb";
        let toks = tokenize(src);
        assert_eq!(toks[0].text(src), "a");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokKind::Str);
        assert_eq!(toks.last().map(|t| (t.text(src), t.line)), Some(("b", 5)));
    }

    #[test]
    fn unterminated_constructs_consume_rest_without_panicking() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed\""] {
            let toks = tokenize(src);
            assert!(!toks.is_empty(), "{src}");
        }
    }
}

#![warn(missing_docs)]
//! # paradyn-des — discrete-event simulation kernel
//!
//! The simulation substrate for the Paradyn instrumentation-system study:
//! a deterministic, monomorphic event calendar ([`engine`], backed by the
//! hierarchical timing wheel in [`calendar`]), an integer nanosecond clock
//! ([`time`]), reproducible independent random streams ([`rng`]),
//! statistics monitors ([`monitor`]), and reusable resource state machines
//! — an FCFS single server ([`fcfs`]) and a round-robin quantum CPU bank
//! ([`rr`]).
//!
//! Design choices (see DESIGN.md §5):
//! * **Integer time** — exact event ordering, bit-reproducible runs.
//! * **Typed events** — models define an event `enum`; nothing is boxed on
//!   the hot path.
//! * **O(1) calendar** — a timing wheel keyed on the nanosecond clock with
//!   generation-stamped cancellation; the legacy binary heap remains as
//!   [`CalendarKind::Heap`] and as the differential-testing oracle.
//! * **Resources as pure state machines** — they own no events; the model
//!   schedules exactly one completion/slice event per started service, which
//!   makes the components independently testable.
//!
//! ## Example
//!
//! ```
//! use paradyn_des::{Ctx, Model, Sim, SimDur, SimTime};
//!
//! /// A toy model: a ping event that reschedules itself.
//! struct Ping { count: u32 }
//!
//! impl Model for Ping {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Ctx<()>, _ev: ()) {
//!         self.count += 1;
//!         if self.count < 10 {
//!             ctx.schedule_in(SimDur::from_micros_f64(100.0), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(Ping { count: 0 });
//! sim.ctx().schedule_at(SimTime::ZERO, ());
//! sim.run_until(SimTime::from_secs_f64(1.0));
//! assert_eq!(sim.model.count, 10);
//! assert_eq!(sim.executed_events(), 10);
//! ```

pub mod calendar;
pub mod engine;
pub mod fault;
pub mod fcfs;
pub mod monitor;
pub mod rng;
pub mod rr;
pub mod shard;
pub mod snapshot;
pub mod time;

pub use calendar::{CalendarKind, CalendarStats};
pub use engine::{Ctx, EventHandle, Model, Sim};
pub use fault::FaultSchedule;
pub use fcfs::{FcfsServer, Offer};
pub use monitor::{BusyTime, Counter, FaultMonitor, Tally, TimeWeighted};
pub use rng::{StreamRng, Streams};
pub use rr::{RrCpuBank, SliceEnd, Submit};
pub use shard::{ShardModel, ShardPlan, ShardedSim};
pub use snapshot::{
    fnv1a, open, rewind_bisect, seal, Dec, Divergence, Enc, Persist, PersistState, SnapError,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use time::{SimDur, SimTime};

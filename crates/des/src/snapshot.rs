//! Versioned, checksummed snapshot codec and deterministic rewind support.
//!
//! A snapshot is a self-describing binary frame:
//!
//! ```text
//! magic "PDSN" | version u32 | config fingerprint u64 | payload_len u64
//!              | payload bytes | FNV-1a checksum u64 (over everything prior)
//! ```
//!
//! The payload is produced by [`Persist`] implementations over the kernel's
//! own state types (clock, calendar, RNG streams, model entities). The
//! calendar is captured in a *canonical drained form* — the sorted list of
//! live `(time, seq, event)` entries — so a snapshot taken on the timing
//! wheel restores bit-identically on the binary heap and vice versa.
//!
//! Decoding never panics: every reader returns [`SnapError`] on truncated,
//! corrupted, or semantically invalid input. This file is registered with
//! `paradyn-lint`'s panic-path rule, which bans `unwrap`/`expect`/`panic!`
//! tokens outright.

use crate::engine::{Model, Sim};
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Leading magic bytes of every snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PDSN";

/// Current snapshot format version. Bumped on any layout change; decoders
/// reject every other version rather than guessing.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot failed to decode. All decode paths return this — snapshot
/// handling must never panic on untrusted bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the expected data.
    Truncated,
    /// The frame does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The frame's format version is not [`SNAPSHOT_VERSION`].
    BadVersion {
        /// Version found in the frame.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The FNV-1a checksum does not match the frame contents.
    BadChecksum,
    /// The snapshot was taken under a different configuration fingerprint.
    ConfigMismatch {
        /// Fingerprint the restoring model expects.
        expected: u64,
        /// Fingerprint stored in the frame.
        found: u64,
    },
    /// Bytes remain after the payload was fully consumed.
    TrailingBytes,
    /// A field decoded but violates an invariant of its type.
    Malformed(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion { found, expected } => {
                write!(f, "snapshot version {found} (expected {expected})")
            }
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot config fingerprint {found:#018x} does not match {expected:#018x}"
            ),
            SnapError::TrailingBytes => write!(f, "trailing bytes after snapshot payload"),
            SnapError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit hash — the frame checksum and config fingerprint primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only byte encoder. Encoding is infallible.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` by its exact bit pattern (NaN-safe round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked byte decoder over a borrowed slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`, starting at offset zero.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(SnapError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a `bool`; any byte other than 0/1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool byte not 0/1")),
        }
    }

    /// Read a `usize` stored as `u64`, rejecting values that do not fit.
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapError::Malformed("usize overflow"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// A type that can write itself into an [`Enc`] and rebuild itself from a
/// [`Dec`]. `load` must validate every invariant the type normally enforces
/// by construction, returning [`SnapError::Malformed`] instead of panicking.
pub trait Persist: Sized {
    /// Append this value's canonical byte form.
    fn save(&self, w: &mut Enc);
    /// Rebuild a value, validating invariants.
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError>;
}

impl Persist for u8 {
    fn save(&self, w: &mut Enc) {
        w.put_u8(*self);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        r.take_u8()
    }
}

impl Persist for u32 {
    fn save(&self, w: &mut Enc) {
        w.put_u32(*self);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        r.take_u32()
    }
}

impl Persist for u64 {
    fn save(&self, w: &mut Enc) {
        w.put_u64(*self);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        r.take_u64()
    }
}

impl Persist for usize {
    fn save(&self, w: &mut Enc) {
        w.put_usize(*self);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        r.take_usize()
    }
}

impl Persist for f64 {
    fn save(&self, w: &mut Enc) {
        w.put_f64(*self);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        r.take_f64()
    }
}

impl Persist for bool {
    fn save(&self, w: &mut Enc) {
        w.put_bool(*self);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        r.take_bool()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut Enc) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            _ => Err(SnapError::Malformed("Option tag not 0/1")),
        }
    }
}

/// Cap for speculative preallocation while decoding length-prefixed
/// containers: a corrupt length must not trigger a huge allocation before
/// the (inevitable) `Truncated` error surfaces.
const PREALLOC_CAP: usize = 4096;

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut Enc) {
        w.put_usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = r.take_usize()?;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, w: &mut Enc) {
        w.put_usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let n = r.take_usize()?;
        let mut out = VecDeque::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut Enc) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut Enc) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

/// Model-level state capture: everything [`Sim::snapshot_now`] needs beyond
/// the kernel's own clock/calendar state.
pub trait PersistState {
    /// A stable fingerprint of the configuration this state was built from.
    /// Snapshots embed it; restoring under a different fingerprint fails
    /// with [`SnapError::ConfigMismatch`].
    fn fingerprint(&self) -> u64;
    /// Append the model's full mutable state.
    fn save_state(&self, w: &mut Enc);
    /// Overwrite this (freshly built) model's state from the decoder,
    /// validating structural invariants against the built shape.
    fn load_state(&mut self, r: &mut Dec<'_>) -> Result<(), SnapError>;
}

/// Wrap `payload` in a sealed frame: magic, version, fingerprint, length,
/// payload, checksum.
pub fn seal(fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validate a sealed frame and return `(fingerprint, payload)`.
///
/// Checks run in order: magic, version, length, checksum — so a frame from
/// a future format version reports [`SnapError::BadVersion`] even though its
/// checksum (computed by rules we do not know) would also fail.
pub fn open(bytes: &[u8]) -> Result<(u64, &[u8]), SnapError> {
    const HEADER: usize = 4 + 4 + 8 + 8;
    let mut r = Dec::new(bytes);
    let magic = r.take(4)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.take_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let fingerprint = r.take_u64()?;
    let payload_len = r.take_usize()?;
    let body_end = HEADER.checked_add(payload_len).ok_or(SnapError::Truncated)?;
    let frame_end = body_end.checked_add(8).ok_or(SnapError::Truncated)?;
    if bytes.len() < frame_end {
        return Err(SnapError::Truncated);
    }
    if bytes.len() > frame_end {
        return Err(SnapError::TrailingBytes);
    }
    let body = bytes.get(..body_end).ok_or(SnapError::Truncated)?;
    let stored = bytes.get(body_end..frame_end).ok_or(SnapError::Truncated)?;
    let mut sum = [0u8; 8];
    sum.copy_from_slice(stored);
    if fnv1a(body) != u64::from_le_bytes(sum) {
        return Err(SnapError::BadChecksum);
    }
    let payload = bytes.get(HEADER..body_end).ok_or(SnapError::Truncated)?;
    Ok((fingerprint, payload))
}

/// The first point at which two nominally identical runs disagree, as
/// reported by [`rewind_bisect`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Simulated time of the first divergent event.
    pub at: SimTime,
    /// Debug rendering of run A's event at the divergence point.
    pub event_a: String,
    /// Debug rendering of run B's event at the divergence point.
    pub event_b: String,
    /// Events both runs executed identically before diverging.
    pub executed_before: u64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.event_a == self.event_b {
            write!(
                f,
                "runs diverge at t={} ns while handling event #{} {} (identical event, divergent resulting state)",
                self.at.as_nanos(),
                self.executed_before,
                self.event_a
            )
        } else {
            write!(
                f,
                "runs diverge at t={} ns after {} identical events: A executes {} but B executes {}",
                self.at.as_nanos(),
                self.executed_before,
                self.event_a,
                self.event_b
            )
        }
    }
}

/// Render the next live event of a sim for divergence reports.
fn next_desc<M>(sim: &Sim<M>) -> Option<(SimTime, String)>
where
    M: Model,
    M::Event: Clone + fmt::Debug,
{
    sim.peek_next().map(|(at, ev)| (at, format!("{ev:?}")))
}

/// Binary-search two divergent runs for their first divergent event.
///
/// `mk_a`/`mk_b` build the two runs from scratch (same model type, possibly
/// different seeds/configurations). The bisection compares canonical state
/// payloads after equal executed-event counts, narrowing to the longest
/// prefix after which both runs hold bit-identical state; snapshots taken at
/// the proven-equal low point let each probe resume from there instead of
/// re-simulating from zero. A final event-by-event lockstep from the low
/// point reports the exact first divergent `(time, event)` pair.
///
/// Returns `Ok(None)` when both runs reach `horizon` with identical state.
/// Known limitation: state-equality bisection assumes the runs do not
/// diverge and then *reconverge* to byte-identical state; for the RNG-driven
/// models in this workspace that is effectively impossible.
pub fn rewind_bisect<M, FA, FB>(
    mk_a: FA,
    mk_b: FB,
    horizon: SimTime,
) -> Result<Option<Divergence>, SnapError>
where
    M: Model + PersistState,
    M::Event: Persist + Clone + fmt::Debug,
    FA: Fn() -> Sim<M>,
    FB: Fn() -> Sim<M>,
{
    // Full run first: equal end states mean no divergence to locate.
    let mut full_a = mk_a();
    let mut full_b = mk_b();
    full_a.run_until(horizon);
    full_b.run_until(horizon);
    if full_a.state_payload() == full_b.state_payload() {
        return Ok(None);
    }
    let total = full_a.executed_events().max(full_b.executed_events());

    // Restore-or-rebuild a run positioned after exactly `lo` events.
    let at_lo = |mk: &dyn Fn() -> Sim<M>, snap: &Option<Vec<u8>>| -> Result<Sim<M>, SnapError> {
        let donor = mk();
        match snap {
            Some(bytes) => {
                let kind = donor.calendar_kind();
                Sim::restore(donor.into_model(), kind, bytes)
            }
            None => Ok(donor),
        }
    };

    // Invariant: after `lo` events the two runs are byte-identical (lo = 0
    // trivially so only when their initial payloads match; if they differ
    // at zero events the lockstep below starts from fresh sims and reports
    // the first event whose handling exposes the difference).
    let mut lo: u64 = 0;
    let mut hi: u64 = total;
    let mut snap_a: Option<Vec<u8>> = None;
    let mut snap_b: Option<Vec<u8>> = None;
    {
        let a0 = mk_a();
        let b0 = mk_b();
        if a0.state_payload() != b0.state_payload() {
            // Initial states already differ; skip the bisection.
            hi = 0;
        }
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let mut a = at_lo(&mk_a, &snap_a)?;
        let mut b = at_lo(&mk_b, &snap_b)?;
        a.run_events(mid - a.executed_events());
        b.run_events(mid - b.executed_events());
        if a.state_payload() == b.state_payload() {
            lo = mid;
            snap_a = Some(a.snapshot_now());
            snap_b = Some(b.snapshot_now());
        } else {
            hi = mid;
        }
    }

    // Lockstep from the last proven-equal point.
    let mut a = at_lo(&mk_a, &snap_a)?;
    let mut b = at_lo(&mk_b, &snap_b)?;
    a.run_events(lo - a.executed_events());
    b.run_events(lo - b.executed_events());
    loop {
        let na = next_desc(&a);
        let nb = next_desc(&b);
        match (na, nb) {
            (None, None) => return Ok(None),
            (Some((ta, ea)), Some((tb, eb))) => {
                if ta != tb || ea != eb {
                    return Ok(Some(Divergence {
                        at: ta.min(tb),
                        event_a: ea,
                        event_b: eb,
                        executed_before: a.executed_events(),
                    }));
                }
                if ta > horizon {
                    return Ok(None);
                }
                a.step();
                b.step();
                if a.state_payload() != b.state_payload() {
                    return Ok(Some(Divergence {
                        at: ta,
                        event_a: ea,
                        event_b: eb,
                        executed_before: a.executed_events().saturating_sub(1),
                    }));
                }
            }
            (Some((ta, ea)), None) => {
                return Ok(Some(Divergence {
                    at: ta,
                    event_a: ea,
                    event_b: "<calendar empty>".to_string(),
                    executed_before: a.executed_events(),
                }));
            }
            (None, Some((tb, eb))) => {
                return Ok(Some(Divergence {
                    at: tb,
                    event_a: "<calendar empty>".to_string(),
                    event_b: eb,
                    executed_before: b.executed_events(),
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut w = Enc::new();
        0xAAu8.save(&mut w);
        0xDEAD_BEEFu32.save(&mut w);
        0x0123_4567_89AB_CDEFu64.save(&mut w);
        (-0.0f64).save(&mut w);
        true.save(&mut w);
        Some(7u64).save(&mut w);
        Option::<u64>::None.save(&mut w);
        vec![1u32, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Dec::new(&bytes);
        assert_eq!(u8::load(&mut r), Ok(0xAA));
        assert_eq!(u32::load(&mut r), Ok(0xDEAD_BEEF));
        assert_eq!(u64::load(&mut r), Ok(0x0123_4567_89AB_CDEF));
        assert_eq!(f64::load(&mut r).map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert_eq!(bool::load(&mut r), Ok(true));
        assert_eq!(Option::<u64>::load(&mut r), Ok(Some(7)));
        assert_eq!(Option::<u64>::load(&mut r), Ok(None));
        assert_eq!(Vec::<u32>::load(&mut r), Ok(vec![1, 2, 3]));
        assert!(r.is_empty());
    }

    #[test]
    fn bad_bool_and_bad_option_tags_are_malformed() {
        let mut r = Dec::new(&[2]);
        assert_eq!(bool::load(&mut r), Err(SnapError::Malformed("bool byte not 0/1")));
        let mut r = Dec::new(&[9]);
        assert!(matches!(Option::<u8>::load(&mut r), Err(SnapError::Malformed(_))));
    }

    #[test]
    fn corrupt_vec_length_is_truncated_not_oom() {
        let mut w = Enc::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Dec::new(&bytes);
        assert_eq!(Vec::<u64>::load(&mut r), Err(SnapError::Truncated));
    }

    #[test]
    fn seal_open_round_trip_and_rejections() {
        let payload = [1u8, 2, 3, 4, 5];
        let sealed = seal(0xF1F2, &payload);
        assert_eq!(open(&sealed), Ok((0xF1F2, &payload[..])));
        // Truncation at every prefix length fails.
        for n in 0..sealed.len() {
            assert!(open(&sealed[..n]).is_err(), "prefix {n} accepted");
        }
        // Trailing garbage fails.
        let mut longer = sealed.clone();
        longer.push(0);
        assert_eq!(open(&longer), Err(SnapError::TrailingBytes));
        // Any single-bit flip fails.
        for byte in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[byte] ^= 1;
            assert!(open(&bad).is_err(), "bit flip in byte {byte} accepted");
        }
    }

    #[test]
    fn future_version_reports_bad_version_even_with_valid_checksum() {
        let sealed = seal(7, &[9, 9, 9]);
        let mut crafted = sealed[..sealed.len() - 8].to_vec();
        crafted[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let sum = fnv1a(&crafted);
        crafted.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            open(&crafted),
            Err(SnapError::BadVersion {
                found: SNAPSHOT_VERSION + 1,
                expected: SNAPSHOT_VERSION
            })
        );
    }
}

//! Sharded parallel-in-run execution: conservative lookahead windows over
//! shard-private calendars, with a merge that is bit-identical to the
//! serial engine (DESIGN.md §11).
//!
//! ## Shape
//!
//! A [`ShardPlan`] assigns every *scheduling cell* (the unit the model
//! keys its sequence counters by — see [`crate::engine::CELL_SHIFT`]) to
//! one of N shards. Each shard owns a complete [`Sim`]: its own calendar,
//! slab, and model instance holding the state of the cells it owns. A
//! [`Router`] installed in each shard's [`Ctx`] diverts any `post_at`
//! whose execution cell belongs to another shard into an outbox; the
//! driver moves those `(at, seq, event)` triples — plus optional
//! [`ShardModel::detach`]ed luggage — into the owning shard's inbox at
//! window boundaries.
//!
//! ## Conservative windows
//!
//! Cross-shard events carry a minimum latency `L` (the lookahead: in the
//! ROCC model, the forwarding-link service-time floor). Each round the
//! driver computes `gmin`, a lower bound on the earliest pending event
//! anywhere, and lets every shard run `run_until(gmin + L - 1)`: no event
//! executed in that window can cause a cross-shard arrival inside it, so
//! every shard sees exactly the event prefix the serial engine would.
//! `gmin` uses the calendars' O(levels) read-only bound — never a pop, so
//! no wheel cursor ever advances past a future arrival time — and falls
//! back to the exact O(pending) scan if a loose (wide-bucket) bound stalls
//! for [`STALL_ROUNDS`] rounds without any event executing, any message
//! moving, or the bound improving; the bounded `run_until` probes cascade
//! wide buckets as a side effect, so the fallback is rarely taken.
//!
//! ## Bit-identical merge
//!
//! Sequence numbers are allocated per cell (`seq = cell << CELL_SHIFT |
//! counter`), so an event's `(time, seq)` is a pure function of its
//! scheduling cell's own history — independent of how shards interleave.
//! [`ShardedSim::merge`] therefore reassembles the exact serial state:
//! calendars union to the serial calendar, per-cell counters are taken
//! from each cell's owning shard, and the model halves are recombined by
//! the caller's `absorb`. `tests/sharding.rs` asserts payload equality
//! against the serial oracle at 1/2/4/8 shards.

use crate::calendar::CalendarKind;
use crate::engine::{Ctx, Model, Router, Sim};
use crate::time::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};

/// Consecutive no-progress rounds before the driver switches from the
/// cheap lower-bound query to the exact O(pending) minimum scan.
const STALL_ROUNDS: u32 = 2;

/// A model that can run sharded: events are routable by value, and any
/// out-of-band state an event references (e.g. a forwarded batch living
/// in a sender-side table) can be detached and shipped with it.
pub trait ShardModel: Model {
    /// State carried alongside a cross-shard event (use `()` when events
    /// are self-contained).
    type Luggage: Send;

    /// Remove and return the state `ev` references, as it leaves this
    /// shard. Called exactly once per diverted event, on the sender,
    /// after the sending handler returned — the model must not touch the
    /// state of an already-forwarded event afterwards.
    fn detach(&mut self, ev: &Self::Event) -> Option<Self::Luggage>;

    /// Install state shipped with an arriving cross-shard event, before
    /// the event enters the receiving shard's calendar.
    fn attach(&mut self, ev: &Self::Event, luggage: Self::Luggage);
}

/// The static partition a sharded run executes under.
pub struct ShardPlan {
    /// Owning shard of each scheduling cell (`len` = cell count).
    pub shard_of: Arc<Vec<u16>>,
    /// Number of shards (every `shard_of` entry is `< shards`).
    pub shards: u16,
    /// Minimum cross-shard event latency in nanoseconds: the driver may
    /// only trust it as far as the model honors it. Clamped to ≥ 1.
    pub lookahead_ns: u64,
}

/// A cross-shard event in flight: the scheduling shard already allocated
/// its sequence number, so the receiver injects it verbatim.
struct Arrival<M: ShardModel> {
    at: u64,
    seq: u64,
    ev: M::Event,
    luggage: Option<M::Luggage>,
}

/// N shard-private [`Sim`]s advancing under the conservative window
/// protocol, mergeable back into one serial-equivalent [`Sim`].
pub struct ShardedSim<M: ShardModel> {
    workers: Vec<Sim<M>>,
    plan: ShardPlan,
    /// Per-shard pending arrivals, delivered at the next round start.
    /// Kept in `self` so capacities survive across `run_until` calls
    /// (steady-state zero-alloc, per shard).
    inboxes: Vec<Vec<Arrival<M>>>,
    /// Outbox drain scratch, capacity retained.
    scratch: Vec<(u64, u64, M::Event)>,
    violations: u64,
    /// Events scheduled by the (replicated) boot on each shard.
    boot_scheduled: u64,
}

/// Lock a mutex, riding through poisoning: a panicked peer thread is
/// already being propagated by the driver, so the data is never observed.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<M: ShardModel> ShardedSim<M> {
    /// Build one `Sim` per shard on calendar `kind`.
    ///
    /// `make(s)` builds shard `s`'s model (holding only cells the plan
    /// assigns to `s`, plus any replicated read-only state). `cell_of`
    /// maps an event to its execution cell — a pure function of the event
    /// and static configuration, shared by router and merge. `boot` seeds
    /// initial events; it runs **before** the router is installed, so it
    /// must seed the *same* events on every shard (typically one `Init`),
    /// whose handlers then self-filter to owned cells. The replication is
    /// what keeps every cell counter bit-identical to the serial run; the
    /// merge deducts the replicas from the event statistics.
    ///
    /// # Panics
    /// Panics when the plan is malformed or the boot seeds diverge.
    pub fn new(
        kind: CalendarKind,
        plan: ShardPlan,
        cell_of: Arc<dyn Fn(&M::Event) -> u32 + Send + Sync>,
        mut make: impl FnMut(u16) -> M,
        mut boot: impl FnMut(&mut Sim<M>, u16),
    ) -> ShardedSim<M> {
        let cells = plan.shard_of.len();
        assert!(plan.shards >= 1, "a sharded run needs at least one shard");
        assert!(cells >= 1, "a shard plan needs at least one cell");
        assert!(
            plan.shard_of.iter().all(|&s| s < plan.shards),
            "shard_of entry out of range"
        );
        let n = plan.shards as usize;
        let mut workers = Vec::with_capacity(n);
        let mut boot_scheduled = 0;
        for s in 0..plan.shards {
            let mut sim = Sim::with_calendar(make(s), kind);
            sim.ctx().enable_cells(cells as u32);
            boot(&mut sim, s);
            let seeded = sim.ctx().scheduled_events();
            if s == 0 {
                boot_scheduled = seeded;
            } else {
                assert_eq!(
                    seeded, boot_scheduled,
                    "boot must seed identical events on every shard"
                );
            }
            sim.ctx().set_route(Router {
                shard_of: Arc::clone(&plan.shard_of),
                me: s,
                cell_of: Arc::clone(&cell_of),
                outbox: vec![],
            });
            workers.push(sim);
        }
        ShardedSim {
            workers,
            plan,
            inboxes: (0..n).map(|_| vec![]).collect(),
            scratch: vec![],
            violations: 0,
            boot_scheduled,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u16 {
        self.plan.shards
    }

    /// Lookahead violations observed so far: cross-shard arrivals that
    /// landed at or before the receiver's clock. Always 0 when the model
    /// honors the plan's lookahead; a non-zero count means the run's
    /// trace has diverged from the serial engine (each violating arrival
    /// is clamped to the receiver's next representable instant so the run
    /// still terminates — the differential oracle then reports the
    /// divergence).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Events executed across all shards, with the replicated boot
    /// executions counted once (matches the serial engine's count once
    /// every boot event has fired on every shard).
    pub fn executed_events(&self) -> u64 {
        let total: u64 = self.workers.iter().map(Sim::executed_events).sum();
        total - (self.plan.shards as u64 - 1) * self.boot_scheduled
    }

    /// Advance every shard to `horizon` (inclusive, like
    /// [`Sim::run_until`]). `threads <= 1` runs the window protocol on
    /// the calling thread; larger values run one OS thread per shard
    /// (bit-identical results either way).
    pub fn run_until(&mut self, horizon: SimTime, threads: usize)
    where
        M: Send,
        M::Event: Send,
    {
        let horizon_ns = horizon.as_nanos();
        if threads <= 1 || self.workers.len() == 1 {
            self.run_seq(horizon_ns);
        } else {
            self.run_threaded(horizon_ns);
        }
        for w in &mut self.workers {
            w.run_until(horizon);
        }
    }

    /// Deliver one arrival into `worker`, returning 1 on a lookahead
    /// violation (arrival not in the receiver's future — clamped).
    fn deliver(worker: &mut Sim<M>, a: Arrival<M>) -> u64 {
        if let Some(lug) = a.luggage {
            worker.model.attach(&a.ev, lug);
        }
        let now = worker.now().as_nanos();
        let (at, violated) = if a.at <= now { (now + 1, 1) } else { (a.at, 0) };
        worker.ctx().inject(at, a.seq, a.ev);
        violated
    }

    /// The window protocol, single-threaded round-robin.
    fn run_seq(&mut self, horizon_ns: u64) {
        let n = self.workers.len();
        let la = self.plan.lookahead_ns.max(1);
        let mut prev_gmin = u64::MAX;
        let mut stalled = 0u32;
        loop {
            // Deliver arrivals flushed at the end of the previous round.
            let mut progress = false;
            for s in 0..n {
                let mut inbox = std::mem::take(&mut self.inboxes[s]);
                progress |= !inbox.is_empty();
                for a in inbox.drain(..) {
                    self.violations += Self::deliver(&mut self.workers[s], a);
                }
                self.inboxes[s] = inbox;
            }
            // Global lower bound on the next event anywhere.
            let exact = stalled >= STALL_ROUNDS;
            let mut gmin = u64::MAX;
            for w in &self.workers {
                let b = if exact {
                    w.ctx_ref().peek_min_time()
                } else {
                    w.ctx_ref().next_lower_bound()
                };
                gmin = gmin.min(b);
            }
            if gmin > horizon_ns {
                return;
            }
            // Safe window: nothing executed before gmin + la can place a
            // cross-shard event at or before the window end.
            let wend = SimTime::from_nanos(gmin.saturating_add(la - 1).min(horizon_ns));
            for s in 0..n {
                let before = self.workers[s].executed_events();
                self.workers[s].run_until(wend);
                progress |= self.workers[s].executed_events() > before;
                // Flush this shard's diverted events to their owners.
                let mut out = std::mem::take(&mut self.scratch);
                self.workers[s].ctx().take_outbox(&mut out);
                progress |= !out.is_empty();
                for (at, seq, ev) in out.drain(..) {
                    let dest = match self.workers[s].ctx_ref().route_dest(&ev) {
                        Some(d) => d as usize,
                        // Outbox entries exist only under a router.
                        None => s,
                    };
                    let luggage = self.workers[s].model.detach(&ev);
                    self.inboxes[dest].push(Arrival { at, seq, ev, luggage });
                }
                self.scratch = out;
            }
            stalled = if !progress && gmin == prev_gmin {
                stalled + 1
            } else {
                0
            };
            prev_gmin = gmin;
        }
    }

    /// The window protocol, one OS thread per shard. Rounds are separated
    /// by two barriers; the global minimum and the progress flag are
    /// double-buffered atomics so one round's publish never races the
    /// next round's reset. Mailbox push order between threads is
    /// nondeterministic but immaterial: arrivals carry pre-allocated
    /// `(at, seq)` and the calendar orders by exactly that.
    fn run_threaded(&mut self, horizon_ns: u64)
    where
        M: Send,
        M::Event: Send,
    {
        let la = self.plan.lookahead_ns.max(1);
        let n = self.workers.len();
        let mins = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
        let progress = [AtomicBool::new(false), AtomicBool::new(false)];
        let violations = AtomicU64::new(0);
        let barrier = Barrier::new(n);
        let mailboxes: Vec<Mutex<Vec<Arrival<M>>>> =
            self.inboxes.drain(..).map(Mutex::new).collect();
        std::thread::scope(|sc| {
            let mut handles = Vec::with_capacity(n);
            for (s, worker) in self.workers.iter_mut().enumerate() {
                let mins = &mins;
                let progress = &progress;
                let violations = &violations;
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                handles.push(sc.spawn(move || {
                    let mut local: Vec<Arrival<M>> = vec![];
                    let mut out: Vec<(u64, u64, M::Event)> = vec![];
                    let mut parity = 0usize;
                    let mut prev_gmin = u64::MAX;
                    let mut stalled = 0u32;
                    loop {
                        // Deliver arrivals (flushed before the previous
                        // round's second barrier).
                        std::mem::swap(&mut *lock(&mailboxes[s]), &mut local);
                        let mut prog = !local.is_empty();
                        for a in local.drain(..) {
                            let v = Self::deliver(worker, a);
                            if v != 0 {
                                violations.fetch_add(v, Ordering::Relaxed);
                            }
                        }
                        // Publish this shard's bound into the round's min.
                        let exact = stalled >= STALL_ROUNDS;
                        let b = if exact {
                            worker.ctx_ref().peek_min_time()
                        } else {
                            worker.ctx_ref().next_lower_bound()
                        };
                        mins[parity].fetch_min(b, Ordering::AcqRel);
                        barrier.wait();
                        let gmin = mins[parity].load(Ordering::Acquire);
                        if s == 0 {
                            // Reset the *other* buffers between the two
                            // barriers: peers write them only after the
                            // second barrier of this round.
                            mins[1 - parity].store(u64::MAX, Ordering::Release);
                            progress[1 - parity].store(false, Ordering::Release);
                        }
                        if gmin > horizon_ns {
                            // Same gmin everywhere: all threads exit here.
                            return;
                        }
                        let wend =
                            SimTime::from_nanos(gmin.saturating_add(la - 1).min(horizon_ns));
                        let before = worker.executed_events();
                        worker.run_until(wend);
                        prog |= worker.executed_events() > before;
                        worker.ctx().take_outbox(&mut out);
                        prog |= !out.is_empty();
                        for (at, seq, ev) in out.drain(..) {
                            let dest = match worker.ctx_ref().route_dest(&ev) {
                                Some(d) => d as usize,
                                // Outbox entries exist only under a router.
                                None => s,
                            };
                            let luggage = worker.model.detach(&ev);
                            lock(&mailboxes[dest]).push(Arrival { at, seq, ev, luggage });
                        }
                        if prog {
                            progress[parity].store(true, Ordering::Release);
                        }
                        barrier.wait();
                        let global_prog = progress[parity].load(Ordering::Acquire);
                        stalled = if !global_prog && gmin == prev_gmin {
                            stalled + 1
                        } else {
                            0
                        };
                        prev_gmin = gmin;
                        parity = 1 - parity;
                    }
                }));
            }
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
        self.inboxes = mailboxes
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        self.violations += violations.load(Ordering::Acquire);
    }

    /// Reassemble the serial-equivalent [`Sim`] on calendar `kind`: the
    /// union of the shard calendars, per-cell counters taken from each
    /// cell's owning shard, and the model recombined by `absorb` (which
    /// receives the shard models in shard order). Event statistics deduct
    /// the replicated boot executions, so the result matches the serial
    /// engine bit for bit — `state_payload` equality is asserted by the
    /// differential suites.
    ///
    /// # Panics
    /// Panics if a replicated boot event is still pending (merge before
    /// any `run_until`) or the shard calendars overlap — both indicate
    /// driver bugs, not model states, and must not be silently merged.
    pub fn merge<F>(self, kind: CalendarKind, absorb: F) -> Sim<M>
    where
        M::Event: Clone,
        F: FnOnce(Vec<M>) -> M,
    {
        let n = self.plan.shards as u64;
        let now = self
            .workers
            .iter()
            .map(|w| w.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        let executed: u64 =
            self.workers.iter().map(Sim::executed_events).sum::<u64>() - (n - 1) * self.boot_scheduled;
        let scheduled: u64 = self
            .workers
            .iter()
            .map(|w| w.ctx_ref().scheduled_events())
            .sum::<u64>()
            - (n - 1) * self.boot_scheduled;
        // Each cell's counter is authoritative on its owning shard; other
        // shards only ever bumped it through the replicated boot.
        let cells = self.plan.shard_of.len();
        let mut counters = Vec::with_capacity(cells);
        for c in 0..cells {
            let owner = self.plan.shard_of[c] as usize;
            counters.push(self.workers[owner].ctx_ref().seq_counters()[c]);
        }
        assert_eq!(
            counters.iter().sum::<u64>(),
            scheduled,
            "merged cell counters disagree with the scheduled count"
        );
        let mut entries = Vec::with_capacity(
            self.workers
                .iter()
                .map(|w| w.ctx_ref().pending_events())
                .sum(),
        );
        for w in &self.workers {
            entries.append(&mut w.ctx_ref().live_entries());
        }
        entries.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        assert!(
            entries.windows(2).all(|p| (p[0].0, p[0].1) < (p[1].0, p[1].1)),
            "shard calendars overlap (a replicated boot event is still pending?)"
        );
        let models: Vec<M> = self.workers.into_iter().map(Sim::into_model).collect();
        let ctx = Ctx::assemble(kind, now, executed, scheduled, counters, entries);
        Sim::from_parts(absorb(models), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Ctx;
    use crate::time::SimDur;

    const INIT: u32 = u32::MAX;
    const LA: u64 = 5_000;

    /// Toy multi-cell model: each cell runs an event chain that hops to
    /// `(cell + 3) % cells` with a ≥ LA delay, so hops routinely cross
    /// shard boundaries under a contiguous partition. Mirrors the ROCC
    /// boot pattern: a replicated `INIT` whose handler self-filters to
    /// owned cells.
    struct Ring {
        cells: u32,
        me: u16,
        shard_of: Vec<u16>, // empty = serial (owns everything)
        log: Vec<(u64, u32)>,
    }

    impl Ring {
        fn owns(&self, c: u32) -> bool {
            self.shard_of.is_empty() || self.shard_of[c as usize] == self.me
        }
    }

    impl Model for Ring {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            if ev == INIT {
                for c in 0..self.cells {
                    if self.owns(c) {
                        ctx.set_cell(c);
                        ctx.post_at(SimTime::from_nanos(1 + (c as u64 * 977) % 3_000), c);
                    }
                }
                return;
            }
            ctx.set_cell(ev);
            self.log.push((ctx.now().as_nanos(), ev));
            let delay = LA + (ev as u64 * 31) % 97;
            ctx.post_in(SimDur::from_nanos(delay), (ev + 3) % self.cells);
        }
    }

    impl ShardModel for Ring {
        type Luggage = ();
        fn detach(&mut self, _ev: &u32) -> Option<()> {
            None
        }
        fn attach(&mut self, _ev: &u32, _l: ()) {}
    }

    fn plan(cells: u32, shards: u16, lookahead_ns: u64) -> ShardPlan {
        // Contiguous chunks, remainder to the front.
        let per = (cells as usize).div_ceil(shards as usize);
        let shard_of: Vec<u16> = (0..cells as usize).map(|c| (c / per) as u16).collect();
        ShardPlan {
            shard_of: Arc::new(shard_of),
            shards,
            lookahead_ns,
        }
    }

    fn serial(cells: u32, kind: CalendarKind, horizon: u64) -> Sim<Ring> {
        let mut sim = Sim::with_calendar(
            Ring { cells, me: 0, shard_of: vec![], log: vec![] },
            kind,
        );
        sim.ctx().enable_cells(cells);
        sim.ctx().post_at(SimTime::ZERO, INIT);
        sim.run_until(SimTime::from_nanos(horizon));
        sim
    }

    fn sharded(
        cells: u32,
        shards: u16,
        kind: CalendarKind,
        lookahead_ns: u64,
    ) -> ShardedSim<Ring> {
        let p = plan(cells, shards, lookahead_ns);
        let shard_of = Arc::clone(&p.shard_of);
        ShardedSim::new(
            kind,
            p,
            Arc::new(|ev: &u32| if *ev == INIT { 0 } else { *ev }),
            move |s| Ring {
                cells,
                me: s,
                shard_of: shard_of.as_ref().clone(),
                log: vec![],
            },
            |sim, _s| sim.ctx().post_at(SimTime::ZERO, INIT),
        )
    }

    fn absorb(mut models: Vec<Ring>) -> Ring {
        let mut base = models.remove(0);
        for m in models {
            base.log.extend(m.log);
        }
        base
    }

    fn sorted(mut log: Vec<(u64, u32)>) -> Vec<(u64, u32)> {
        log.sort_unstable();
        log
    }

    #[test]
    fn sharded_run_matches_serial_on_both_backends() {
        const CELLS: u32 = 8;
        const HORIZON: u64 = 50_000_000;
        for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
            let oracle = serial(CELLS, kind, HORIZON);
            for shards in [1u16, 2, 4, 8] {
                let mut s = sharded(CELLS, shards, kind, LA);
                s.run_until(SimTime::from_nanos(HORIZON), 1);
                assert_eq!(s.violations(), 0, "{kind:?}/{shards}");
                assert_eq!(s.executed_events(), oracle.executed_events());
                let merged = s.merge(kind, absorb);
                assert_eq!(merged.now(), oracle.now());
                assert_eq!(merged.executed_events(), oracle.executed_events());
                assert_eq!(
                    merged.ctx_ref().scheduled_events(),
                    oracle.ctx_ref().scheduled_events()
                );
                assert_eq!(
                    merged.ctx_ref().seq_counters(),
                    oracle.ctx_ref().seq_counters(),
                    "{kind:?}/{shards}: per-cell counters diverged"
                );
                assert_eq!(
                    sorted(merged.model.log),
                    sorted(oracle.model.log.clone()),
                    "{kind:?}/{shards}: executed traces diverged"
                );
            }
        }
    }

    #[test]
    fn merge_midway_then_continue_matches_serial() {
        const CELLS: u32 = 8;
        for kind in [CalendarKind::Wheel, CalendarKind::Heap] {
            let oracle = serial(CELLS, kind, 40_000_000);
            let mut s = sharded(CELLS, 4, kind, LA);
            s.run_until(SimTime::from_nanos(17_000_000), 1);
            let mut merged = s.merge(kind, absorb);
            // The merged sim must carry the exact live calendar: finishing
            // the run serially lands in the oracle's state.
            merged.run_until(SimTime::from_nanos(40_000_000));
            assert_eq!(merged.executed_events(), oracle.executed_events());
            assert_eq!(
                merged.ctx_ref().seq_counters(),
                oracle.ctx_ref().seq_counters()
            );
            assert_eq!(sorted(merged.model.log), sorted(oracle.model.log.clone()));
        }
    }

    #[test]
    fn threaded_execution_is_bit_identical_to_sequential() {
        const CELLS: u32 = 8;
        const HORIZON: u64 = 30_000_000;
        let mut seq = sharded(CELLS, 4, CalendarKind::Wheel, LA);
        seq.run_until(SimTime::from_nanos(HORIZON), 1);
        let mut thr = sharded(CELLS, 4, CalendarKind::Wheel, LA);
        thr.run_until(SimTime::from_nanos(HORIZON), 4);
        assert_eq!(thr.violations(), 0);
        assert_eq!(seq.executed_events(), thr.executed_events());
        let a = seq.merge(CalendarKind::Wheel, absorb);
        let b = thr.merge(CalendarKind::Wheel, absorb);
        assert_eq!(a.ctx_ref().seq_counters(), b.ctx_ref().seq_counters());
        assert_eq!(sorted(a.model.log), sorted(b.model.log));
    }

    #[test]
    fn inflated_lookahead_is_detected_as_violations() {
        // Claiming 50 µs of lookahead when hops deliver after ~5 µs makes
        // the windows unsound: arrivals land at or before the receiver's
        // clock and must be counted (the differential oracle then reports
        // the trace divergence — scripts/verify.sh's mutation self-check).
        let mut s = sharded(8, 4, CalendarKind::Wheel, 50_000);
        s.run_until(SimTime::from_nanos(20_000_000), 1);
        assert!(
            s.violations() > 0,
            "inflated lookahead must surface as violations"
        );
    }

    #[test]
    fn one_shard_degenerates_to_serial() {
        let oracle = serial(4, CalendarKind::Wheel, 10_000_000);
        let mut s = sharded(4, 1, CalendarKind::Wheel, LA);
        s.run_until(SimTime::from_nanos(10_000_000), 1);
        assert_eq!(s.violations(), 0);
        let merged = s.merge(CalendarKind::Wheel, absorb);
        assert_eq!(merged.executed_events(), oracle.executed_events());
        assert_eq!(sorted(merged.model.log), sorted(oracle.model.log.clone()));
    }
}

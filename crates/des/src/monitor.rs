//! Statistics monitors for observation-based and time-weighted measures.

use crate::snapshot::{Dec, Enc, Persist, SnapError};
use crate::time::{SimDur, SimTime};

/// Welford online tally of an observation-based statistic (e.g. per-sample
/// monitoring latency).
#[derive(Clone, Debug, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Fresh, empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another tally into this one (parallel-friendly combination).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Persist for Tally {
    fn save(&self, w: &mut Enc) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(Tally {
            n: r.take_u64()?,
            mean: r.take_f64()?,
            m2: r.take_f64()?,
            min: r.take_f64()?,
            max: r.take_f64()?,
        })
    }
}

/// Accumulator of resource busy time, yielding utilization over an interval.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusyTime {
    total_ns: u64,
}

impl BusyTime {
    /// Fresh accumulator.
    pub fn new() -> Self {
        BusyTime { total_ns: 0 }
    }

    /// Credit a span of busy time.
    #[inline]
    pub fn add(&mut self, d: SimDur) {
        self.total_ns += d.as_nanos();
    }

    /// Total accumulated busy time.
    pub fn total(&self) -> SimDur {
        SimDur::from_nanos(self.total_ns)
    }

    /// Busy fraction of the interval `[0, horizon]` (0 if the horizon is 0).
    pub fn utilization(&self, horizon: SimDur) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.total_ns as f64 / horizon.as_nanos() as f64
        }
    }
}

impl Persist for BusyTime {
    fn save(&self, w: &mut Enc) {
        w.put_u64(self.total_ns);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(BusyTime {
            total_ns: r.take_u64()?,
        })
    }
}

/// Piecewise-constant time-weighted statistic (e.g. queue length over time).
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_t: t0,
            last_v: v0,
            integral: 0.0,
            max: v0,
        }
    }

    /// Record that the tracked value becomes `v` at time `t`.
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t);
        self.integral += self.last_v * (t - self.last_t).as_secs_f64();
        self.last_t = t;
        self.last_v = v;
        self.max = self.max.max(v);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.last_v
    }

    /// Largest value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-average of the value over `[t0, t]`, where `t0` is the
    /// construction instant. Flushes the final segment up to `t`.
    pub fn time_average(&mut self, t0: SimTime, t: SimTime) -> f64 {
        self.set(t, self.last_v);
        let span = (t - t0).as_secs_f64();
        if span <= 0.0 {
            self.last_v
        } else {
            self.integral / span
        }
    }
}

/// Monotone event counter with rate helper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// Fresh counter.
    pub fn new() -> Self {
        Counter { n: 0 }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.n += 1;
    }

    /// Increment by `k`.
    #[inline]
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Events per second over `span`.
    pub fn rate(&self, span: SimDur) -> f64 {
        let s = span.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.n as f64 / s
        }
    }
}

/// Records the observable cost of injected faults on one element: crash
/// count, samples lost, forwarding retries, and accumulated downtime.
///
/// Downtime is tracked as an open/closed interval sum so it can be queried
/// mid-outage: [`FaultMonitor::downtime_at`] includes the currently open
/// down interval, which matters when a run's horizon lands while the
/// element is still down.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultMonitor {
    crashes: u64,
    lost: u64,
    retries: u64,
    down_since: Option<SimTime>,
    downtime_ns: u64,
}

impl FaultMonitor {
    /// Fresh monitor with nothing recorded.
    pub fn new() -> Self {
        FaultMonitor::default()
    }

    /// Record a crash starting at `t`. No-op on the interval if already down.
    pub fn crash_at(&mut self, t: SimTime) {
        self.crashes += 1;
        if self.down_since.is_none() {
            self.down_since = Some(t);
        }
    }

    /// Record recovery at `t`, closing the open down interval.
    pub fn recover_at(&mut self, t: SimTime) {
        if let Some(start) = self.down_since.take() {
            self.downtime_ns += (t - start).as_nanos();
        }
    }

    /// Record `n` samples lost to faults.
    #[inline]
    pub fn add_lost(&mut self, n: u64) {
        self.lost += n;
    }

    /// Record one forwarding retry.
    #[inline]
    pub fn add_retry(&mut self) {
        self.retries += 1;
    }

    /// Whether the element is currently down.
    pub fn is_down(&self) -> bool {
        self.down_since.is_some()
    }

    /// Number of crashes recorded.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Total samples lost to faults.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Total forwarding retries.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total downtime up to `now`, including a still-open down interval.
    pub fn downtime_at(&self, now: SimTime) -> SimDur {
        let open = match self.down_since {
            Some(start) if now > start => (now - start).as_nanos(),
            _ => 0,
        };
        SimDur::from_nanos(self.downtime_ns + open)
    }
}

impl Persist for FaultMonitor {
    fn save(&self, w: &mut Enc) {
        w.put_u64(self.crashes);
        w.put_u64(self.lost);
        w.put_u64(self.retries);
        self.down_since.save(w);
        w.put_u64(self.downtime_ns);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(FaultMonitor {
            crashes: r.take_u64()?,
            lost: r.take_u64()?,
            retries: r.take_u64()?,
            down_since: Persist::load(r)?,
            downtime_ns: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basic_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
        assert!((t.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn tally_empty_is_sane() {
        let t = Tally::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
    }

    #[test]
    fn tally_merge_matches_bulk() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut bulk = Tally::new();
        for &x in &data {
            bulk.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 3 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        assert!((a.mean() - bulk.mean()).abs() < 1e-9);
        assert!((a.variance() - bulk.variance()).abs() < 1e-9);
    }

    #[test]
    fn busy_time_utilization() {
        let mut b = BusyTime::new();
        b.add(SimDur::from_secs_f64(0.25));
        b.add(SimDur::from_secs_f64(0.25));
        assert!((b.utilization(SimDur::from_secs_f64(1.0)) - 0.5).abs() < 1e-12);
        assert_eq!(BusyTime::new().utilization(SimDur::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let t0 = SimTime::ZERO;
        let mut tw = TimeWeighted::new(t0, 0.0);
        tw.set(SimTime::from_secs_f64(1.0), 2.0); // 0 for 1s
        tw.set(SimTime::from_secs_f64(3.0), 1.0); // 2 for 2s
        let avg = tw.time_average(t0, SimTime::from_secs_f64(4.0)); // 1 for 1s
        assert!((avg - (0.0 + 4.0 + 1.0) / 4.0).abs() < 1e-12);
        assert_eq!(tw.max(), 2.0);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.count(), 10);
        assert!((c.rate(SimDur::from_secs_f64(2.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fault_monitor_accumulates_closed_intervals() {
        let mut m = FaultMonitor::new();
        assert!(!m.is_down());
        m.crash_at(SimTime::from_secs_f64(1.0));
        assert!(m.is_down());
        m.recover_at(SimTime::from_secs_f64(1.5));
        m.crash_at(SimTime::from_secs_f64(3.0));
        m.recover_at(SimTime::from_secs_f64(3.25));
        assert_eq!(m.crashes(), 2);
        assert!(!m.is_down());
        let d = m.downtime_at(SimTime::from_secs_f64(10.0));
        assert!((d.as_secs_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fault_monitor_includes_open_interval() {
        let mut m = FaultMonitor::new();
        m.crash_at(SimTime::from_secs_f64(2.0));
        let d = m.downtime_at(SimTime::from_secs_f64(5.0));
        assert!((d.as_secs_f64() - 3.0).abs() < 1e-12);
        // Querying before the crash instant contributes nothing.
        assert_eq!(m.downtime_at(SimTime::from_secs_f64(2.0)), SimDur::ZERO);
    }

    #[test]
    fn fault_monitor_counts_losses_and_retries() {
        let mut m = FaultMonitor::new();
        m.add_lost(7);
        m.add_lost(3);
        m.add_retry();
        m.add_retry();
        assert_eq!(m.lost(), 10);
        assert_eq!(m.retries(), 2);
    }
}

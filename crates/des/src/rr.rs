//! A bank of identical CPUs scheduled round-robin with a fixed quantum,
//! as a pure state machine (no events owned).
//!
//! This models the Unix scheduler abstraction of the paper's ROCC model: all
//! runnable processes on a node share a single ready queue; a dispatched
//! process runs for `min(quantum, remaining demand)` and is then either
//! finished or preempted to the queue tail.
//!
//! Event discipline: each dispatch returns the slice length; the model
//! schedules exactly one slice-end event per dispatch. Because arrivals never
//! preempt a running slice, a slice-end event is never stale — the invariant
//! is one pending slice event per busy CPU.

use crate::monitor::BusyTime;
use crate::time::SimDur;
use std::collections::VecDeque;

/// Result of submitting a job to the bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submit {
    /// An idle CPU picked the job up; a slice of the returned length starts
    /// now on CPU `cpu`. The model must schedule the slice-end event.
    Dispatched {
        /// The CPU the job was dispatched to.
        cpu: usize,
        /// Length of the started slice.
        slice: SimDur,
    },
    /// All CPUs busy; job queued at the returned depth.
    Queued(usize),
}

/// What happened when a slice ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceEnd<J> {
    /// The job whose slice just ended (a copy, for attribution).
    pub job: J,
    /// CPU time consumed by this slice.
    pub ran: SimDur,
    /// True if the job's demand is fully served.
    pub completed: bool,
    /// If the CPU immediately dispatched another job (possibly the same one),
    /// the length of its slice; the model must schedule its slice-end event.
    pub next_slice: Option<SimDur>,
}

struct Running<J> {
    job: J,
    remaining: SimDur,
    slice: SimDur,
}

/// The CPU bank.
pub struct RrCpuBank<J> {
    quantum: SimDur,
    running: Vec<Option<Running<J>>>,
    ready: VecDeque<(J, SimDur)>,
    busy: BusyTime,
    completed: u64,
}

impl<J: Copy> RrCpuBank<J> {
    /// A bank of `cpus` identical processors with the given quantum.
    ///
    /// # Panics
    /// Panics if `cpus == 0` or the quantum is zero.
    pub fn new(cpus: usize, quantum: SimDur) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        assert!(!quantum.is_zero(), "quantum must be positive");
        RrCpuBank {
            quantum,
            running: (0..cpus).map(|_| None).collect(),
            ready: VecDeque::new(),
            busy: BusyTime::new(),
            completed: 0,
        }
    }

    /// Number of CPUs in the bank.
    pub fn cpus(&self) -> usize {
        self.running.len()
    }

    /// Submit a job with the given total CPU demand.
    pub fn submit(&mut self, job: J, demand: SimDur) -> Submit {
        if let Some(cpu) = self.running.iter().position(Option::is_none) {
            let slice = self.dispatch(cpu, job, demand);
            Submit::Dispatched { cpu, slice }
        } else {
            self.ready.push_back((job, demand));
            Submit::Queued(self.ready.len() - 1)
        }
    }

    fn dispatch(&mut self, cpu: usize, job: J, remaining: SimDur) -> SimDur {
        let slice = remaining.min(self.quantum);
        self.busy.add(slice);
        self.running[cpu] = Some(Running {
            job,
            remaining,
            slice,
        });
        slice
    }

    /// The slice on `cpu` ended. Decides completion vs. preemption and
    /// dispatches the next ready job, if any.
    ///
    /// # Panics
    /// Panics if `cpu` was idle (a slice event without a dispatch is a model
    /// bug).
    pub fn slice_end(&mut self, cpu: usize) -> SliceEnd<J> {
        let r = self.running[cpu]
            .take()
            .expect("RrCpuBank::slice_end on idle cpu");
        let remaining = r.remaining - r.slice;
        if remaining.is_zero() {
            self.completed += 1;
            let next_slice = self
                .ready
                .pop_front()
                .map(|(j, rem)| self.dispatch(cpu, j, rem));
            SliceEnd {
                job: r.job,
                ran: r.slice,
                completed: true,
                next_slice,
            }
        } else {
            // Preempted: requeue at the tail, dispatch the head (which may be
            // this very job if the queue was empty).
            self.ready.push_back((r.job, remaining));
            let (j, rem) = self.ready.pop_front().expect("just pushed");
            let slice = self.dispatch(cpu, j, rem);
            SliceEnd {
                job: r.job,
                ran: r.slice,
                completed: false,
                next_slice: Some(slice),
            }
        }
    }

    /// Number of jobs waiting in the ready queue.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Number of busy CPUs.
    pub fn busy_cpus(&self) -> usize {
        self.running.iter().filter(|r| r.is_some()).count()
    }

    /// Total CPU time dispensed (all CPUs combined).
    pub fn busy_total(&self) -> SimDur {
        self.busy.total()
    }

    /// Average per-CPU utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimDur) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.busy.total().as_nanos() as f64
                / (horizon.as_nanos() as f64 * self.cpus() as f64)
        }
    }

    /// Number of jobs fully served.
    pub fn completed_jobs(&self) -> u64 {
        self.completed
    }
}

impl<J: crate::snapshot::Persist> crate::snapshot::Persist for RrCpuBank<J> {
    fn save(&self, w: &mut crate::snapshot::Enc) {
        self.quantum.save(w);
        w.put_usize(self.running.len());
        for slot in &self.running {
            match slot {
                None => w.put_u8(0),
                Some(run) => {
                    w.put_u8(1);
                    run.job.save(w);
                    run.remaining.save(w);
                    run.slice.save(w);
                }
            }
        }
        self.ready.save(w);
        self.busy.save(w);
        w.put_u64(self.completed);
    }
    fn load(
        r: &mut crate::snapshot::Dec<'_>,
    ) -> Result<Self, crate::snapshot::SnapError> {
        use crate::snapshot::{Persist, SnapError};
        let quantum: SimDur = Persist::load(r)?;
        if quantum.is_zero() {
            return Err(SnapError::Malformed("RrCpuBank zero quantum"));
        }
        let cpus = r.take_usize()?;
        if cpus == 0 {
            return Err(SnapError::Malformed("RrCpuBank with zero CPUs"));
        }
        let mut running = Vec::with_capacity(cpus.min(4096));
        for _ in 0..cpus {
            running.push(match r.take_u8()? {
                0 => None,
                1 => Some(Running {
                    job: J::load(r)?,
                    remaining: Persist::load(r)?,
                    slice: Persist::load(r)?,
                }),
                _ => return Err(SnapError::Malformed("RrCpuBank running tag")),
            });
        }
        Ok(RrCpuBank {
            quantum,
            running,
            ready: Persist::load(r)?,
            busy: Persist::load(r)?,
            completed: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: f64) -> SimDur {
        SimDur::from_micros_f64(x)
    }

    #[test]
    fn short_job_runs_in_one_slice() {
        let mut b = RrCpuBank::new(1, us(10_000.0));
        match b.submit(7u32, us(2_213.0)) {
            Submit::Dispatched { cpu, slice } => {
                assert_eq!(cpu, 0);
                assert_eq!(slice, us(2_213.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = b.slice_end(0);
        assert!(e.completed);
        assert_eq!(e.job, 7);
        assert_eq!(e.ran, us(2_213.0));
        assert_eq!(e.next_slice, None);
        assert_eq!(b.completed_jobs(), 1);
    }

    #[test]
    fn long_job_is_preempted_each_quantum() {
        let mut b = RrCpuBank::new(1, us(10.0));
        b.submit(1u32, us(25.0));
        let e1 = b.slice_end(0);
        assert!(!e1.completed);
        assert_eq!(e1.ran, us(10.0));
        assert_eq!(e1.next_slice, Some(us(10.0))); // same job redispatches
        let e2 = b.slice_end(0);
        assert!(!e2.completed);
        let e3 = b.slice_end(0);
        assert!(e3.completed);
        assert_eq!(e3.ran, us(5.0));
        assert_eq!(b.busy_total(), us(25.0));
    }

    #[test]
    fn round_robin_interleaves_two_jobs() {
        let mut b = RrCpuBank::new(1, us(10.0));
        b.submit(1u32, us(20.0));
        assert_eq!(b.submit(2u32, us(10.0)), Submit::Queued(0));
        // Slice 1: job 1 preempted, job 2 dispatched.
        let e = b.slice_end(0);
        assert_eq!((e.job, e.completed), (1, false));
        // Slice 2: job 2 completes; job 1 redispatches.
        let e = b.slice_end(0);
        assert_eq!((e.job, e.completed), (2, true));
        assert_eq!(e.next_slice, Some(us(10.0)));
        // Slice 3: job 1 completes.
        let e = b.slice_end(0);
        assert_eq!((e.job, e.completed), (1, true));
    }

    #[test]
    fn multi_cpu_fills_idle_cpus_first() {
        let mut b = RrCpuBank::new(2, us(10.0));
        assert!(matches!(b.submit(1u32, us(5.0)), Submit::Dispatched { cpu: 0, .. }));
        assert!(matches!(b.submit(2u32, us(5.0)), Submit::Dispatched { cpu: 1, .. }));
        assert_eq!(b.submit(3u32, us(5.0)), Submit::Queued(0));
        assert_eq!(b.busy_cpus(), 2);
        let e = b.slice_end(0);
        assert!(e.completed);
        assert_eq!(e.next_slice, Some(us(5.0))); // job 3 starts on cpu 0
    }

    #[test]
    fn utilization_counts_all_cpus() {
        let mut b = RrCpuBank::new(2, us(100.0));
        b.submit(1u32, us(50.0));
        b.slice_end(0);
        // 50us of work over 2 CPUs * 100us horizon = 25%.
        assert!((b.utilization(us(100.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_job_completes_immediately() {
        let mut b = RrCpuBank::new(1, us(10.0));
        match b.submit(1u32, SimDur::ZERO) {
            Submit::Dispatched { slice, .. } => assert_eq!(slice, SimDur::ZERO),
            other => panic!("unexpected {other:?}"),
        }
        let e = b.slice_end(0);
        assert!(e.completed);
        assert_eq!(e.ran, SimDur::ZERO);
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn slice_end_on_idle_cpu_panics() {
        let mut b: RrCpuBank<u32> = RrCpuBank::new(1, us(10.0));
        b.slice_end(0);
    }

    #[test]
    fn conservation_of_demand() {
        // Property-style check: total dispensed CPU equals total demand.
        let mut b = RrCpuBank::new(3, us(7.0));
        let demands = [13.0, 1.0, 29.0, 7.0, 14.0, 3.5, 100.0];
        let mut pending: Vec<(usize, SimDur)> = vec![];
        for (i, &d) in demands.iter().enumerate() {
            match b.submit(i as u32, us(d)) {
                Submit::Dispatched { cpu, slice } => pending.push((cpu, slice)),
                Submit::Queued(_) => {}
            }
        }
        // Drive slices to completion in a simple queue order.
        let mut done = 0;
        while done < demands.len() {
            let (cpu, _) = pending.remove(0);
            let e = b.slice_end(cpu);
            if e.completed {
                done += 1;
            }
            if let Some(s) = e.next_slice {
                pending.push((cpu, s));
            }
        }
        let total: f64 = demands.iter().sum();
        assert!((b.busy_total().as_micros_f64() - total).abs() < 1e-6);
        assert_eq!(b.completed_jobs(), demands.len() as u64);
        assert_eq!(b.ready_len(), 0);
    }
}

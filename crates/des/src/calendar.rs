//! Event calendars: the hierarchical timing wheel (default) and the legacy
//! binary-heap fallback, behind one interface with generation-stamped O(1)
//! cancellation.
//!
//! ## Why a wheel
//!
//! The original calendar was a `BinaryHeap` ordered by `(time, seq)` with a
//! `HashSet<u64>` of cancelled sequence numbers probed on every pop: O(log n)
//! per operation, a hash probe per pop, and unbounded growth of the cancelled
//! set when handles were cancelled after firing. The wheel replaces all three
//! costs: amortized O(1) enqueue/dequeue keyed on the integer-nanosecond
//! clock, and cancellation through a slot slab whose generation stamps make
//! stale handles (fired or already-cancelled) exact no-ops with no residue.
//!
//! ## Wheel geometry (see DESIGN.md §5.7)
//!
//! All placement math runs in the **key domain**: `key(t) = t >> RES_BITS`.
//! A level-0 bucket spans 2^[`RES_BITS`] = 64 ns. The resolution trades
//! cascade depth against staged-queue sorting: events closer together than
//! one bucket share a key and must be kept `(time, seq)`-sorted when the
//! bucket is staged, which degenerates into an O(n) insertion sort once
//! typical inter-event gaps fall below the bucket span (a 4 µs bucket
//! turned the dense timer-bank benchmark into exactly that). 64 ns sits
//! under the gaps of every measured workload while still shaving one
//! cascade level off the model's millisecond-scale delays relative to
//! full 1 ns resolution.
//!
//! * [`LEVELS`] levels of [`SLOTS`] = 2^[`LEVEL_BITS`] buckets each; level
//!   *l* spans 64^*l* keys. 10 levels × 6 bits = 60 bits ≥ the 58 key bits
//!   of the full `u64` nanosecond clock. (A wider 256-bucket geometry was
//!   measured and rejected: the op mix is identical but the 4× larger,
//!   scattered bucket array loses on cache locality.)
//! * An event with key `k` lives at the level of the highest bit in which
//!   `k` differs from the cursor's key (the cursor is the time of the last
//!   delivered event), in bucket `(k >> 6·l) & 63`. Every bucket therefore
//!   sits inside the cursor's parent bucket at the level above — no ring
//!   wraparound.
//! * A one-word occupancy bitmap per level makes "earliest non-empty
//!   bucket" a single `trailing_zeros` instruction, and a cached minimal
//!   candidate (kept exact by `place`) skips even that scan on most pops.
//!
//! ## Determinism argument
//!
//! Events must fire in `(time, seq)` order with ties in schedule order, bit
//! for bit identical to the heap. The wheel guarantees this structurally:
//!
//! 1. the earliest candidate bucket is chosen by *bucket base key*, and on a
//!    base-key tie a higher level is promoted (cascaded) before a level-0
//!    bucket is delivered, so no event can hide above a bucket being drained;
//! 2. a level-0 bucket holds exactly one key (entries within 2^RES_BITS ns
//!    of each other), and is **sorted by `(time, seq)`** when staged for
//!    delivery, so order never depends on cascade history;
//! 3. `seq` is globally monotone and the staged queue is kept sorted: an
//!    event scheduled *into the staged key* after staging is inserted at its
//!    `(time, seq)` position (almost always the back).
//!
//! The differential property test (`tests/calendar_diff.rs`) drives random
//! schedule/cancel/run sequences through both backends and asserts identical
//! `(time, event)` traces.

use crate::time::SimTime;

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Bits per wheel level (64 buckets per level).
pub const LEVEL_BITS: u32 = 6;
/// Buckets per wheel level.
pub const SLOTS: usize = 1 << LEVEL_BITS;
/// 64-bit words per level-occupancy bitmap.
const WORDS: usize = SLOTS / 64;
/// Resolution shift: a level-0 bucket spans `2^RES_BITS` nanoseconds.
/// Placement keys are `at >> RES_BITS`; full-resolution order within a
/// bucket is restored by the `(time, seq)` sort at staging time.
pub const RES_BITS: u32 = 6;
/// Wheel levels; `LEVELS * LEVEL_BITS >= 64 - RES_BITS` covers the whole
/// key space.
pub const LEVELS: usize = 10;

/// Placement key of an absolute time: the wheel's unit of geometry.
#[inline]
fn key(at: u64) -> u64 {
    at >> RES_BITS
}

/// Handle to a scheduled event, usable for cancellation.
///
/// Internally a `(slab index, generation)` pair: the slab slot is recycled
/// after the event fires (or its cancellation is collected), bumping the
/// generation, so cancelling a stale handle is a detectable no-op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle {
    idx: u32,
    gen: u32,
}

/// Which calendar implementation a [`crate::Sim`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CalendarKind {
    /// Hierarchical timing wheel: amortized O(1) schedule/pop/cancel.
    /// The default.
    Wheel,
    /// The legacy binary heap: O(log n) schedule/pop (kept as a fallback
    /// and as the differential-testing oracle).
    Heap,
}

impl CalendarKind {
    /// The default kind, overridable with `PARADYN_CALENDAR=heap|wheel`
    /// (useful for A/B benchmarking without code changes).
    pub fn default_from_env() -> CalendarKind {
        match std::env::var("PARADYN_CALENDAR").as_deref() {
            Ok("heap") => CalendarKind::Heap,
            _ => CalendarKind::Wheel,
        }
    }
}

/// Point-in-time occupancy/health counters of a calendar (also emitted into
/// `BENCH_des.json` by the kernel benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CalendarStats {
    /// Live (schedulable, not cancelled) pending events.
    pub live: usize,
    /// Cancelled entries still physically present awaiting lazy collection.
    /// Bounded by the number of cancels whose slot the cursor has not yet
    /// passed — never grows across fired events.
    pub cancelled_pending: usize,
    /// Total slab slots ever allocated (high-water mark of concurrency).
    pub slab_slots: usize,
    /// Slab slots currently free for reuse.
    pub slab_free: usize,
    /// Non-empty wheel buckets (0 for the heap backend).
    pub occupied_buckets: usize,
}

// Slab slot lifecycle, packed with the generation into one u32 word
// (`gen << 2 | state`): cancel is a single compare-and-store, and the whole
// slab for a few hundred pending events fits in a handful of cache lines.
// `VACANT` slots are on the free list. The generation wraps in 30 bits; a
// handle only collides after one slot is reused 2^30 times while the stale
// handle is still held.
const STATE_MASK: u32 = 0b11;
const VACANT: u32 = 0;
const LIVE: u32 = 1;
const CANCELLED: u32 = 2;

/// Sentinel slot index for fire-and-forget entries scheduled through the
/// no-handle path ([`Calendar::schedule_nocancel`]): no slab slot is
/// allocated, the entry can never be cancelled, and release is a no-op.
/// Most model events (the ROCC hot path never cancels) take this path, so
/// the steady state does no slab work at all.
const NO_SLOT: u32 = u32::MAX;

/// Generation-stamped slot arena: one slot per pending event. O(1) alloc,
/// cancel, and release; size bounded by peak concurrent pending events.
struct Slab {
    slots: Vec<u32>,
    free: Vec<u32>,
}

impl Slab {
    fn new() -> Slab {
        // lint:allow(hot-path-alloc): construction-time; both vecs start empty
        Slab { slots: Vec::new(), free: Vec::new() }
    }

    #[inline]
    fn alloc(&mut self) -> EventHandle {
        match self.free.pop() {
            Some(idx) => {
                let w = &mut self.slots[idx as usize];
                debug_assert_eq!(*w & STATE_MASK, VACANT);
                *w |= LIVE;
                EventHandle { idx, gen: *w >> 2 }
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(LIVE);
                EventHandle { idx, gen: 0 }
            }
        }
    }

    /// Mark a live, current-generation slot cancelled. Returns whether the
    /// cancel took effect (stale handles: `false`, and nothing is stored).
    #[inline]
    fn cancel(&mut self, h: EventHandle) -> bool {
        match self.slots.get_mut(h.idx as usize) {
            Some(w) if *w == (h.gen << 2) | LIVE => {
                *w = (h.gen << 2) | CANCELLED;
                true
            }
            _ => false,
        }
    }

    #[inline]
    fn is_cancelled(&self, idx: u32) -> bool {
        // Fire-and-forget entries have no slot and can never be cancelled;
        // the check short-circuits before touching slab memory.
        idx != NO_SLOT && self.slots[idx as usize] & STATE_MASK == CANCELLED
    }

    /// Free a slot whose entry left the calendar (fired or collected),
    /// bumping the generation so outstanding handles go stale. No-op for
    /// the [`NO_SLOT`] sentinel.
    #[inline]
    fn release(&mut self, idx: u32) {
        if idx == NO_SLOT {
            return;
        }
        let w = &mut self.slots[idx as usize];
        debug_assert_ne!(*w & STATE_MASK, VACANT);
        *w = (*w >> 2).wrapping_add(1) << 2;
        self.free.push(idx);
    }

    fn cancelled_pending(&self) -> usize {
        self.slots
            .iter()
            .filter(|w| *w & STATE_MASK == CANCELLED)
            .count()
    }
}

/// A pending event as stored by either backend.
struct Entry<E> {
    at: u64,
    seq: u64,
    slot: u32,
    ev: E,
}

// Heap ordering: earliest (time, seq) first under `Reverse`.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The hierarchical timing wheel.
struct Wheel<E> {
    /// Time of the last delivered event (placement reference point).
    cursor: u64,
    /// Per-level bucket-occupancy bitmaps, [`WORDS`] words per level.
    occupied: [[u64; WORDS]; LEVELS],
    /// Which levels have a non-zero `occupied` bitmap: the candidate scan
    /// only visits set bits instead of all [`LEVELS`] levels.
    level_summary: u16,
    /// `LEVELS * SLOTS` flat bucket array; buckets keep their capacity
    /// across drains, so the steady-state hot path allocates nothing.
    buckets: Vec<Vec<Entry<E>>>,
    /// Staged level-0 bucket: entries sharing one placement key, sorted by
    /// `(at, seq)`, delivered from the front.
    due: VecDeque<Entry<E>>,
    /// Placement key of the staged entries (meaningful iff `due` is
    /// non-empty).
    due_key: u64,
    /// Set when an event whose bucket precedes or spans `due_key` was
    /// placed into the wheel while `due` was staged (only possible after a
    /// horizon stop). While clear, the staged front is provably the global
    /// minimum and pops skip the candidate scan entirely.
    due_dirty: bool,
    /// Cached minimal candidate bucket `(base, level, index)`. When `Some`,
    /// it is the provably earliest occupied bucket: scans and cascades seed
    /// it (a scan also records the runner-up, which becomes the cache when
    /// the minimum is consumed), and [`Wheel::place`] keeps it exact by
    /// replacing it with any placement that lands earlier. Pops consume it
    /// instead of rescanning; `None` means "unknown — scan".
    saved: Option<(u64, usize, usize)>,
}

/// Width of a level's bucket, in keys.
#[inline]
fn level_width(level: usize) -> u64 {
    1u64 << (LEVEL_BITS * level as u32)
}

/// Bucket index of key `k` at `level`.
#[inline]
fn bucket_index(k: u64, level: usize) -> usize {
    ((k >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// Level of the highest bit in which key `k` differs from key `ck` (0 when
/// equal): the unique level whose bucket for `k` lies inside the cursor's
/// parent bucket.
#[inline]
fn level_for(k: u64, ck: u64) -> usize {
    let x = k ^ ck;
    if x == 0 {
        0
    } else {
        (63 - x.leading_zeros()) as usize / LEVEL_BITS as usize
    }
}

impl<E> Wheel<E> {
    fn new() -> Wheel<E> {
        Wheel {
            cursor: 0,
            occupied: [[0; WORDS]; LEVELS],
            level_summary: 0,
            // lint:allow(hot-path-alloc): construction-time bucket array
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            due: VecDeque::new(),
            due_key: 0,
            due_dirty: false,
            saved: None,
        }
    }

    /// Start key of bucket `i` at `level`, relative to the cursor's parent
    /// at that level.
    #[inline]
    fn bucket_base(&self, level: usize, i: usize) -> u64 {
        let shift = LEVEL_BITS * (level as u32 + 1);
        let ck = key(self.cursor);
        let parent = if shift >= 64 { 0 } else { (ck >> shift) << shift };
        parent + ((i as u64) << (LEVEL_BITS * level as u32))
    }

    /// Insert an entry. When the wheel is completely empty (no staged
    /// entries, no occupied buckets — `no_live` tells us no live event is
    /// pending), the entry is staged directly instead of placed: the
    /// self-rescheduling pattern (one live event at a time, the dominant
    /// shape in the ROCC model's timer chains) then never touches a bucket
    /// or pays a cascade or scan.
    #[inline]
    fn insert(&mut self, e: Entry<E>, no_live: bool) {
        if no_live && self.due.is_empty() && self.level_summary == 0 {
            self.due_key = key(e.at);
            self.due_dirty = false;
            self.due.push_back(e);
        } else {
            self.place(e);
        }
    }

    /// Splice an entry into the staged queue at its `(at, seq)` position.
    /// New entries carry the globally maximal `seq` and almost always the
    /// largest `(at, seq)` too, so the scan from the back is O(1) in
    /// practice.
    #[inline(never)]
    fn splice_into_due(&mut self, e: Entry<E>) {
        let k = (e.at, e.seq);
        let mut pos = self.due.len();
        while pos > 0 {
            let p = &self.due[pos - 1];
            if (p.at, p.seq) <= k {
                break;
            }
            pos -= 1;
        }
        self.due.insert(pos, e);
    }

    /// Insert an entry. Returns the `(base, level, index)` — all in the key
    /// domain — of the bucket it landed in, or `None` when it joined the
    /// staged `due` queue.
    fn place(&mut self, e: Entry<E>) -> Option<(u64, usize, usize)> {
        let k = key(e.at);
        if !self.due.is_empty() && k == self.due_key {
            // Same placement key as the staged bucket: splice at the
            // `(at, seq)` position (the back, unless the staged bucket
            // spans several timestamps and this one lands mid-queue).
            self.splice_into_due(e);
            return None;
        }
        let level = level_for(k, key(self.cursor));
        let i = bucket_index(k, level);
        // The bucket is width-aligned and contains `k`.
        let base = k & !(level_width(level) - 1);
        if !self.due.is_empty() && base <= self.due_key {
            // The entry's bucket precedes the staged key, or its range
            // spans it. The spanning case matters too: delivering `due`
            // would rest the cursor inside this bucket's range, and later
            // placements could then nest buckets inside it — breaking the
            // range disjointness that `cascade`'s returned candidate and
            // the single-entry delivery rely on. Either way the next pop
            // rescans, cascading this bucket before the staged front fires.
            self.due_dirty = true;
        }
        self.set_bucket_bit(level, i);
        self.buckets[level * SLOTS + i].push(e);
        // Keep the cached minimal candidate exact: a placement that lands
        // earlier (base order, ties to the higher level) becomes the cache.
        if let Some((sb, sl, _)) = self.saved {
            if base < sb || (base == sb && level >= sl) {
                self.saved = Some((base, level, i));
            }
        }
        Some((base, level, i))
    }

    /// Mark bucket `i` at `level` occupied in the occupancy bitmaps.
    #[inline]
    fn set_bucket_bit(&mut self, level: usize, i: usize) {
        self.occupied[level][i >> 6] |= 1 << (i & 63);
        self.level_summary |= 1 << level;
    }

    /// Mark bucket `i` at `level` empty in the occupancy bitmaps.
    #[inline]
    fn clear_bucket_bit(&mut self, level: usize, i: usize) {
        self.occupied[level][i >> 6] &= !(1 << (i & 63));
        if self.occupied[level] == [0; WORDS] {
            self.level_summary &= !(1 << level);
        }
    }

    /// Lowest-index occupied bucket at `level`, if any.
    #[inline]
    fn first_occupied(&self, level: usize) -> Option<usize> {
        for (w, &word) in self.occupied[level].iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Lowest occupied bucket at `level` with index strictly greater than
    /// `after`, if any.
    #[inline]
    fn next_occupied(&self, level: usize, after: usize) -> Option<usize> {
        let mut w = after >> 6;
        let mut word = self.occupied[level][w] & (u64::MAX.checked_shl(1 + (after & 63) as u32).unwrap_or(0));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.occupied[level][w];
        }
    }

    /// Earliest candidate bucket: `(base, level, index)` with minimal base;
    /// on a base tie the *highest* level wins so it cascades before any
    /// same-base level-0 bucket is delivered. Buckets wholly behind the
    /// cursor hold only cancelled leftovers and are collected on sight.
    fn min_candidate(
        &mut self,
        slab: &mut Slab,
    ) -> (Option<(u64, usize, usize)>, Option<(u64, usize, usize)>) {
        // Candidate order: base ascending, ties to the *higher* level (the
        // wider bucket must cascade before a same-base narrower one fires).
        #[inline]
        fn earlier(a: (u64, usize, usize), b: (u64, usize, usize)) -> bool {
            a.0 < b.0 || (a.0 == b.0 && a.1 > b.1)
        }
        #[inline]
        fn consider(
            best: &mut Option<(u64, usize, usize)>,
            second: &mut Option<(u64, usize, usize)>,
            cand: (u64, usize, usize),
        ) {
            match *best {
                None => *best = Some(cand),
                Some(b) if earlier(cand, b) => {
                    *second = Some(b);
                    *best = Some(cand);
                }
                Some(_) => match *second {
                    Some(s) if !earlier(cand, s) => {}
                    _ => *second = Some(cand),
                },
            }
        }
        let mut best: Option<(u64, usize, usize)> = None;
        let mut second: Option<(u64, usize, usize)> = None;
        let mut levels = self.level_summary;
        while levels != 0 {
            let level = levels.trailing_zeros() as usize;
            levels &= levels - 1;
            loop {
                let i = match self.first_occupied(level) {
                    Some(i) => i,
                    None => {
                        self.level_summary &= !(1 << level);
                        break;
                    }
                };
                let base = self.bucket_base(level, i);
                if base.saturating_add(level_width(level)) <= key(self.cursor) {
                    // Stale bucket: every live event is at or after the
                    // cursor, so anything here was cancelled. Collect it.
                    for e in self.buckets[level * SLOTS + i].drain(..) {
                        debug_assert!(slab.is_cancelled(e.slot));
                        slab.release(e.slot);
                    }
                    self.occupied[level][i >> 6] &= !(1 << (i & 63));
                    continue;
                }
                consider(&mut best, &mut second, (base, level, i));
                // The level's runner-up (if any) so the global runner-up is
                // exact: within a level later indexes mean later bases, so
                // only the next occupied bucket can contend.
                if let Some(j) = self.next_occupied(level, i) {
                    consider(&mut best, &mut second, (self.bucket_base(level, j), level, j));
                }
                break;
            }
        }
        (best, second)
    }

    /// Redistribute one level>0 bucket to lower levels, first advancing the
    /// cursor to the bucket base (safe: the base was the minimal candidate,
    /// so no live event precedes it). Cancelled entries are collected here
    /// instead of being re-placed.
    ///
    /// Returns the minimal bucket the live entries were re-placed into
    /// (base order, ties to the higher level). Because bucket ranges are
    /// disjoint and this bucket was the minimal candidate, every *other*
    /// bucket starts at or after `base + width` — so the returned bucket is
    /// the next global candidate and the caller can skip a full scan.
    fn cascade(
        &mut self,
        slab: &mut Slab,
        base: u64,
        level: usize,
        i: usize,
    ) -> Option<(u64, usize, usize)> {
        debug_assert!(level > 0);
        self.cursor = self.cursor.max(base << RES_BITS);
        self.clear_bucket_bit(level, i);
        let mut bucket = std::mem::take(&mut self.buckets[level * SLOTS + i]);
        let mut best: Option<(u64, usize, usize)> = None;
        for e in bucket.drain(..) {
            if slab.is_cancelled(e.slot) {
                slab.release(e.slot);
            } else {
                debug_assert!(
                    level_for(key(e.at), key(self.cursor)) < level,
                    "cascade non-descent: at={} seq={} slot={} cursor={} base={} level={} i={}",
                    e.at,
                    e.seq,
                    e.slot,
                    self.cursor,
                    base,
                    level,
                    i
                );
                if let Some((b, l, j)) = self.place(e) {
                    match best {
                        Some((bb, bl, _)) if bb < b || (bb == b && bl >= l) => {}
                        _ => best = Some((b, l, j)),
                    }
                }
            }
        }
        // Swap the (now empty) spare back to keep its capacity.
        std::mem::swap(&mut self.buckets[level * SLOTS + i], &mut bucket);
        best
    }

    /// Stage a level-0 bucket for delivery: drain it, sort by `(at, seq)`
    /// (one placement key per bucket, so this is the full delivery order),
    /// and expose it as the `due` queue.
    fn stage(&mut self, base: u64, i: usize) {
        debug_assert!(self.due.is_empty());
        self.clear_bucket_bit(0, i);
        let mut bucket = std::mem::take(&mut self.buckets[i]);
        bucket.sort_unstable_by_key(|e| (e.at, e.seq));
        self.due.extend(bucket.drain(..));
        std::mem::swap(&mut self.buckets[i], &mut bucket);
        self.due_key = base;
        self.due_dirty = false;
    }

    /// Push staged entries back into the wheel. Needed when an event is
    /// scheduled *earlier* than the staged key after a horizon stop —
    /// rare, and re-staging re-sorts, so order is unaffected. Cancelled
    /// entries (including pre-fast-forward leftovers staged from a reused
    /// bucket) are collected here rather than re-placed.
    fn unstage(&mut self, slab: &mut Slab) {
        while let Some(e) = self.due.pop_front() {
            if slab.is_cancelled(e.slot) {
                slab.release(e.slot);
                continue;
            }
            debug_assert_eq!(key(e.at), self.due_key);
            let level = level_for(key(e.at), key(self.cursor));
            let i = bucket_index(key(e.at), level);
            self.set_bucket_bit(level, i);
            self.buckets[level * SLOTS + i].push(e);
        }
    }

    /// Deliver the earliest live event with `at <= horizon`, collecting any
    /// cancelled entries encountered on the way.
    ///
    /// While `due_dirty` is clear the staged front is the global minimum
    /// (placements since staging were either spliced into the staged queue
    /// or landed in buckets whose ranges lie strictly after `due_key`), so the
    /// common self-rescheduling shape is a queue pop with no scan;
    /// everything else is the outlined slow path.
    #[inline(always)]
    fn pop_next_before(&mut self, slab: &mut Slab, horizon: u64) -> Option<(u64, E)> {
        if !self.due_dirty {
            if let Some(f) = self.due.front() {
                if !slab.is_cancelled(f.slot) {
                    if f.at > horizon {
                        return None;
                    }
                    // lint:allow(panic-path): front() returned Some above; pop_front cannot fail
                    let e = self.due.pop_front().expect("front checked live");
                    slab.release(e.slot);
                    self.cursor = self.cursor.max(e.at);
                    return Some((e.at, e.ev));
                }
            }
        }
        self.pop_slow(slab, horizon)
    }

    #[inline(never)]
    fn pop_slow(&mut self, slab: &mut Slab, horizon: u64) -> Option<(u64, E)> {
        loop {
            // Collect cancelled entries at the staged front.
            while let Some(f) = self.due.front() {
                if slab.is_cancelled(f.slot) {
                    slab.release(f.slot);
                    self.due.pop_front();
                } else {
                    break;
                }
            }
            if let Some(f) = self.due.front() {
                // Fast path: while `due_dirty` is clear the staged front is
                // the global minimum (placements since staging were either
                // spliced in here or landed in buckets wholly after
                // `due_key`), so no candidate scan is needed at all.
                if !self.due_dirty {
                    if f.at > horizon {
                        return None;
                    }
                    // lint:allow(panic-path): front() returned Some above; pop_front cannot fail
                    let e = self.due.pop_front().expect("front checked live");
                    slab.release(e.slot);
                    self.cursor = self.cursor.max(e.at);
                    return Some((e.at, e.ev));
                }
            }
            let due_t = self.due.front().map(|f| f.at);
            // The cached candidate (seeded by a previous scan, a cascade,
            // or a runner-up promotion, and kept exact by `place`) saves
            // the bitmap scan entirely; `second` is only populated by a
            // fresh scan and becomes the cache when the best is consumed.
            let (candidate, second) = match self.saved.take() {
                Some(c) => (Some(c), None),
                None => self.min_candidate(slab),
            };
            match (due_t, candidate) {
                // The staged front fires only when every bucket starts
                // *strictly* after its key. A bucket base equal to the
                // staged key is a wider aligned bucket whose range contains
                // it (its entries may interleave with the staged run) — it
                // must cascade first so the cursor never comes to rest
                // inside an occupied bucket's range.
                (Some(t), c) if c.map_or(true, |(base, _, _)| self.due_key < base) => {
                    // The scan proved nothing in the wheel precedes or
                    // spans the staged front (whatever set the dirty flag
                    // was cancelled, collected, or cascaded away).
                    self.due_dirty = false;
                    // The candidate was not consumed: it stays the minimal
                    // bucket while the staged (strictly earlier) run drains.
                    self.saved = c;
                    if t > horizon {
                        return None;
                    }
                    // lint:allow(panic-path): due_t is Some, so the staged queue is non-empty
                    let e = self.due.pop_front().expect("front checked live");
                    slab.release(e.slot);
                    self.cursor = self.cursor.max(e.at);
                    return Some((e.at, e.ev));
                }
                (Some(_), None) => unreachable!("guarded above: due wins when no candidate"),
                (_, Some((base, level, i))) => {
                    // `base` is a key; its bucket starts at full-resolution
                    // time `base << RES_BITS`. Conservative horizon check —
                    // a bucket that *starts* past the horizon cannot hold
                    // anything due.
                    if (base << RES_BITS) > horizon {
                        // Unconsumed: still the minimal bucket next call.
                        self.saved = Some((base, level, i));
                        return None;
                    }
                    let bi = level * SLOTS + i;
                    if self.due.is_empty() && self.buckets[bi].len() == 1 {
                        // Single-entry minimal bucket: occupied bucket
                        // ranges are pairwise disjoint, so every other
                        // pending event lies at or after `base + width` —
                        // the lone entry is the global minimum whatever its
                        // level, and is delivered in place with no cascade
                        // chain and no stage/due round-trip. This is the
                        // common shape on sparse calendars (the ROCC
                        // model's timer field).
                        if slab.is_cancelled(self.buckets[bi][0].slot) {
                            // lint:allow(panic-path): bucket len == 1 checked by the branch guard
                            let e = self.buckets[bi].pop().expect("len checked");
                            slab.release(e.slot);
                            self.clear_bucket_bit(level, i);
                            // Bucket consumed: promote the runner-up.
                            self.saved = second;
                            continue;
                        }
                        if self.buckets[bi][0].at > horizon {
                            self.saved = Some((base, level, i));
                            return None;
                        }
                        // lint:allow(panic-path): bucket len == 1 checked by the branch guard
                        let e = self.buckets[bi].pop().expect("len checked");
                        self.clear_bucket_bit(level, i);
                        self.saved = second;
                        slab.release(e.slot);
                        self.cursor = self.cursor.max(e.at);
                        return Some((e.at, e.ev));
                    }
                    if level > 0 {
                        // Cascade re-places this bucket's entries, all of
                        // which precede every other bucket (disjoint ranges)
                        // including the runner-up: its minimum is the next
                        // global candidate, falling back to the runner-up
                        // when every entry was cancelled.
                        self.saved = self.cascade(slab, base, level, i).or(second);
                    } else if self.due.is_empty() {
                        self.stage(base, i);
                        // The staged run is the minimum; the runner-up is
                        // the minimal *bucket* once it drains.
                        self.saved = second;
                    } else {
                        // An earlier bucket outranks the staged timestamp;
                        // put the staged entries back first. Re-placing the
                        // old staged entries invalidates the runner-up
                        // (they may precede it), so the cache stays cold.
                        self.unstage(slab);
                        self.stage(base, i);
                    }
                }
                (None, None) => return None,
            }
        }
    }

    /// Read-only lower bound on the earliest live entry's time (see
    /// [`Calendar::next_lower_bound`]): min over the first live staged
    /// entry and each level's first occupied bucket — a single-entry
    /// bucket contributes its entry's exact time, a multi-entry bucket its
    /// base time. Within a level the first occupied bucket's range ends at
    /// or before every later bucket's base, so one bucket per level
    /// suffices; cancelled leftovers can only lower the bound (safe).
    fn next_lower_bound(&self, slab: &Slab) -> u64 {
        let mut lb = u64::MAX;
        for e in &self.due {
            if !slab.is_cancelled(e.slot) {
                lb = e.at;
                break;
            }
        }
        let mut levels = self.level_summary;
        while levels != 0 {
            let level = levels.trailing_zeros() as usize;
            levels &= levels - 1;
            if let Some(i) = self.first_occupied(level) {
                let b = &self.buckets[level * SLOTS + i];
                let cand = if b.len() == 1 {
                    b[0].at
                } else {
                    self.bucket_base(level, i) << RES_BITS
                };
                lb = lb.min(cand);
            }
        }
        lb
    }

    fn occupied_buckets(&self) -> usize {
        self.occupied
            .iter()
            .flatten()
            .map(|bm| bm.count_ones() as usize)
            .sum()
    }
}

/// Legacy heap backend: lazy deletion against the shared slab (no more
/// `HashSet` probe — cancellation state lives in the slab for both
/// backends).
struct HeapCal<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> HeapCal<E> {
    #[inline(always)]
    fn pop_next_before(&mut self, slab: &mut Slab, horizon: u64) -> Option<(u64, E)> {
        loop {
            let front = self.heap.peek()?;
            if slab.is_cancelled(front.0.slot) {
                // lint:allow(panic-path): peek() returned Some above; pop cannot fail
                let e = self.heap.pop().expect("peeked").0;
                slab.release(e.slot);
                continue;
            }
            if front.0.at > horizon {
                return None;
            }
            // lint:allow(panic-path): peek() returned Some above; pop cannot fail
            let e = self.heap.pop().expect("peeked").0;
            slab.release(e.slot);
            return Some((e.at, e.ev));
        }
    }
}

enum Backend<E> {
    Wheel(Wheel<E>),
    Heap(HeapCal<E>),
}

/// The pending-event calendar: a backend plus the cancellation slab and the
/// live-event count.
pub(crate) struct Calendar<E> {
    slab: Slab,
    live: usize,
    backend: Backend<E>,
}

impl<E> Calendar<E> {
    pub(crate) fn new(kind: CalendarKind) -> Calendar<E> {
        Calendar {
            slab: Slab::new(),
            live: 0,
            backend: match kind {
                CalendarKind::Wheel => Backend::Wheel(Wheel::new()),
                CalendarKind::Heap => Backend::Heap(HeapCal {
                    heap: BinaryHeap::new(),
                }),
            },
        }
    }

    pub(crate) fn kind(&self) -> CalendarKind {
        match self.backend {
            Backend::Wheel(_) => CalendarKind::Wheel,
            Backend::Heap(_) => CalendarKind::Heap,
        }
    }

    /// Number of live (not cancelled) pending events. Exact: cancellation
    /// decrements it immediately.
    #[inline]
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    #[inline]
    pub(crate) fn schedule(&mut self, at: SimTime, seq: u64, ev: E) -> EventHandle {
        let was_empty = self.live == 0;
        let h = self.slab.alloc();
        self.live += 1;
        let e = Entry {
            at: at.as_nanos(),
            seq,
            slot: h.idx,
            ev,
        };
        match &mut self.backend {
            Backend::Wheel(w) => w.insert(e, was_empty),
            Backend::Heap(hc) => hc.heap.push(Reverse(e)),
        }
        h
    }

    /// Schedule a fire-and-forget entry: no handle, no slab slot, not
    /// cancellable. The hot-path variant — a model that never cancels pays
    /// zero slab traffic per event.
    #[inline]
    pub(crate) fn schedule_nocancel(&mut self, at: SimTime, seq: u64, ev: E) {
        let was_empty = self.live == 0;
        self.live += 1;
        let e = Entry {
            at: at.as_nanos(),
            seq,
            slot: NO_SLOT,
            ev,
        };
        match &mut self.backend {
            Backend::Wheel(w) => w.insert(e, was_empty),
            Backend::Heap(hc) => hc.heap.push(Reverse(e)),
        }
    }

    /// O(1) cancel. Stale handles (already fired, already cancelled) are
    /// exact no-ops and leave no residue. Returns whether a live event was
    /// cancelled.
    #[inline]
    pub(crate) fn cancel(&mut self, h: EventHandle) -> bool {
        let hit = self.slab.cancel(h);
        if hit {
            self.live -= 1;
        }
        hit
    }

    /// Deliver the earliest live event with `at <= horizon` in `(time,
    /// seq)` order (ties in schedule order).
    #[inline(always)]
    pub(crate) fn pop_next_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Wheel(w) => w.pop_next_before(&mut self.slab, horizon.as_nanos()),
            Backend::Heap(h) => h.pop_next_before(&mut self.slab, horizon.as_nanos()),
        };
        if let Some((at, ev)) = popped {
            self.live -= 1;
            return Some((SimTime::from_nanos(at), ev));
        }
        None
    }

    /// A **lower bound** on the time of the earliest live event, computed
    /// read-only in O(levels) — the shard driver's per-window "local next"
    /// query (DESIGN.md §11). Never larger than the true minimum;
    /// `u64::MAX` when no live event is pending.
    ///
    /// For the heap it is the root's time (exact up to lazily-deleted
    /// cancelled entries, which only make it smaller). For the wheel it is
    /// the minimum over the staged front and, per occupied level, the
    /// first occupied bucket's *base time* — or its entry's exact time for
    /// a single-entry bucket. A loose (wide-bucket) bound tightens as the
    /// driver's bounded `run_until` probes cascade the bucket; the driver
    /// falls back to the exact O(live) [`Calendar::peek_min`] if a bound
    /// ever stalls without progress.
    pub(crate) fn next_lower_bound(&self) -> u64 {
        if self.live == 0 {
            return u64::MAX;
        }
        match &self.backend {
            Backend::Wheel(w) => w.next_lower_bound(&self.slab),
            Backend::Heap(h) => h.heap.peek().map_or(u64::MAX, |r| r.0.at),
        }
    }

    /// Move every front entry with time exactly `at` out of storage and
    /// append `(slot, event)` to `out`, in `(time, seq)` order. Slots are
    /// *not* released and `live` is *not* adjusted: the entries remain
    /// logically pending (and cancellable) until the driver commits each
    /// one through [`Calendar::take_batch_entry`] just before dispatch —
    /// that is what makes a cancellation landing *inside* a batch
    /// (handler A cancels same-timestamp event B) behave identically to
    /// one-at-a-time delivery.
    ///
    /// Only entries that are provably next in delivery order are drained:
    /// for the wheel that is the staged `due` run while `due_dirty` is
    /// clear; for the heap it is the top run. Same-timestamp events that
    /// are *not* at the front (dirty staging after a horizon stop, or
    /// events scheduled mid-batch) are left in place — the driver falls
    /// back to [`Calendar::pop_next_before`] and re-drains, so nothing is
    /// missed.
    #[inline(never)]
    pub(crate) fn drain_batch_at(&mut self, at: SimTime, out: &mut Vec<(u32, E)>) {
        let at = at.as_nanos();
        match &mut self.backend {
            Backend::Wheel(w) => {
                if w.due_dirty {
                    return;
                }
                while let Some(f) = w.due.front() {
                    if self.slab.is_cancelled(f.slot) {
                        // lint:allow(panic-path): front() returned Some above; pop_front cannot fail
                        let e = w.due.pop_front().expect("front checked");
                        self.slab.release(e.slot);
                        continue;
                    }
                    if f.at != at {
                        break;
                    }
                    // lint:allow(panic-path): front() returned Some above; pop_front cannot fail
                    let e = w.due.pop_front().expect("front checked");
                    out.push((e.slot, e.ev));
                }
            }
            Backend::Heap(h) => loop {
                match h.heap.peek() {
                    Some(Reverse(f)) if self.slab.is_cancelled(f.slot) => {
                        // lint:allow(panic-path): peek() returned Some above; pop cannot fail
                        let e = h.heap.pop().expect("peeked").0;
                        self.slab.release(e.slot);
                    }
                    Some(Reverse(f)) if f.at == at => {
                        // lint:allow(panic-path): peek() returned Some above; pop cannot fail
                        let e = h.heap.pop().expect("peeked").0;
                        out.push((e.slot, e.ev));
                    }
                    _ => break,
                }
            },
        }
    }

    /// Commit one entry previously drained by [`Calendar::drain_batch_at`]:
    /// release its slot and report whether it is still live (i.e. should be
    /// dispatched). A batch entry cancelled after draining was already
    /// debited from `live` by [`Calendar::cancel`], exactly as if it were
    /// still in storage.
    #[inline]
    pub(crate) fn take_batch_entry(&mut self, slot: u32) -> bool {
        if self.slab.is_cancelled(slot) {
            self.slab.release(slot);
            false
        } else {
            self.slab.release(slot);
            self.live -= 1;
            true
        }
    }

    /// Visit every live (non-cancelled) entry in storage order.
    fn for_each_live<'a>(&'a self, mut f: impl FnMut(&'a Entry<E>)) {
        match &self.backend {
            Backend::Wheel(w) => {
                for e in &w.due {
                    if !self.slab.is_cancelled(e.slot) {
                        f(e);
                    }
                }
                for b in &w.buckets {
                    for e in b {
                        if !self.slab.is_cancelled(e.slot) {
                            f(e);
                        }
                    }
                }
            }
            Backend::Heap(h) => {
                for Reverse(e) in h.heap.iter() {
                    if !self.slab.is_cancelled(e.slot) {
                        f(e);
                    }
                }
            }
        }
    }

    /// Canonical capture of every live entry as `(at_ns, seq, event)`,
    /// sorted by `(at, seq)`. Cancelled leftovers awaiting lazy collection
    /// are excluded, so the result is identical across backends and across
    /// cascade/staging history — the form snapshots serialize.
    pub(crate) fn live_entries(&self) -> Vec<(u64, u64, E)>
    where
        E: Clone,
    {
        let mut out = Vec::with_capacity(self.live);
        // lint:allow(hot-path-alloc): snapshot canonicalization clones each pending event once; runs only on snapshot/persist, never in the delivery loop
        self.for_each_live(|e| out.push((e.at, e.seq, e.ev.clone())));
        out.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        debug_assert_eq!(out.len(), self.live);
        out
    }

    /// The earliest live `(at_ns, seq)` with a reference to its event,
    /// without disturbing the backend. O(live) scan — a diagnostic/test
    /// path, not the delivery path.
    pub(crate) fn peek_min(&self) -> Option<(u64, u64, &E)> {
        let mut best: Option<(u64, u64, &E)> = None;
        self.for_each_live(|e| match best {
            Some((at, seq, _)) if (at, seq) <= (e.at, e.seq) => {}
            _ => best = Some((e.at, e.seq, &e.ev)),
        });
        best
    }

    pub(crate) fn stats(&self) -> CalendarStats {
        CalendarStats {
            live: self.live,
            cancelled_pending: self.slab.cancelled_pending(),
            slab_slots: self.slab.slots.len(),
            slab_free: self.slab.free.len(),
            occupied_buckets: match &self.backend {
                Backend::Wheel(w) => w.occupied_buckets(),
                Backend::Heap(_) => 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(c: &mut Calendar<u32>) -> Vec<(u64, u32)> {
        let mut out = vec![];
        while let Some((t, ev)) = c.pop_next_before(SimTime::MAX) {
            out.push((t.as_nanos(), ev));
        }
        out
    }

    fn both() -> [Calendar<u32>; 2] {
        [
            Calendar::new(CalendarKind::Wheel),
            Calendar::new(CalendarKind::Heap),
        ]
    }

    #[test]
    fn placement_levels() {
        // `level_for` runs in the key domain: two times within one
        // 2^RES_BITS-ns bucket share a key and a level-0 bucket.
        assert_eq!(key(0), 0);
        assert_eq!(key((1 << RES_BITS) - 1), 0);
        assert_eq!(key(1 << RES_BITS), 1);
        let s = SLOTS as u64;
        assert_eq!(level_for(0, 0), 0);
        assert_eq!(level_for(s - 1, 0), 0);
        assert_eq!(level_for(s, 0), 1);
        assert_eq!(level_for(s, s - 1), 1);
        assert_eq!(level_for(s * s - 1, s), 1);
        assert_eq!(level_for(s * s, 0), 2);
        // The largest representable key still fits in the wheel.
        assert_eq!(level_for(key(u64::MAX), 0), LEVELS - 1);
        // The model's dominant delays at 64 ns resolution: a 2.2 ms mean
        // burst has its highest set key bit at 15 (level 2) and a 40 ms
        // sampling timer at key bit 19 (level 3) — one level shallower
        // than full 1 ns resolution would place them.
        assert_eq!(level_for(key(2_200_000), 0), 2);
        assert_eq!(level_for(key(40_000_000), 0), 3);
    }

    #[test]
    fn due_delivery_inside_an_occupied_bucket_range_does_not_reorder() {
        // Regression: the first schedule into an empty wheel is staged
        // directly into `due`; a later placement can then open a wide
        // bucket whose range spans the staged timestamp. Delivering the
        // staged event moves the cursor inside that bucket's range, and
        // without the `advance_to` sweep subsequent placements would nest
        // inside it, letting the single-entry fast path fire the wide
        // bucket's entry ahead of an earlier nested one.
        for mut c in both() {
            c.schedule(SimTime::from_nanos(262_338), 0, 1);
            c.schedule(SimTime::from_nanos(286_912), 1, 2); // level-3: [262144, 524288)
            assert_eq!(
                c.pop_next_before(SimTime::from_nanos(262_338)),
                Some((SimTime::from_nanos(262_338), 1)),
                "{:?}",
                c.kind()
            );
            // The cursor now rests at 262_338; this placement used to nest
            // a level-1 bucket inside the wide level-3 one.
            c.schedule(SimTime::from_nanos(262_528), 2, 3);
            assert_eq!(
                drain(&mut c),
                vec![(262_528, 3), (286_912, 2)],
                "{:?}",
                c.kind()
            );
        }
    }

    #[test]
    fn fires_in_time_then_seq_order() {
        for mut c in both() {
            let mut seq = 0;
            for (at, ev) in [(30u64, 3u32), (10, 1), (20, 2), (10, 11), (30, 33)] {
                c.schedule(SimTime::from_nanos(at), seq, ev);
                seq += 1;
            }
            assert_eq!(
                drain(&mut c),
                vec![(10, 1), (10, 11), (20, 2), (30, 3), (30, 33)],
                "{:?}",
                c.kind()
            );
            assert_eq!(c.live(), 0);
        }
    }

    #[test]
    fn far_apart_times_cascade_correctly() {
        for mut c in both() {
            let times = [
                1u64,
                63,
                64,
                65,
                4_095,
                4_096,
                1_000_000,
                1_000_000_000,
                1 << 40,
                u64::MAX - 1,
            ];
            for (i, &t) in times.iter().enumerate() {
                c.schedule(SimTime::from_nanos(t), i as u64, i as u32);
            }
            let got = drain(&mut c);
            let want: Vec<(u64, u32)> =
                times.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
            assert_eq!(got, want, "{:?}", c.kind());
        }
    }

    #[test]
    fn cancel_is_exact_and_leaves_no_residue() {
        for mut c in both() {
            let h1 = c.schedule(SimTime::from_nanos(10), 0, 1);
            let h2 = c.schedule(SimTime::from_nanos(20), 1, 2);
            assert_eq!(c.live(), 2);
            assert!(c.cancel(h1));
            assert_eq!(c.live(), 1, "pending count is exact after cancel");
            assert!(!c.cancel(h1), "double cancel is a stale no-op");
            assert_eq!(drain(&mut c), vec![(20, 2)]);
            // Cancel after fire: stale generation, no storage.
            assert!(!c.cancel(h2));
            let s = c.stats();
            assert_eq!(
                (s.live, s.cancelled_pending),
                (0, 0),
                "{:?}: cancel-after-fire left residue",
                c.kind()
            );
            assert_eq!(s.slab_free, s.slab_slots, "all slots recycled");
        }
    }

    #[test]
    fn repeated_cancel_after_fire_is_bounded() {
        // The old HashSet design leaked one u64 per cancel-after-fire;
        // the slab must stay at its concurrency high-water mark.
        for mut c in both() {
            let mut handles = vec![];
            for round in 0..1_000u64 {
                let h = c.schedule(SimTime::from_nanos(round), round, 0);
                handles.push(h);
                assert!(c.pop_next_before(SimTime::MAX).is_some());
                for &h in &handles {
                    c.cancel(h); // every one is stale
                }
            }
            let s = c.stats();
            assert_eq!(s.cancelled_pending, 0);
            assert!(
                s.slab_slots <= 2,
                "{:?}: slab grew to {} slots",
                c.kind(),
                s.slab_slots
            );
        }
    }

    #[test]
    fn horizon_is_respected_even_past_cancelled_entries() {
        for mut c in both() {
            let h = c.schedule(SimTime::from_nanos(10), 0, 1);
            c.schedule(SimTime::from_nanos(100), 1, 2);
            c.cancel(h);
            assert_eq!(
                c.pop_next_before(SimTime::from_nanos(50)),
                None,
                "{:?}: popped past the horizon over a cancelled entry",
                c.kind()
            );
            assert_eq!(
                c.pop_next_before(SimTime::from_nanos(100)),
                Some((SimTime::from_nanos(100), 2))
            );
        }
    }

    #[test]
    fn schedule_earlier_than_staged_after_horizon_stop() {
        for mut c in both() {
            c.schedule(SimTime::from_nanos(1_000), 0, 9);
            // A horizon probe may internally stage the 1000 ns bucket.
            assert_eq!(c.pop_next_before(SimTime::from_nanos(500)), None);
            // Now schedule earlier events, including one at the staged time.
            c.schedule(SimTime::from_nanos(600), 1, 6);
            c.schedule(SimTime::from_nanos(1_000), 2, 10);
            c.schedule(SimTime::from_nanos(600), 3, 7);
            assert_eq!(
                drain(&mut c),
                vec![(600, 6), (600, 7), (1_000, 9), (1_000, 10)],
                "{:?}",
                c.kind()
            );
        }
    }

    #[test]
    fn same_time_entries_across_levels_keep_seq_order() {
        // seq 0 lands at a high level (scheduled far ahead), then after the
        // cursor advances, seq 2 at the same instant lands at level 0. The
        // cascade-then-sort path must still fire 0 before 2.
        for mut c in both() {
            c.schedule(SimTime::from_nanos(200), 0, 20);
            c.schedule(SimTime::from_nanos(190), 1, 19);
            assert_eq!(
                c.pop_next_before(SimTime::MAX),
                Some((SimTime::from_nanos(190), 19))
            );
            c.schedule(SimTime::from_nanos(200), 2, 21);
            assert_eq!(drain(&mut c), vec![(200, 20), (200, 21)], "{:?}", c.kind());
        }
    }

    #[test]
    fn zero_delay_self_scheduling_is_fifo() {
        for mut c in both() {
            c.schedule(SimTime::from_nanos(5), 0, 0);
            assert_eq!(
                c.pop_next_before(SimTime::MAX),
                Some((SimTime::from_nanos(5), 0))
            );
            // Schedule at the current instant repeatedly mid-delivery.
            c.schedule(SimTime::from_nanos(5), 1, 1);
            c.schedule(SimTime::from_nanos(5), 2, 2);
            assert_eq!(drain(&mut c), vec![(5, 1), (5, 2)], "{:?}", c.kind());
        }
    }

    #[test]
    fn stats_report_occupancy() {
        let mut c: Calendar<u32> = Calendar::new(CalendarKind::Wheel);
        for i in 0..10u64 {
            c.schedule(SimTime::from_nanos(i * 1_000), i, i as u32);
        }
        let s = c.stats();
        assert_eq!(s.live, 10);
        assert!(s.occupied_buckets >= 1);
        assert_eq!(s.slab_slots, 10);
        drain(&mut c);
        assert_eq!(c.stats().live, 0);
    }
}

//! The event calendar and simulation driver.
//!
//! The kernel is deliberately monomorphic: a model defines a plain `enum` of
//! events and implements [`Model::handle`]. Events are never boxed, the
//! calendar (a hierarchical timing wheel by default, with the legacy binary
//! heap as a fallback — see [`crate::calendar`]) delivers them in
//! `(time, sequence)` order with ties broken in schedule order, so a given
//! model + seed is fully deterministic regardless of the backend.

use crate::calendar::{Calendar, CalendarKind, CalendarStats};
use crate::snapshot::{self, Dec, Enc, Persist, PersistState, SnapError};
use crate::time::{SimDur, SimTime};
use std::sync::Arc;

pub use crate::calendar::EventHandle;

/// Bit position of the scheduling-cell label inside a sequence number:
/// `seq = (cell << CELL_SHIFT) | per-cell counter`. Comparing packed
/// sequence numbers as plain `u64`s is lexicographic in `(cell, counter)`,
/// so the calendar's `(time, seq)` order needs no changes to be
/// shard-stable (see DESIGN.md §11). 2^40 events per cell and 2^24 cells
/// are far beyond any configured workload.
pub const CELL_SHIFT: u32 = 40;

/// Mask of the per-cell counter bits of a packed sequence number.
pub const CELL_SEQ_MASK: u64 = (1u64 << CELL_SHIFT) - 1;

/// Shard-stable sequence allocation: one monotone counter per scheduling
/// cell, packed as `(cell << CELL_SHIFT) | counter`.
///
/// The default ("global") mode is a single cell with `cur` pinned to 0, so
/// `seq == counter` — bit-identical to the historical global counter with
/// no extra branch on the hot path (the pack is a shift/or against a
/// constant-zero register). [`Ctx::enable_cells`] switches a fresh context
/// to per-cell counters; the allocation then depends only on the scheduling
/// cell's own history, never on how cells interleave — which is what makes
/// a sharded run's sequence numbers identical to the serial run's.
struct SeqAlloc {
    cur: u32,
    counters: Vec<u64>,
}

impl SeqAlloc {
    fn new() -> Self {
        SeqAlloc {
            cur: 0,
            counters: vec![0],
        }
    }

    #[inline(always)]
    fn alloc(&mut self) -> u64 {
        let c = &mut self.counters[self.cur as usize];
        let seq = ((self.cur as u64) << CELL_SHIFT) | *c;
        debug_assert!(*c < CELL_SEQ_MASK, "per-cell sequence counter overflow");
        *c += 1;
        seq
    }

    /// Total allocations across all cells (equals `scheduled`).
    fn total(&self) -> u64 {
        self.counters.iter().sum()
    }
}

/// Cross-shard routing state attached to a [`Ctx`] by the sharded driver
/// (absent — and cost-free beyond one predictable branch — in serial
/// runs). Events whose execution cell is owned by another shard are
/// diverted to `outbox` instead of the local calendar; the driver flushes
/// the outbox to the owning shard at window boundaries (see
/// [`crate::shard`]).
pub(crate) struct Router<E> {
    /// Owning shard per cell.
    pub(crate) shard_of: Arc<Vec<u16>>,
    /// This shard's id.
    pub(crate) me: u16,
    /// Execution cell of an event (a pure function of the event and the
    /// static configuration — both sides of a shard boundary must agree).
    pub(crate) cell_of: Arc<dyn Fn(&E) -> u32 + Send + Sync>,
    /// Diverted `(at_ns, seq, event)` triples awaiting flush.
    pub(crate) outbox: Vec<(u64, u64, E)>,
}

/// A simulation model: owns all state and reacts to its own event type.
pub trait Model {
    /// The model's event alphabet.
    type Event;

    /// React to `ev` firing at `ctx.now()`. New events may be scheduled
    /// through `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<Self::Event>, ev: Self::Event);
}

/// The scheduling context handed to [`Model::handle`].
///
/// Holds the clock and the pending-event calendar.
pub struct Ctx<E> {
    now: SimTime,
    calendar: Calendar<E>,
    seq: SeqAlloc,
    executed: u64,
    scheduled: u64,
    route: Option<Router<E>>,
}

impl<E> Ctx<E> {
    fn new(kind: CalendarKind) -> Self {
        Ctx {
            now: SimTime::ZERO,
            calendar: Calendar::new(kind),
            seq: SeqAlloc::new(),
            executed: 0,
            scheduled: 0,
            route: None,
        }
    }

    /// Switch a fresh context from the single global sequence counter to
    /// `cells` per-cell counters (see [`CELL_SHIFT`]). Must be called
    /// before anything is scheduled; the current cell starts at 0.
    ///
    /// # Panics
    /// Panics if events were already scheduled or `cells` exceeds the
    /// packable range.
    pub fn enable_cells(&mut self, cells: u32) {
        assert_eq!(self.scheduled, 0, "enable_cells on a used context");
        assert!(cells >= 1 && (cells as u64) <= (u64::MAX >> CELL_SHIFT));
        self.seq.counters = vec![0; cells as usize];
        self.seq.cur = 0;
    }

    /// Set the scheduling cell subsequent allocations are keyed by. A
    /// model calls this at the top of its handler with the executing
    /// event's own cell. No-op-safe in global mode only for cell 0.
    #[inline]
    pub fn set_cell(&mut self, cell: u32) {
        debug_assert!((cell as usize) < self.seq.counters.len());
        self.seq.cur = cell;
    }

    /// Number of scheduling cells (1 in global mode).
    pub fn cells(&self) -> u32 {
        self.seq.counters.len() as u32
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past; causality violations are model bugs.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, ev: E) -> EventHandle {
        assert!(at >= self.now, "cannot schedule into the past");
        // Cancellable events cannot cross a shard boundary (the handle
        // would dangle); the ROCC model only ever `post_at`s, so in a
        // sharded run everything reaching this path must be shard-local.
        debug_assert!(
            self.route
                .as_ref()
                .is_none_or(|rt| rt.shard_of[(rt.cell_of)(&ev) as usize] == rt.me),
            "cancellable event scheduled across a shard boundary"
        );
        let seq = self.seq.alloc();
        self.scheduled += 1;
        self.calendar.schedule(at, seq, ev)
    }

    /// Schedule `ev` to fire after a delay of `d`.
    #[inline]
    pub fn schedule_in(&mut self, d: SimDur, ev: E) -> EventHandle {
        self.schedule_at(self.now + d, ev)
    }

    /// Schedule `ev` at absolute time `at` with no cancellation handle.
    ///
    /// The fire-and-forget fast path: no slab slot is allocated, so a model
    /// that never cancels (the ROCC hot path) pays zero cancellation
    /// bookkeeping per event. Delivery order is identical to
    /// [`Ctx::schedule_at`].
    ///
    /// # Panics
    /// Panics if `at` is in the past; causality violations are model bugs.
    #[inline]
    pub fn post_at(&mut self, at: SimTime, ev: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq.alloc();
        self.scheduled += 1;
        if let Some(rt) = &mut self.route {
            let cell = (rt.cell_of)(&ev);
            if rt.shard_of[cell as usize] != rt.me {
                rt.outbox.push((at.as_nanos(), seq, ev));
                return;
            }
        }
        self.calendar.schedule_nocancel(at, seq, ev);
    }

    /// Schedule `ev` after a delay of `d` with no cancellation handle
    /// (see [`Ctx::post_at`]).
    #[inline]
    pub fn post_in(&mut self, d: SimDur, ev: E) {
        self.post_at(self.now + d, ev);
    }

    /// Cancel a previously scheduled event in O(1). Cancelling an event that
    /// has already fired (or was already cancelled) is an exact no-op: the
    /// handle's generation stamp is stale, so nothing is stored and nothing
    /// can accumulate across long runs.
    #[inline]
    pub fn cancel(&mut self, h: EventHandle) {
        self.calendar.cancel(h);
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events scheduled so far (including cancelled ones).
    pub fn scheduled_events(&self) -> u64 {
        self.scheduled
    }

    /// Number of **live** events pending in the calendar. Exact: cancelled
    /// events are excluded the moment [`Ctx::cancel`] takes effect, not when
    /// their slot is lazily collected.
    pub fn pending_events(&self) -> usize {
        self.calendar.live()
    }

    /// Occupancy/health counters of the calendar (slab size, cancelled
    /// backlog, bucket occupancy). Cheap enough for test assertions and
    /// bench reporting.
    pub fn calendar_stats(&self) -> CalendarStats {
        self.calendar.stats()
    }

    /// Which calendar backend this context runs on.
    pub fn calendar_kind(&self) -> CalendarKind {
        self.calendar.kind()
    }

    /// Deliver the next live event at or before `horizon`, advancing the
    /// clock. `None` leaves the clock untouched.
    #[inline(always)]
    fn pop_next_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        self.calendar.pop_next_before(horizon)
    }

    /// The earliest pending `(time, event)` without executing or
    /// disturbing anything (O(pending) scan — a diagnostic path).
    pub(crate) fn peek_next(&self) -> Option<(SimTime, E)>
    where
        E: Clone,
    {
        self.calendar
            .peek_min()
            // lint:allow(hot-path-alloc): clones one event for caller inspection; a borrow would freeze the calendar across the caller's decision — off-loop diagnostic cost
            .map(|(at, _seq, ev)| (SimTime::from_nanos(at), ev.clone()))
    }

    /// Append the kernel state — clock, sequence/event counters, and the
    /// calendar in canonical sorted `(at, seq, event)` form — to `w`.
    pub(crate) fn save_state(&self, w: &mut Enc)
    where
        E: Persist + Clone,
    {
        debug_assert_eq!(self.seq.total(), self.scheduled);
        w.put_u64(self.now.as_nanos());
        w.put_u64(self.executed);
        w.put_u64(self.scheduled);
        w.put_usize(self.seq.counters.len());
        for c in &self.seq.counters {
            w.put_u64(*c);
        }
        let entries = self.calendar.live_entries();
        w.put_usize(entries.len());
        for (at, seq, ev) in &entries {
            w.put_u64(*at);
            w.put_u64(*seq);
            ev.save(w);
        }
    }

    /// Rebuild a context from its canonical byte form onto backend `kind`.
    /// The canonical form is backend-independent: re-scheduling the sorted
    /// entries with their original sequence numbers reproduces the exact
    /// `(time, seq)` delivery order on either backend.
    pub(crate) fn load_state(kind: CalendarKind, r: &mut Dec<'_>) -> Result<Ctx<E>, SnapError>
    where
        E: Persist,
    {
        let now = SimTime::from_nanos(r.take_u64()?);
        let executed = r.take_u64()?;
        let scheduled = r.take_u64()?;
        let ncells = r.take_usize()?;
        if ncells == 0 || ncells as u64 > (u64::MAX >> CELL_SHIFT) {
            return Err(SnapError::Malformed("cell count out of range"));
        }
        let mut counters = Vec::with_capacity(ncells);
        for _ in 0..ncells {
            counters.push(r.take_u64()?);
        }
        if counters.iter().sum::<u64>() != scheduled {
            return Err(SnapError::Malformed("sum(cell counters) != scheduled"));
        }
        let n = r.take_usize()?;
        let mut ctx = Ctx::new(kind);
        ctx.now = now;
        let mut prev: Option<(u64, u64)> = None;
        for _ in 0..n {
            let at = r.take_u64()?;
            let seq = r.take_u64()?;
            let ev = E::load(r)?;
            if at < now.as_nanos() {
                return Err(SnapError::Malformed("calendar entry before the clock"));
            }
            let cell = (seq >> CELL_SHIFT) as usize;
            if cell >= ncells || (seq & CELL_SEQ_MASK) >= counters[cell] {
                return Err(SnapError::Malformed("calendar seq beyond its cell counter"));
            }
            if prev.is_some_and(|p| (at, seq) <= p) {
                return Err(SnapError::Malformed("calendar entries not strictly sorted"));
            }
            prev = Some((at, seq));
            // Handles never survive a restore (slab slots and generations
            // are rebuilt), so restored entries take the no-slab path.
            ctx.calendar.schedule_nocancel(SimTime::from_nanos(at), seq, ev);
        }
        ctx.seq.counters = counters;
        ctx.executed = executed;
        ctx.scheduled = scheduled;
        Ok(ctx)
    }

    // ---- shard-driver plumbing (crate-internal; see `crate::shard`) ----

    /// Install (or replace) the cross-shard router.
    pub(crate) fn set_route(&mut self, route: Router<E>) {
        self.route = Some(route);
    }

    /// Drain the router's outbox of diverted `(at_ns, seq, ev)` triples.
    pub(crate) fn take_outbox(&mut self, into: &mut Vec<(u64, u64, E)>) {
        if let Some(rt) = &mut self.route {
            into.append(&mut rt.outbox);
        }
    }

    /// Owning shard of `ev`'s execution cell (`None` without a router).
    pub(crate) fn route_dest(&self, ev: &E) -> Option<u16> {
        self.route
            .as_ref()
            .map(|rt| rt.shard_of[(rt.cell_of)(ev) as usize])
    }

    /// Insert an event that was *already allocated* a sequence number —
    /// an arrival from another shard, or a held entry being put back. No
    /// counter is bumped and `scheduled` is untouched: the allocation
    /// happened (exactly once) on the scheduling shard.
    pub(crate) fn inject(&mut self, at_ns: u64, seq: u64, ev: E) {
        self.calendar
            .schedule_nocancel(SimTime::from_nanos(at_ns), seq, ev);
    }

    /// Read-only lower bound on the earliest pending event's time in
    /// nanoseconds (`u64::MAX` when none): cheap (O(levels)) but possibly
    /// loose — see [`Calendar::next_lower_bound`].
    pub(crate) fn next_lower_bound(&self) -> u64 {
        self.calendar.next_lower_bound()
    }

    /// Exact time of the earliest pending event in nanoseconds
    /// (`u64::MAX` when none). O(pending) — the shard driver's stall
    /// fallback, not a per-window path.
    pub(crate) fn peek_min_time(&self) -> u64 {
        self.calendar.peek_min().map_or(u64::MAX, |(at, _, _)| at)
    }

    /// The per-cell sequence counters.
    pub(crate) fn seq_counters(&self) -> &[u64] {
        &self.seq.counters
    }

    /// Canonical `(at_ns, seq, event)` capture of every live entry, sorted
    /// by `(at, seq)` (the merge step's per-shard calendar export).
    pub(crate) fn live_entries(&self) -> Vec<(u64, u64, E)>
    where
        E: Clone,
    {
        self.calendar.live_entries()
    }

    /// Build a context from merged parts: the calendar is reloaded from
    /// `entries` (must be strictly `(at, seq)`-sorted), counters/statistics
    /// are taken as given. The sharded driver's merge step uses this to
    /// assemble the single post-run context.
    pub(crate) fn assemble(
        kind: CalendarKind,
        now: SimTime,
        executed: u64,
        scheduled: u64,
        counters: Vec<u64>,
        entries: Vec<(u64, u64, E)>,
    ) -> Ctx<E> {
        debug_assert_eq!(counters.iter().sum::<u64>(), scheduled);
        let mut ctx = Ctx::new(kind);
        ctx.now = now;
        let mut prev: Option<(u64, u64)> = None;
        for (at, seq, ev) in entries {
            debug_assert!(prev.is_none_or(|p| p < (at, seq)));
            prev = Some((at, seq));
            ctx.calendar.schedule_nocancel(SimTime::from_nanos(at), seq, ev);
        }
        ctx.seq.counters = counters;
        ctx.executed = executed;
        ctx.scheduled = scheduled;
        ctx
    }
}

/// The simulation driver: a model plus its event calendar.
pub struct Sim<M: Model> {
    /// The model under simulation; accessible for inspection between runs.
    pub model: M,
    ctx: Ctx<M::Event>,
    /// Reusable scratch for batched same-timestamp delivery in
    /// [`Sim::run_until`]. Always empty between calls; kept here so the
    /// steady state never reallocates it.
    batch: Vec<(u32, M::Event)>,
}

impl<M: Model> Sim<M> {
    /// Create a driver around `model` with an empty calendar at time zero.
    /// Uses the timing wheel unless `PARADYN_CALENDAR=heap` is set.
    pub fn new(model: M) -> Self {
        Sim::with_calendar(model, CalendarKind::default_from_env())
    }

    /// Create a driver with an explicit calendar backend (the wheel is the
    /// default; the heap is the fallback/differential-testing oracle).
    pub fn with_calendar(model: M, kind: CalendarKind) -> Self {
        Sim {
            model,
            ctx: Ctx::new(kind),
            // lint:allow(hot-path-alloc): construction-time batch buffer
            batch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Access the scheduling context (e.g. to seed initial events).
    pub fn ctx(&mut self) -> &mut Ctx<M::Event> {
        &mut self.ctx
    }

    /// Read-only context access for crate-internal drivers.
    pub(crate) fn ctx_ref(&self) -> &Ctx<M::Event> {
        &self.ctx
    }

    /// Assemble a driver from a merged model and context (the sharded
    /// driver's merge step; see [`crate::shard`]).
    pub(crate) fn from_parts(model: M, ctx: Ctx<M::Event>) -> Self {
        Sim {
            model,
            ctx,
            // lint:allow(hot-path-alloc): construction-time batch buffer
            batch: Vec::new(),
        }
    }

    /// Execute the single next event, if any. Returns `false` when the
    /// calendar is empty.
    pub fn step(&mut self) -> bool {
        self.step_bounded(SimTime::MAX)
    }

    #[inline]
    fn step_bounded(&mut self, horizon: SimTime) -> bool {
        match self.ctx.pop_next_before(horizon) {
            Some((at, ev)) => {
                debug_assert!(at >= self.ctx.now);
                self.ctx.now = at;
                self.ctx.executed += 1;
                self.model.handle(&mut self.ctx, ev);
                true
            }
            None => false,
        }
    }

    /// Run until the calendar is exhausted or `horizon` is reached.
    ///
    /// Events scheduled exactly at the horizon still fire; the clock is left
    /// at the horizon (or at the last event if the calendar drained first).
    /// Only *live* events are consulted: a cancelled entry before the
    /// horizon never causes a later event beyond it to fire early.
    ///
    /// Delivery is **batched by timestamp**: after the first event of an
    /// instant fires, the rest of the same-timestamp run is drained from
    /// the calendar front in one call and dispatched as a slice in the
    /// pinned `(time, seq)` order, amortizing the pop machinery across the
    /// batch. Observable behavior is bit-identical to one-at-a-time
    /// [`Sim::step`] delivery (`tests/batch_delivery.rs` proves it against
    /// the heap oracle): each drained entry is re-checked for cancellation
    /// *immediately before* its dispatch, so a handler cancelling a
    /// same-timestamp successor suppresses it exactly as it would have
    /// one-at-a-time, and events scheduled *at* the current instant by a
    /// batch member still fire within the same instant, after it.
    pub fn run_until(&mut self, horizon: SimTime) {
        // Tie gate: the clock *before* it advances is the previous event's
        // time, so `at == now` detects the second member of a tie run with
        // no loop-carried register (nothing extra live across the handler
        // call, hence no per-event spill). The comparison can fire
        // spuriously — the first event of a run, or an event landing
        // exactly on a previous horizon stop — but a spurious drain of an
        // instant with no further events is a single outlined call that
        // finds nothing; delivery order is identical either way. The
        // *second* member of a real tie still arrives through an ordinary
        // pop — identical either way — and from there the rest of the
        // instant is drained as a batch.
        while let Some((at, ev)) = self.ctx.pop_next_before(horizon) {
            debug_assert!(at >= self.ctx.now);
            if at == self.ctx.now {
                // The branch resolves *before* the handler call, so the
                // no-tie loop keeps nothing extra live across it.
                self.step_tie(at, ev);
                continue;
            }
            self.ctx.now = at;
            self.ctx.executed += 1;
            self.model.handle(&mut self.ctx, ev);
        }
        if self.ctx.now < horizon {
            self.ctx.now = horizon;
        }
    }

    /// Deliver the rest of the instant `at` as a batch (see
    /// [`Sim::run_until`]); the caller has just dispatched the instant's
    /// first event and proven a same-timestamp successor exists.
    /// Dispatch an event that shares its timestamp with the previous one
    /// (or lands exactly on the prior stop/start time — a spurious but
    /// harmless match), then drain the rest of the instant as a batch.
    /// Outlined as one cold unit so [`Sim::run_until`]'s no-tie loop pays
    /// only the resolved-early comparison.
    #[cold]
    #[inline(never)]
    fn step_tie(&mut self, at: SimTime, ev: M::Event) {
        self.ctx.now = at;
        self.ctx.executed += 1;
        self.model.handle(&mut self.ctx, ev);
        self.drain_instant(at);
    }

    #[cold]
    #[inline(never)]
    fn drain_instant(&mut self, at: SimTime) {
        let mut buf = std::mem::take(&mut self.batch);
        loop {
            self.ctx.calendar.drain_batch_at(at, &mut buf);
            if buf.is_empty() {
                // Same-instant events can still be in an unstaged bucket
                // (scheduled mid-batch, or staging was dirty): one
                // ordinary pop re-stages and delivers the next, then
                // draining resumes. `None` ends the instant.
                match self.ctx.pop_next_before(at) {
                    Some((t, ev)) => {
                        debug_assert_eq!(t, at);
                        self.ctx.executed += 1;
                        self.model.handle(&mut self.ctx, ev);
                        continue;
                    }
                    None => break,
                }
            }
            for (slot, ev) in buf.drain(..) {
                if self.ctx.calendar.take_batch_entry(slot) {
                    self.ctx.executed += 1;
                    self.model.handle(&mut self.ctx, ev);
                }
            }
        }
        self.batch = buf;
    }

    /// Run until the calendar is empty or `max_events` more events have fired.
    /// Returns the number of events executed by this call.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Total events executed over the life of the simulation.
    pub fn executed_events(&self) -> u64 {
        self.ctx.executed
    }

    /// Which calendar backend this driver runs on.
    pub fn calendar_kind(&self) -> CalendarKind {
        self.ctx.calendar_kind()
    }

    /// The earliest pending `(time, event)` without executing it.
    /// O(pending) — intended for divergence reports and tests, not the
    /// simulation hot path.
    pub fn peek_next(&self) -> Option<(SimTime, M::Event)>
    where
        M::Event: Clone,
    {
        self.ctx.peek_next()
    }

    /// Consume the driver, yielding the model (e.g. as a freshly built
    /// donor for [`Sim::restore`]).
    pub fn into_model(self) -> M {
        self.model
    }
}

impl<M> Sim<M>
where
    M: Model + PersistState,
    M::Event: Persist + Clone,
{
    /// Canonical, unsealed state bytes: kernel state (clock, counters,
    /// calendar in canonical form) followed by the model's own state. Two
    /// sims in bit-identical states produce equal payloads regardless of
    /// calendar backend — the comparison unit for differential testing and
    /// [`snapshot::rewind_bisect`].
    pub fn state_payload(&self) -> Vec<u8> {
        let mut w = Enc::new();
        self.ctx.save_state(&mut w);
        self.model.save_state(&mut w);
        w.into_bytes()
    }

    /// Seal the current state into a versioned, checksummed snapshot frame
    /// carrying the model's configuration fingerprint.
    pub fn snapshot_now(&self) -> Vec<u8> {
        snapshot::seal(self.model.fingerprint(), &self.state_payload())
    }

    /// Run forward to time `t` (a no-op when already there) and return the
    /// sealed snapshot. Fails with [`SnapError::Malformed`] when `t` lies
    /// in the simulated past — rewinding is done by restoring an earlier
    /// snapshot, never by running backwards.
    pub fn snapshot(&mut self, t: SimTime) -> Result<Vec<u8>, SnapError> {
        if t < self.ctx.now {
            return Err(SnapError::Malformed("snapshot time before current clock"));
        }
        self.run_until(t);
        Ok(self.snapshot_now())
    }

    /// Rebuild a simulation from a sealed snapshot onto calendar `kind`
    /// (which need not match the backend the snapshot was taken on).
    /// `model` must be a freshly built model for the *same configuration*
    /// the snapshot was taken under; its state is fully overwritten.
    pub fn restore(model: M, kind: CalendarKind, bytes: &[u8]) -> Result<Sim<M>, SnapError> {
        let (found, payload) = snapshot::open(bytes)?;
        let expected = model.fingerprint();
        if found != expected {
            return Err(SnapError::ConfigMismatch { expected, found });
        }
        let mut r = Dec::new(payload);
        let ctx = Ctx::load_state(kind, &mut r)?;
        let mut model = model;
        model.load_state(&mut r)?;
        if !r.is_empty() {
            return Err(SnapError::TrailingBytes);
        }
        Ok(Sim {
            model,
            ctx,
            // lint:allow(hot-path-alloc): construction-time batch buffer
            batch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    /// Toy model: counts event firings and records firing order.
    struct Toy {
        fired: Vec<u32>,
        respawn: bool,
    }

    impl Model for Toy {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            self.fired.push(ev);
            if self.respawn && ev < 10 {
                ctx.schedule_in(SimDur::from_nanos(1), ev + 1);
            }
        }
    }

    fn toy(respawn: bool) -> impl Iterator<Item = Sim<Toy>> {
        [CalendarKind::Wheel, CalendarKind::Heap]
            .into_iter()
            .map(move |kind| Sim::with_calendar(Toy { fired: vec![], respawn }, kind))
    }

    #[test]
    fn fires_in_time_order() {
        for mut sim in toy(false) {
            sim.ctx().schedule_at(SimTime::from_nanos(30), 3);
            sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
            sim.ctx().schedule_at(SimTime::from_nanos(20), 2);
            sim.run_until(SimTime::MAX);
            assert_eq!(sim.model.fired, vec![1, 2, 3]);
            assert_eq!(sim.executed_events(), 3);
        }
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        for mut sim in toy(false) {
            let t = SimTime::from_nanos(5);
            for i in 0..100 {
                sim.ctx().schedule_at(t, i);
            }
            sim.run_until(SimTime::MAX);
            assert_eq!(sim.model.fired, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        for mut sim in toy(true) {
            sim.ctx().schedule_at(SimTime::from_nanos(0), 0);
            sim.run_until(SimTime::from_nanos(1_000));
            assert_eq!(sim.model.fired.len(), 11);
            // After the calendar drains, the clock advances to the horizon.
            assert_eq!(sim.now().as_nanos(), 1_000);
        }
    }

    #[test]
    fn horizon_cuts_off_and_clock_lands_on_horizon() {
        for mut sim in toy(false) {
            sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
            sim.ctx().schedule_at(SimTime::from_nanos(90), 2);
            sim.run_until(SimTime::from_nanos(50));
            assert_eq!(sim.model.fired, vec![1]);
            assert_eq!(sim.now().as_nanos(), 50);
            // The remaining event still fires on a later run.
            sim.run_until(SimTime::from_nanos(100));
            assert_eq!(sim.model.fired, vec![1, 2]);
        }
    }

    #[test]
    fn events_at_horizon_fire() {
        for mut sim in toy(false) {
            sim.ctx().schedule_at(SimTime::from_nanos(50), 7);
            sim.run_until(SimTime::from_nanos(50));
            assert_eq!(sim.model.fired, vec![7]);
        }
    }

    #[test]
    fn cancellation_suppresses_event() {
        for mut sim in toy(false) {
            let h = sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
            sim.ctx().schedule_at(SimTime::from_nanos(20), 2);
            sim.ctx().cancel(h);
            sim.run_until(SimTime::MAX);
            assert_eq!(sim.model.fired, vec![2]);
            // Cancelling again (or after firing) is harmless.
            sim.ctx().cancel(h);
        }
    }

    #[test]
    fn cancelled_entry_does_not_drag_later_events_before_horizon() {
        // Regression: the old `run_until` peeked the raw heap, saw the
        // cancelled 10 ns entry under the 50 ns horizon, and then `step()`
        // popped *past* it, firing the 90 ns event 40 ns early.
        for mut sim in toy(false) {
            let h = sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
            sim.ctx().schedule_at(SimTime::from_nanos(90), 2);
            sim.ctx().cancel(h);
            sim.run_until(SimTime::from_nanos(50));
            assert_eq!(sim.model.fired, vec![], "event beyond horizon fired early");
            assert_eq!(sim.now().as_nanos(), 50);
            sim.run_until(SimTime::from_nanos(90));
            assert_eq!(sim.model.fired, vec![2]);
        }
    }

    #[test]
    fn cancel_after_fire_leaves_no_residue() {
        // Regression: the old design inserted every stale cancel into a
        // HashSet that nothing ever drained.
        for mut sim in toy(false) {
            let mut handles = vec![];
            for i in 0..500u64 {
                handles.push(sim.ctx().schedule_at(SimTime::from_nanos(i), i as u32));
            }
            sim.run_until(SimTime::MAX);
            for h in handles {
                sim.ctx().cancel(h);
                sim.ctx().cancel(h);
            }
            let s = sim.ctx().calendar_stats();
            assert_eq!(s.cancelled_pending, 0, "stale cancels accumulated");
            assert_eq!(s.live, 0);
            assert_eq!(s.slab_free, s.slab_slots, "all slab slots recycled");
        }
    }

    #[test]
    fn pending_events_counts_live_only() {
        for mut sim in toy(false) {
            let h = sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
            sim.ctx().schedule_at(SimTime::from_nanos(20), 2);
            sim.ctx().schedule_at(SimTime::from_nanos(30), 3);
            assert_eq!(sim.ctx().pending_events(), 3);
            sim.ctx().cancel(h);
            assert_eq!(
                sim.ctx().pending_events(),
                2,
                "cancelled-but-unpopped entries must not be counted"
            );
            sim.run_until(SimTime::MAX);
            assert_eq!(sim.ctx().pending_events(), 0);
        }
    }

    #[test]
    fn run_events_bounds_execution() {
        for mut sim in toy(true) {
            sim.ctx().schedule_at(SimTime::from_nanos(0), 0);
            let n = sim.run_events(3);
            assert_eq!(n, 3);
            assert_eq!(sim.model.fired, vec![0, 1, 2]);
        }
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: false });
        sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
        sim.run_until(SimTime::from_nanos(10));
        sim.ctx().schedule_at(SimTime::from_nanos(5), 2);
    }
}

//! The event calendar and simulation driver.
//!
//! The kernel is deliberately monomorphic: a model defines a plain `enum` of
//! events and implements [`Model::handle`]. Events are never boxed, the
//! calendar is a binary heap keyed by `(time, sequence)`, and ties are broken
//! in schedule order, so a given model + seed is fully deterministic.

use crate::time::{SimDur, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};

/// A simulation model: owns all state and reacts to its own event type.
pub trait Model {
    /// The model's event alphabet.
    type Event;

    /// React to `ev` firing at `ctx.now()`. New events may be scheduled
    /// through `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<Self::Event>, ev: Self::Event);
}

/// Handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The scheduling context handed to [`Model::handle`].
///
/// Holds the clock and the pending-event calendar.
pub struct Ctx<E> {
    now: SimTime,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    executed: u64,
    scheduled: u64,
}

impl<E> Ctx<E> {
    fn new() -> Self {
        Ctx {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            executed: 0,
            scheduled: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past; causality violations are model bugs.
    pub fn schedule_at(&mut self, at: SimTime, ev: E) -> EventHandle {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
        EventHandle(seq)
    }

    /// Schedule `ev` to fire after a delay of `d`.
    #[inline]
    pub fn schedule_in(&mut self, d: SimDur, ev: E) -> EventHandle {
        self.schedule_at(self.now + d, ev)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, h: EventHandle) {
        self.cancelled.insert(h.0);
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events scheduled so far (including cancelled ones).
    pub fn scheduled_events(&self) -> u64 {
        self.scheduled
    }

    /// Number of events still pending in the calendar (including events that
    /// were cancelled but not yet popped).
    pub fn pending_events(&self) -> usize {
        self.heap.len()
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.at, entry.ev));
        }
        None
    }
}

/// The simulation driver: a model plus its event calendar.
pub struct Sim<M: Model> {
    /// The model under simulation; accessible for inspection between runs.
    pub model: M,
    ctx: Ctx<M::Event>,
}

impl<M: Model> Sim<M> {
    /// Create a driver around `model` with an empty calendar at time zero.
    pub fn new(model: M) -> Self {
        Sim {
            model,
            ctx: Ctx::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// Access the scheduling context (e.g. to seed initial events).
    pub fn ctx(&mut self) -> &mut Ctx<M::Event> {
        &mut self.ctx
    }

    /// Execute the single next event, if any. Returns `false` when the
    /// calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.ctx.pop() {
            Some((at, ev)) => {
                debug_assert!(at >= self.ctx.now);
                self.ctx.now = at;
                self.ctx.executed += 1;
                self.model.handle(&mut self.ctx, ev);
                true
            }
            None => false,
        }
    }

    /// Run until the calendar is exhausted or `horizon` is reached.
    ///
    /// Events scheduled exactly at the horizon still fire; the clock is left
    /// at the horizon (or at the last event if the calendar drained first).
    pub fn run_until(&mut self, horizon: SimTime) {
        loop {
            match self.ctx.heap.peek() {
                Some(Reverse(e)) if e.at <= horizon => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.ctx.now < horizon {
            self.ctx.now = horizon;
        }
    }

    /// Run until the calendar is empty or `max_events` more events have fired.
    /// Returns the number of events executed by this call.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Total events executed over the life of the simulation.
    pub fn executed_events(&self) -> u64 {
        self.ctx.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    /// Toy model: counts event firings and records firing order.
    struct Toy {
        fired: Vec<u32>,
        respawn: bool,
    }

    impl Model for Toy {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            self.fired.push(ev);
            if self.respawn && ev < 10 {
                ctx.schedule_in(SimDur::from_nanos(1), ev + 1);
            }
        }
    }

    #[test]
    fn fires_in_time_order() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: false });
        sim.ctx().schedule_at(SimTime::from_nanos(30), 3);
        sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
        sim.ctx().schedule_at(SimTime::from_nanos(20), 2);
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.model.fired, vec![1, 2, 3]);
        assert_eq!(sim.executed_events(), 3);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: false });
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            sim.ctx().schedule_at(t, i);
        }
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.model.fired, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: true });
        sim.ctx().schedule_at(SimTime::from_nanos(0), 0);
        sim.run_until(SimTime::from_nanos(1_000));
        assert_eq!(sim.model.fired.len(), 11);
        // After the calendar drains, the clock advances to the horizon.
        assert_eq!(sim.now().as_nanos(), 1_000);
    }

    #[test]
    fn horizon_cuts_off_and_clock_lands_on_horizon() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: false });
        sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
        sim.ctx().schedule_at(SimTime::from_nanos(90), 2);
        sim.run_until(SimTime::from_nanos(50));
        assert_eq!(sim.model.fired, vec![1]);
        assert_eq!(sim.now().as_nanos(), 50);
        // The remaining event still fires on a later run.
        sim.run_until(SimTime::from_nanos(100));
        assert_eq!(sim.model.fired, vec![1, 2]);
    }

    #[test]
    fn events_at_horizon_fire() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: false });
        sim.ctx().schedule_at(SimTime::from_nanos(50), 7);
        sim.run_until(SimTime::from_nanos(50));
        assert_eq!(sim.model.fired, vec![7]);
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: false });
        let h = sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
        sim.ctx().schedule_at(SimTime::from_nanos(20), 2);
        sim.ctx().cancel(h);
        sim.run_until(SimTime::MAX);
        assert_eq!(sim.model.fired, vec![2]);
        // Cancelling again (or after firing) is harmless.
        sim.ctx().cancel(h);
    }

    #[test]
    fn run_events_bounds_execution() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: true });
        sim.ctx().schedule_at(SimTime::from_nanos(0), 0);
        let n = sim.run_events(3);
        assert_eq!(n, 3);
        assert_eq!(sim.model.fired, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(Toy { fired: vec![], respawn: false });
        sim.ctx().schedule_at(SimTime::from_nanos(10), 1);
        sim.run_until(SimTime::from_nanos(10));
        sim.ctx().schedule_at(SimTime::from_nanos(5), 2);
    }
}

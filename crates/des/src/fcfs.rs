//! A first-come-first-served single server as a pure state machine.
//!
//! The server owns no events; the model schedules one completion event per
//! started service, so the invariant is: the server is busy **iff** exactly
//! one completion event for it is pending. This keeps the component directly
//! unit- and property-testable without an event loop.

use crate::monitor::{BusyTime, Tally};
use crate::time::{SimDur, SimTime};
use std::collections::VecDeque;

/// Result of offering a job to the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// The server was idle; service starts now and completes after the
    /// returned span. The model must schedule the completion event.
    Started(SimDur),
    /// The server was busy; the job was queued at the returned depth
    /// (0 = next in line).
    Queued(usize),
}

struct InService<J> {
    job: J,
    service: SimDur,
}

struct Waiting<J> {
    job: J,
    service: SimDur,
    arrived: SimTime,
}

/// FCFS single server with unbounded queue.
pub struct FcfsServer<J> {
    current: Option<InService<J>>,
    queue: VecDeque<Waiting<J>>,
    busy: BusyTime,
    waits: Tally,
    served: u64,
}

impl<J> Default for FcfsServer<J> {
    fn default() -> Self {
        Self::new()
    }
}

impl<J> FcfsServer<J> {
    /// An idle server with an empty queue.
    pub fn new() -> Self {
        FcfsServer {
            current: None,
            queue: VecDeque::new(),
            busy: BusyTime::new(),
            waits: Tally::new(),
            served: 0,
        }
    }

    /// Offer `job` with the given service demand at time `now`.
    pub fn submit(&mut self, now: SimTime, job: J, service: SimDur) -> Offer {
        if self.current.is_none() {
            self.start(now, job, service, now);
            Offer::Started(service)
        } else {
            self.queue.push_back(Waiting {
                job,
                service,
                arrived: now,
            });
            Offer::Queued(self.queue.len() - 1)
        }
    }

    fn start(&mut self, now: SimTime, job: J, service: SimDur, arrived: SimTime) {
        self.busy.add(service);
        self.waits.record((now - arrived).as_secs_f64());
        self.current = Some(InService { job, service });
    }

    /// The pending service completed at `now`. Returns the finished job, its
    /// service time, and — if the queue was non-empty — the service span of
    /// the next job, whose completion the model must schedule.
    ///
    /// # Panics
    /// Panics if the server was idle (a completion event without a started
    /// service is a model bug).
    pub fn complete(&mut self, now: SimTime) -> (J, SimDur, Option<SimDur>) {
        let finished = self
            .current
            .take()
            .expect("FcfsServer::complete called while idle");
        self.served += 1;
        let next = self.queue.pop_front().map(|w| {
            let svc = w.service;
            self.start(now, w.job, w.service, w.arrived);
            svc
        });
        (finished.job, finished.service, next)
    }

    /// Whether a service is in progress.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Number of jobs waiting (excludes the one in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total busy time credited so far (includes the in-progress service in
    /// full at its start).
    pub fn busy_total(&self) -> SimDur {
        self.busy.total()
    }

    /// Busy fraction of `[0, horizon]`.
    pub fn utilization(&self, horizon: SimDur) -> f64 {
        self.busy.utilization(horizon)
    }

    /// Tally of queueing delays experienced by started jobs (seconds).
    pub fn wait_tally(&self) -> &Tally {
        &self.waits
    }

    /// Number of completed services.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl<J: crate::snapshot::Persist> crate::snapshot::Persist for FcfsServer<J> {
    fn save(&self, w: &mut crate::snapshot::Enc) {
        match &self.current {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                s.job.save(w);
                s.service.save(w);
            }
        }
        w.put_usize(self.queue.len());
        for q in &self.queue {
            q.job.save(w);
            q.service.save(w);
            q.arrived.save(w);
        }
        self.busy.save(w);
        self.waits.save(w);
        w.put_u64(self.served);
    }
    fn load(
        r: &mut crate::snapshot::Dec<'_>,
    ) -> Result<Self, crate::snapshot::SnapError> {
        use crate::snapshot::{Persist, SnapError};
        let current = match r.take_u8()? {
            0 => None,
            1 => Some(InService {
                job: J::load(r)?,
                service: Persist::load(r)?,
            }),
            _ => return Err(SnapError::Malformed("FcfsServer current tag")),
        };
        let n = r.take_usize()?;
        let mut queue = VecDeque::with_capacity(n.min(4096));
        for _ in 0..n {
            queue.push_back(Waiting {
                job: J::load(r)?,
                service: Persist::load(r)?,
                arrived: Persist::load(r)?,
            });
        }
        if current.is_none() && !queue.is_empty() {
            return Err(SnapError::Malformed("FcfsServer idle with waiting queue"));
        }
        Ok(FcfsServer {
            current,
            queue,
            busy: Persist::load(r)?,
            waits: Persist::load(r)?,
            served: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: f64) -> SimDur {
        SimDur::from_micros_f64(x)
    }
    fn at(x: f64) -> SimTime {
        SimTime::from_micros_f64(x)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FcfsServer::new();
        assert_eq!(s.submit(at(0.0), 1u32, us(10.0)), Offer::Started(us(10.0)));
        assert!(s.is_busy());
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = FcfsServer::new();
        s.submit(at(0.0), 1u32, us(10.0));
        assert_eq!(s.submit(at(1.0), 2, us(5.0)), Offer::Queued(0));
        assert_eq!(s.submit(at(2.0), 3, us(7.0)), Offer::Queued(1));
        let (j, svc, next) = s.complete(at(10.0));
        assert_eq!((j, svc), (1, us(10.0)));
        assert_eq!(next, Some(us(5.0)));
        let (j, _, next) = s.complete(at(15.0));
        assert_eq!(j, 2);
        assert_eq!(next, Some(us(7.0)));
        let (j, _, next) = s.complete(at(22.0));
        assert_eq!(j, 3);
        assert_eq!(next, None);
        assert!(!s.is_busy());
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn busy_time_accumulates_service() {
        let mut s = FcfsServer::new();
        s.submit(at(0.0), 1u32, us(10.0));
        s.submit(at(0.0), 2, us(30.0));
        s.complete(at(10.0));
        s.complete(at(40.0));
        assert_eq!(s.busy_total(), us(40.0));
        assert!((s.utilization(us(80.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn waits_are_recorded() {
        let mut s = FcfsServer::new();
        s.submit(at(0.0), 1u32, us(10.0));
        s.submit(at(0.0), 2, us(10.0)); // will wait 10us
        s.complete(at(10.0));
        s.complete(at(20.0));
        let w = s.wait_tally();
        assert_eq!(w.count(), 2);
        assert!((w.max().unwrap() - 10e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn complete_while_idle_panics() {
        let mut s: FcfsServer<u32> = FcfsServer::new();
        s.complete(at(0.0));
    }
}

//! Reproducible, independent random-number streams.
//!
//! Each stochastic element of a model (one per process, per node) gets its
//! own stream derived from a master seed and a stream id, so adding or
//! removing one element never perturbs another element's draws — the classic
//! common-random-numbers discipline for variance reduction across "what-if"
//! configurations (Law & Kelton, ch. 11).
//!
//! The generator is xoshiro256++, seeded through SplitMix64, implemented
//! locally so the simulation core does not depend on any external crate's
//! stream-splitting behaviour staying stable.

/// SplitMix64 step: used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug)]
pub struct StreamRng {
    s: [u64; 4],
}

impl StreamRng {
    /// Seed a generator from a single 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; splitmix cannot produce four
        // zero outputs in a row, but keep the guard for safety.
        if s == [0; 4] {
            s[0] = 0x853C49E6748FEA9B;
        }
        StreamRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in the half-open interval `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the open interval `(0, 1)` — safe to pass to `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping is fine for simulation use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

impl rand::RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (StreamRng::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        StreamRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&StreamRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = StreamRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A factory of independent streams derived from one master seed.
#[derive(Clone, Copy, Debug)]
pub struct Streams {
    master: u64,
}

impl Streams {
    /// Create a stream factory for `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Streams { master: master_seed }
    }

    /// Derive the stream with the given id. The same `(master, id)` pair
    /// always yields the same stream.
    pub fn stream(&self, id: u64) -> StreamRng {
        // Mix master and id through splitmix to decorrelate nearby ids.
        let mut s = self.master ^ id.wrapping_mul(0xA24BAED4963EE407);
        let seed = splitmix64(&mut s) ^ splitmix64(&mut s).rotate_left(17);
        StreamRng::seed_from_u64(seed)
    }

    /// Derive a stream from a structured (kind, node, index) address, so
    /// model code can name streams without manual id bookkeeping.
    pub fn stream3(&self, kind: u64, node: u64, index: u64) -> StreamRng {
        self.stream(kind.wrapping_mul(0x100000001B3) ^ node.rotate_left(24) ^ index.rotate_left(48))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StreamRng::seed_from_u64(42);
        let mut b = StreamRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamRng::seed_from_u64(1);
        let mut b = StreamRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StreamRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut r = StreamRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(r.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = StreamRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let s = Streams::new(1234);
        let mut a1 = s.stream(5);
        let mut a2 = s.stream(5);
        let mut b = s.stream(6);
        assert_eq!(a1.next_u64(), a2.next_u64());
        // Neighbouring streams are decorrelated.
        let matches = (0..64).filter(|_| a1.next_u64() == b.next_u64()).count();
        assert!(matches < 2);
    }

    #[test]
    fn stream3_addresses_distinct() {
        let s = Streams::new(99);
        let mut x = s.stream3(1, 2, 3);
        let mut y = s.stream3(1, 3, 2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = StreamRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn rngcore_fill_bytes_works() {
        use rand::RngCore;
        let mut r = StreamRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Reproducible, independent random-number streams.
//!
//! Each stochastic element of a model (one per process, per node) gets its
//! own stream derived from a master seed and a stream id, so adding or
//! removing one element never perturbs another element's draws — the classic
//! common-random-numbers discipline for variance reduction across "what-if"
//! configurations (Law & Kelton, ch. 11).
//!
//! The generator is xoshiro256++, seeded through SplitMix64, implemented
//! locally so the simulation core does not depend on any external crate's
//! stream-splitting behaviour staying stable. [`StreamRng`] implements the
//! workspace's own [`paradyn_stats::Rng`] trait, so it plugs directly into
//! every sampler in `paradyn-stats`.

use paradyn_stats::rng::splitmix64;

/// xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug)]
pub struct StreamRng {
    s: [u64; 4],
}

impl StreamRng {
    /// Seed a generator from a single 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; splitmix cannot produce four
        // zero outputs in a row, but keep the guard for safety.
        if s == [0; 4] {
            s[0] = 0x853C49E6748FEA9B;
        }
        StreamRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in the half-open interval `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the open interval `(0, 1)` — safe to pass to `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping is fine for simulation use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Deterministically perturb the stream state with `salt`: each state
    /// word is XORed with a successive SplitMix64 output of the salt. Used
    /// by snapshot forking to branch N decorrelated futures from one warmed
    /// state, and by the snapshot mutation self-check. `perturb(s)` on two
    /// bit-identical streams yields bit-identical streams; different salts
    /// yield decorrelated streams.
    pub fn perturb(&mut self, salt: u64) {
        let mut sm = salt;
        for w in &mut self.s {
            *w ^= splitmix64(&mut sm);
        }
        // Preserve the xoshiro non-zero-state invariant.
        if self.s == [0; 4] {
            self.s[0] = 0x853C49E6748FEA9B;
        }
    }
}

impl crate::snapshot::Persist for StreamRng {
    fn save(&self, w: &mut crate::snapshot::Enc) {
        for v in &self.s {
            w.put_u64(*v);
        }
    }
    fn load(r: &mut crate::snapshot::Dec<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = r.take_u64()?;
        }
        if s == [0; 4] {
            // All-zero is a fixed point of xoshiro256++ — no valid stream
            // ever holds it, so the bytes are corrupt.
            return Err(crate::snapshot::SnapError::Malformed("all-zero xoshiro state"));
        }
        Ok(StreamRng { s })
    }
}

impl paradyn_stats::Rng for StreamRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        StreamRng::next_u64(self)
    }
}

/// A factory of independent streams derived from one master seed.
#[derive(Clone, Copy, Debug)]
pub struct Streams {
    master: u64,
}

impl Streams {
    /// Create a stream factory for `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Streams { master: master_seed }
    }

    /// Derive the stream with the given id. The same `(master, id)` pair
    /// always yields the same stream.
    pub fn stream(&self, id: u64) -> StreamRng {
        // Mix master and id through splitmix to decorrelate nearby ids.
        let mut s = self.master ^ id.wrapping_mul(0xA24BAED4963EE407);
        let seed = splitmix64(&mut s) ^ splitmix64(&mut s).rotate_left(17);
        StreamRng::seed_from_u64(seed)
    }

    /// Derive a stream from a structured (kind, node, index) address, so
    /// model code can name streams without manual id bookkeeping.
    pub fn stream3(&self, kind: u64, node: u64, index: u64) -> StreamRng {
        self.stream(kind.wrapping_mul(0x100000001B3) ^ node.rotate_left(24) ^ index.rotate_left(48))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StreamRng::seed_from_u64(42);
        let mut b = StreamRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamRng::seed_from_u64(1);
        let mut b = StreamRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StreamRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut r = StreamRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(r.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = StreamRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let s = Streams::new(1234);
        let mut a1 = s.stream(5);
        let mut a2 = s.stream(5);
        let mut b = s.stream(6);
        assert_eq!(a1.next_u64(), a2.next_u64());
        // Neighbouring streams are decorrelated.
        let matches = (0..64).filter(|_| a1.next_u64() == b.next_u64()).count();
        assert!(matches < 2);
    }

    #[test]
    fn streams_from_one_master_do_not_overlap() {
        // Replication seeding depends on stream independence: outputs of
        // streams with different ids must not share values (a collision in
        // 64-bit space over this sample size is ~impossible unless two
        // streams landed in the same state cycle).
        let s = Streams::new(0xD1CE);
        let mut seen = std::collections::HashSet::new();
        for id in 0..16u64 {
            let mut r = s.stream(id);
            for _ in 0..4_096 {
                seen.insert(r.next_u64());
            }
        }
        assert_eq!(seen.len(), 16 * 4_096, "overlapping stream outputs");
    }

    #[test]
    fn adjacent_streams_are_uncorrelated() {
        // Pearson correlation of paired uniform draws from neighbouring
        // stream ids must be statistically indistinguishable from zero
        // (|rho| < ~4/sqrt(n)).
        let s = Streams::new(42);
        let n = 20_000;
        for (ida, idb) in [(0u64, 1u64), (1, 2), (7, 8)] {
            let mut a = s.stream(ida);
            let mut b = s.stream(idb);
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for _ in 0..n {
                let x = a.next_f64();
                let y = b.next_f64();
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            }
            let nf = n as f64;
            let cov = sxy / nf - (sx / nf) * (sy / nf);
            let vx = sxx / nf - (sx / nf).powi(2);
            let vy = syy / nf - (sy / nf).powi(2);
            let rho = cov / (vx * vy).sqrt();
            assert!(
                rho.abs() < 4.0 / nf.sqrt() * 1.5,
                "streams {ida}/{idb} correlated: rho={rho}"
            );
        }
    }

    #[test]
    fn stream3_addresses_distinct() {
        let s = Streams::new(99);
        let mut x = s.stream3(1, 2, 3);
        let mut y = s.stream3(1, 3, 2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = StreamRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn rng_trait_fill_bytes_works() {
        use paradyn_stats::Rng;
        let mut r = StreamRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Simulation time as an integer number of nanoseconds.
//!
//! The paper's workload parameters are expressed in microseconds; we keep the
//! clock in integer nanoseconds so event ordering is exact and runs are
//! bit-for-bit reproducible (no floating-point comparison drift in the event
//! calendar). Conversions to and from floating-point microseconds/seconds are
//! provided at the edges where distributions are sampled and metrics are
//! reported.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute point on the simulation clock (nanoseconds since time zero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from a (non-negative) number of microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimTime(micros_to_nanos(us))
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since time zero.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Value in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Span from an earlier instant to this one.
    ///
    /// # Panics
    /// Panics (in debug builds) if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        debug_assert!(earlier.0 <= self.0, "SimTime::since: earlier > self");
        SimDur(self.0 - earlier.0)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDur {
    /// The empty span.
    pub const ZERO: SimDur = SimDur(0);
    /// The largest representable span.
    pub const MAX: SimDur = SimDur(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// Construct from a (non-negative) number of microseconds.
    ///
    /// Negative or non-finite inputs are clamped to zero; sampled service
    /// times are physically non-negative.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimDur(micros_to_nanos(us))
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDur(micros_to_nanos(ms * 1_000.0))
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDur(micros_to_nanos(s * 1_000_000.0))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Value in seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDur) -> SimDur {
        SimDur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: SimDur) -> Option<SimDur> {
        self.0.checked_sub(other.0).map(SimDur)
    }
}

impl crate::snapshot::Persist for SimTime {
    fn save(&self, w: &mut crate::snapshot::Enc) {
        w.put_u64(self.0);
    }
    fn load(r: &mut crate::snapshot::Dec<'_>) -> Result<Self, crate::snapshot::SnapError> {
        Ok(SimTime(r.take_u64()?))
    }
}

impl crate::snapshot::Persist for SimDur {
    fn save(&self, w: &mut crate::snapshot::Enc) {
        w.put_u64(self.0);
    }
    fn load(r: &mut crate::snapshot::Dec<'_>) -> Result<Self, crate::snapshot::SnapError> {
        Ok(SimDur(r.take_u64()?))
    }
}

#[inline]
fn micros_to_nanos(us: f64) -> u64 {
    if !us.is_finite() || us <= 0.0 {
        0
    } else {
        (us * NANOS_PER_MICRO as f64).round() as u64
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    #[inline]
    fn sub(self, other: SimTime) -> SimDur {
        self.since(other)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, other: SimDur) -> SimDur {
        SimDur(self.0 + other.0)
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, other: SimDur) {
        self.0 += other.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, other: SimDur) -> SimDur {
        debug_assert!(other.0 <= self.0, "SimDur subtraction underflow");
        SimDur(self.0 - other.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_micros_f64(2213.0);
        assert_eq!(t.as_nanos(), 2_213_000);
        assert!((t.as_micros_f64() - 2213.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.002213).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDur::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
        assert_eq!(((t + d) - t).as_nanos(), 50);
        let mut u = t;
        u += d;
        assert_eq!(u.as_nanos(), 150);
    }

    #[test]
    fn negative_micros_clamp_to_zero() {
        assert_eq!(SimDur::from_micros_f64(-5.0).as_nanos(), 0);
        assert_eq!(SimDur::from_micros_f64(f64::NAN).as_nanos(), 0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn dur_min_and_saturating() {
        let a = SimDur::from_nanos(10);
        let b = SimDur::from_nanos(3);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), SimDur::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimDur::from_nanos(7)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn millis_and_secs_constructors() {
        assert_eq!(SimDur::from_millis_f64(40.0).as_nanos(), 40 * NANOS_PER_MILLI);
        assert_eq!(SimDur::from_secs_f64(1.5).as_nanos(), 3 * NANOS_PER_SEC / 2);
        assert_eq!(SimTime::from_secs_f64(100.0).as_nanos(), 100 * NANOS_PER_SEC);
    }
}

//! Deterministic fault scheduling for robustness studies.
//!
//! A [`FaultSchedule`] turns a dedicated random stream into an alternating
//! up/down renewal process: exponentially distributed time-to-failure
//! (mean `mtbf_us`) followed by a recovery delay (mean `recovery_us`,
//! optionally exponential). Because the draws come from the element's own
//! [`StreamRng`], the fault event stream is a pure function of
//! `(master seed, element id)` — adding faults to one element never
//! perturbs another element's randomness, and replicated runs stay
//! bit-identical at any worker-thread count.
//!
//! The companion [`crate::monitor::FaultMonitor`] records what the faults
//! cost: crash count, samples lost, retries, and accumulated downtime.

use crate::rng::StreamRng;
use crate::time::SimDur;

/// Deterministic generator of one element's failure/recovery event stream.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    rng: StreamRng,
    mtbf_us: f64,
    recovery_us: f64,
    jittered_recovery: bool,
}

impl FaultSchedule {
    /// A schedule with exponential time-to-failure of mean `mtbf_us` and a
    /// fixed recovery delay of `recovery_us` (both in microseconds).
    ///
    /// # Panics
    /// Panics unless both means are positive.
    pub fn new(rng: StreamRng, mtbf_us: f64, recovery_us: f64) -> Self {
        assert!(mtbf_us > 0.0, "mean time between failures must be positive");
        assert!(recovery_us > 0.0, "recovery delay must be positive");
        FaultSchedule {
            rng,
            mtbf_us,
            recovery_us,
            jittered_recovery: false,
        }
    }

    /// Draw recovery delays from an exponential of mean `recovery_us`
    /// instead of using the fixed value.
    pub fn with_jittered_recovery(mut self) -> Self {
        self.jittered_recovery = true;
        self
    }

    /// Exponential draw with the given mean.
    fn exp_us(&mut self, mean_us: f64) -> f64 {
        -mean_us * self.rng.next_f64_open().ln()
    }

    /// Time from now (or from the last recovery) until the next failure.
    pub fn time_to_failure(&mut self) -> SimDur {
        let us = self.exp_us(self.mtbf_us);
        SimDur::from_micros_f64(us)
    }

    /// How long the element stays down once it has failed.
    pub fn recovery_delay(&mut self) -> SimDur {
        let us = if self.jittered_recovery {
            self.exp_us(self.recovery_us)
        } else {
            self.recovery_us
        };
        SimDur::from_micros_f64(us)
    }

    /// Deterministically perturb the underlying stream (snapshot forking —
    /// see [`StreamRng::perturb`]). The means and recovery mode are left
    /// untouched: forks vary randomness, never configuration.
    pub fn perturb(&mut self, salt: u64) {
        self.rng.perturb(salt);
    }
}

impl crate::snapshot::Persist for FaultSchedule {
    fn save(&self, w: &mut crate::snapshot::Enc) {
        self.rng.save(w);
        w.put_f64(self.mtbf_us);
        w.put_f64(self.recovery_us);
        w.put_bool(self.jittered_recovery);
    }
    fn load(r: &mut crate::snapshot::Dec<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let rng = crate::snapshot::Persist::load(r)?;
        let mtbf_us = r.take_f64()?;
        let recovery_us = r.take_f64()?;
        let jittered_recovery = r.take_bool()?;
        // Re-validate what `new` asserts, without panicking on bad bytes.
        if !(mtbf_us.is_finite() && mtbf_us > 0.0 && recovery_us.is_finite() && recovery_us > 0.0)
        {
            return Err(crate::snapshot::SnapError::Malformed(
                "fault schedule means must be positive and finite",
            ));
        }
        Ok(FaultSchedule {
            rng,
            mtbf_us,
            recovery_us,
            jittered_recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StreamRng {
        StreamRng::seed_from_u64(seed)
    }

    #[test]
    fn schedule_is_deterministic_per_stream() {
        let mut a = FaultSchedule::new(rng(7), 1_000_000.0, 50_000.0);
        let mut b = FaultSchedule::new(rng(7), 1_000_000.0, 50_000.0);
        for _ in 0..100 {
            assert_eq!(a.time_to_failure(), b.time_to_failure());
            assert_eq!(a.recovery_delay(), b.recovery_delay());
        }
    }

    #[test]
    fn mean_time_to_failure_matches_mtbf() {
        let mut s = FaultSchedule::new(rng(11), 500_000.0, 1_000.0);
        let n = 20_000;
        let mean_us: f64 = (0..n)
            .map(|_| s.time_to_failure().as_micros_f64())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_us - 500_000.0).abs() < 0.05 * 500_000.0,
            "mean {mean_us}"
        );
    }

    #[test]
    fn fixed_recovery_is_exact_jittered_is_not() {
        let mut fixed = FaultSchedule::new(rng(3), 1e6, 25_000.0);
        assert_eq!(fixed.recovery_delay(), SimDur::from_micros_f64(25_000.0));
        assert_eq!(fixed.recovery_delay(), SimDur::from_micros_f64(25_000.0));
        let mut jit = FaultSchedule::new(rng(3), 1e6, 25_000.0).with_jittered_recovery();
        let a = jit.recovery_delay();
        let b = jit.recovery_delay();
        assert_ne!(a, b, "jittered recovery must vary");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mtbf_rejected() {
        FaultSchedule::new(rng(1), 0.0, 1.0);
    }
}

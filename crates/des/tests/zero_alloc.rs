//! Steady-state zero-allocation gate for the DES hot path (DESIGN.md §10).
//!
//! After a warmup long enough for every buffer on the delivery loop to
//! reach its stable capacity — wheel buckets across all levels the
//! workload's placement pattern can reach, the staged queue, the engine's
//! batch buffer, the slot slab, the heap backend's `BinaryHeap` — a
//! steady-state window of ~10^5 delivered events must produce **zero**
//! heap operations, for both calendar backends.
//!
//! The warmup length is geometry-driven, not arbitrary: a wheel bucket
//! allocates its storage on first use, and level-*l* bucket indexes only
//! recur once the cursor wraps that level (64^(l+1) level-0 spans). With
//! 64-ns level-0 buckets, one full level-2 wrap is 64^3·64 ns ≈ 16.8 ms of
//! simulated time, so the warmup runs past it; the measured window then
//! stays clear of the first level-3 boundary crossing after warmup
//! (2·64^3·64 ns ≈ 33.6 ms). A shorter warmup fails honestly: fresh
//! level-2 buckets first touched inside the window would each cost one
//! allocation.
//!
//! This is the cause-side gate for the `hot-path-alloc` lint rule and the
//! perf ratchet: wall-clock benches show the symptom of an alloc
//! regression (through machine noise); this test pins the mechanism.

use paradyn_allocguard::{checkpoint, CountingAlloc};
use paradyn_des::{
    CalendarKind, Ctx, Model, ShardModel, ShardPlan, ShardedSim, Sim, SimDur, SimTime,
};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// 64 free-running timers with deterministic, id-staggered gaps around
/// 5 µs: keeps the calendar populated and shuffled, cycles every level-0/1
/// bucket index many times per millisecond, and exercises the same
/// schedule/pop path as the model workloads.
struct Timers;

impl Model for Timers {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, id: u32) {
        let gap = 2_000 + (id as u64).wrapping_mul(2654435761) % 6_000;
        ctx.schedule_in(SimDur::from_nanos(gap), id);
    }
}

/// Run one backend through warmup and a measured steady-state window;
/// returns (heap operations in window, events delivered in window).
fn steady_state(kind: CalendarKind) -> (u64, u64) {
    const TIMERS: u32 = 64;
    // Past the first full level-2 wrap (≈16.8 ms) and the first level-3
    // boundary (also ≈16.8 ms), so both have stable storage.
    const WARMUP: u64 = 18_000_000;
    // Window end stays short of the next level-3 crossing at ≈33.6 ms.
    const END: u64 = 28_000_000;

    let mut sim = Sim::with_calendar(Timers, kind);
    for id in 0..TIMERS {
        sim.ctx().schedule_at(SimTime::from_nanos(id as u64), id);
    }
    sim.run_until(SimTime::from_nanos(WARMUP));
    let warm_events = sim.executed_events();

    let mark = checkpoint();
    sim.run_until(SimTime::from_nanos(END));
    let traffic = mark.heap_traffic_since();

    (traffic, sim.executed_events() - warm_events)
}

#[test]
fn steady_state_is_allocation_free_on_both_backends() {
    for kind in [CalendarKind::Heap, CalendarKind::Wheel] {
        let (traffic, events) = steady_state(kind);
        assert!(
            events > 100_000,
            "{kind:?}: window too small to be meaningful ({events} events)"
        );
        assert_eq!(
            traffic, 0,
            "{kind:?}: {traffic} heap operation(s) across {events} steady-state \
             events — a delivery-loop buffer is being reallocated per event"
        );
    }
}

/// Cell-aware variant of [`Timers`]: cell `c` of `CELLS` owns the timers
/// with `id % CELLS == c`, and every timer tick also posts one
/// fire-and-forget ping into the next cell — a cross-shard event on every
/// partition that splits neighboring cells — at twice the plan's declared
/// lookahead.
///
/// Unlike [`Timers`], the gaps here are deliberately *commensurate*: every
/// timer runs at exactly one level-0 span (64 buckets × 64 ns = 4096 ns),
/// phased one per bucket. Under the window protocol, per-shard traffic is
/// a fraction of the serial test's, so with incommensurate gaps the wheel
/// keeps discovering new worst-case bucket alignments (capacity growth)
/// for far longer than any affordable warmup. A strictly periodic pattern
/// reaches every bucket's steady capacity within one wrap of each level it
/// touches, making "warmed up" a geometric fact rather than a statistical
/// hope.
struct ShardTimers {
    me: u32,
}

const CELLS: u32 = 4;
const TIMERS: u32 = 64;
/// One level-0 span: all timers share this period, staggered by bucket.
const PERIOD: u64 = 4096;
/// High bit marks a ping; low bits are the target timer id.
const PING: u32 = 1 << 31;
/// Replicated boot event; its handler self-filters to owned cells.
const INIT: u32 = u32::MAX;

fn cell_of(ev: u32) -> u32 {
    if ev == INIT {
        0
    } else {
        (ev & !PING) % CELLS
    }
}

impl Model for ShardTimers {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
        ctx.set_cell(cell_of(ev));
        if ev == INIT {
            for id in 0..TIMERS {
                if id % CELLS == self.me {
                    ctx.post_at(SimTime::from_nanos(id as u64 * 64), id);
                }
            }
            return;
        }
        if ev & PING != 0 {
            return; // cross-cell ping: absorbed, no reschedule
        }
        ctx.post_in(SimDur::from_nanos(PERIOD), ev);
        // One ping per tick into the neighboring cell, two spans out —
        // honestly above the one-span lookahead the plan declares below.
        ctx.post_in(SimDur::from_nanos(2 * PERIOD), PING | (ev + 1) % TIMERS);
    }
}

impl ShardModel for ShardTimers {
    type Luggage = ();
    fn detach(&mut self, _ev: &u32) -> Option<()> {
        None
    }
    fn attach(&mut self, _ev: &u32, _luggage: ()) {}
}

/// The per-shard steady state must also be allocation-free: once wheel
/// buckets, inboxes, and the outbox scratch reach stable capacity, the
/// window protocol's round loop — run, drain outbox, deliver arrivals —
/// touches the heap zero times per event.
#[test]
fn sharded_steady_state_is_allocation_free() {
    // Same geometry as the serial gate: warm past the first level-2 wrap
    // and the 16.8 ms level-3 crossing (the periodic pattern brushes a
    // level-3 bucket only in the final spans before a crossing), and keep
    // the window short of the next crossing at 33.6 ms.
    const WARMUP: u64 = 18_000_000;
    const END: u64 = 28_000_000;

    for kind in [CalendarKind::Heap, CalendarKind::Wheel] {
        let plan = ShardPlan {
            shard_of: Arc::new(vec![0, 1, 2, 3]),
            shards: CELLS as u16,
            lookahead_ns: PERIOD,
        };
        let mut sim = ShardedSim::new(
            kind,
            plan,
            Arc::new(|ev: &u32| cell_of(*ev)),
            |s| ShardTimers { me: s as u32 },
            |sim, _| sim.ctx().post_at(SimTime::ZERO, INIT),
        );
        sim.run_until(SimTime::from_nanos(WARMUP), 1);
        let warm_events = sim.executed_events();

        let mark = checkpoint();
        sim.run_until(SimTime::from_nanos(END), 1);
        let traffic = mark.heap_traffic_since();

        let events = sim.executed_events() - warm_events;
        assert_eq!(sim.violations(), 0, "{kind:?}: lookahead was violated");
        assert!(
            events > 100_000,
            "{kind:?}: window too small to be meaningful ({events} events)"
        );
        assert_eq!(
            traffic, 0,
            "{kind:?}: {traffic} heap operation(s) across {events} sharded \
             steady-state events — a window-protocol buffer is being \
             reallocated per round"
        );
    }
}

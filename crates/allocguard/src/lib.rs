//! A counting global allocator for test and bench builds.
//!
//! The DES hot path is budgeted to **zero heap allocations per delivered
//! event** in the steady state (DESIGN.md §10): every buffer the delivery
//! loop touches — wheel buckets, the staged queue, the engine's batch
//! buffer, the slot slab — reaches a stable capacity during warmup and is
//! reused thereafter. Wall-clock benchmarks can only show the *symptom* of
//! a regression (throughput loss, often hidden inside machine noise); this
//! crate makes the *cause* directly observable by counting every heap
//! operation that reaches the system allocator.
//!
//! Usage, in an integration test or bench binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: paradyn_allocguard::CountingAlloc = paradyn_allocguard::CountingAlloc;
//!
//! // ... warm the system up ...
//! let mark = paradyn_allocguard::checkpoint();
//! // ... drive the steady state ...
//! assert_eq!(mark.allocations_since(), 0);
//! ```
//!
//! The counters are process-global relaxed atomics: cheap enough to leave
//! enabled for a whole test binary, exact as long as the measured window
//! runs on a single thread (the DES kernel is single-threaded by design;
//! replication-level parallelism uses one `Sim` per thread, so a per-`Sim`
//! measurement must simply not overlap other allocating threads).
//!
//! Zero dependencies: delegation goes straight to [`std::alloc::System`],
//! so the accounting adds two relaxed atomic increments per heap operation
//! and changes no allocation behavior.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` that counts every heap operation, then delegates
/// to [`System`].
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`, which upholds the `GlobalAlloc`
// contract; the added atomic increments touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is heap traffic just like a fresh allocation (it may
        // move the block); a hot path that grows a buffer every event
        // must not pass the zero-alloc gate on a technicality.
        REALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations (incl. zeroed) since process start.
pub fn allocations() -> u64 {
    ALLOCS.load(Relaxed)
}

/// Heap deallocations since process start.
pub fn deallocations() -> u64 {
    DEALLOCS.load(Relaxed)
}

/// Heap reallocations since process start.
pub fn reallocations() -> u64 {
    REALLOCS.load(Relaxed)
}

/// Total bytes requested (alloc + realloc) since process start.
pub fn bytes_requested() -> u64 {
    BYTES.load(Relaxed)
}

/// A point-in-time snapshot of the counters, for windowed measurements.
#[derive(Clone, Copy, Debug)]
pub struct Checkpoint {
    allocs: u64,
    deallocs: u64,
    reallocs: u64,
    bytes: u64,
}

/// Snapshot the counters now.
pub fn checkpoint() -> Checkpoint {
    Checkpoint {
        allocs: allocations(),
        deallocs: deallocations(),
        reallocs: reallocations(),
        bytes: bytes_requested(),
    }
}

impl Checkpoint {
    /// Allocations (fresh + zeroed) since this checkpoint.
    pub fn allocations_since(&self) -> u64 {
        allocations() - self.allocs
    }

    /// Deallocations since this checkpoint.
    pub fn deallocations_since(&self) -> u64 {
        deallocations() - self.deallocs
    }

    /// Reallocations since this checkpoint.
    pub fn reallocations_since(&self) -> u64 {
        reallocations() - self.reallocs
    }

    /// Total heap operations that could disturb a zero-alloc hot path:
    /// allocations plus reallocations (deallocations excluded — freeing
    /// into the allocator's cache is the benign half of a matched pair
    /// already counted on the alloc side).
    pub fn heap_traffic_since(&self) -> u64 {
        self.allocations_since() + self.reallocations_since()
    }

    /// Bytes requested since this checkpoint.
    pub fn bytes_since(&self) -> u64 {
        bytes_requested() - self.bytes
    }
}

//! The counters must actually observe heap traffic routed through the
//! installed global allocator — otherwise the zero-alloc steady-state test
//! could pass vacuously against a miswired allocator.

use paradyn_allocguard::{checkpoint, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn counters_observe_alloc_realloc_dealloc() {
    let mark = checkpoint();

    let mut v: Vec<u64> = Vec::with_capacity(8);
    assert!(mark.allocations_since() >= 1, "Vec::with_capacity must allocate");
    assert!(mark.bytes_since() >= 64);

    // Growing past capacity reaches the allocator again (realloc or a
    // fresh alloc+copy, depending on the allocator's strategy).
    let traffic_before_grow = mark.heap_traffic_since();
    v.extend(std::iter::repeat(7).take(64));
    assert!(
        mark.heap_traffic_since() > traffic_before_grow,
        "growth past capacity must produce heap traffic"
    );

    let deallocs_before_drop = mark.deallocations_since();
    drop(v);
    assert!(mark.deallocations_since() > deallocs_before_drop);
}

#[test]
fn in_place_mutation_is_free() {
    let mut v: Vec<u64> = Vec::with_capacity(1024);
    let mark = checkpoint();
    for i in 0..1024 {
        v.push(i); // within capacity: no heap traffic
    }
    v.clear();
    assert_eq!(mark.heap_traffic_since(), 0);
    assert_eq!(mark.deallocations_since(), 0);
}

//! Descriptive statistics: the summary block reported in the paper's Table 1
//! (mean, standard deviation, min, max) plus quantiles.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (linear-interpolated).
    pub median: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "Summary::of on empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile_sorted(&sorted, 0.5),
        }
    }

    /// Coefficient of variation (std/mean); 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Streaming moment accumulator (Welford's algorithm).
///
/// Single-pass, O(1) state, and branch-free in the update: no comparisons
/// beyond `f64::min`/`f64::max` (which lower to `minsd`/`maxsd`), so it can
/// sit on a hot path without polluting the branch predictor. Numerically
/// stable where the naive sum-of-squares accumulator cancels catastrophically.
///
/// Yields the same mean/std-dev/min/max as [`Summary::of`] up to rounding
/// (the update order differs, so the last ulp may too); use it where the
/// sample is too large, or arrives too incrementally, to buffer.
#[derive(Clone, Copy, Debug)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Moments {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        let d2 = x - self.mean;
        self.m2 += d * d2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another accumulator in (Chan's parallel update), as if its
    /// observations had been pushed here.
    pub fn merge(&mut self, o: &Moments) {
        if o.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *o;
            return;
        }
        let n = (self.n + o.n) as f64;
        let d = o.mean - self.mean;
        self.mean += d * (o.n as f64 / n);
        self.m2 += o.m2 + d * d * (self.n as f64 * o.n as f64 / n);
        self.n += o.n;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for Moments {
    fn default() -> Moments {
        Moments::new()
    }
}

/// Linear-interpolated quantile of an **already sorted** sample,
/// `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Quantile of an unsorted sample (sorts a copy).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_of_exponential_like_data_near_one() {
        let s = Summary {
            n: 10,
            mean: 100.0,
            std_dev: 100.0,
            min: 0.0,
            max: 500.0,
            median: 69.0,
        };
        assert!((s.cv() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn moments_match_two_pass_summary() {
        // LCG-derived sample: deterministic, spread over a few decades.
        let mut s = 0x2545f4914f6cdd1du64;
        let xs: Vec<f64> = (0..4096)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64 * 1e3 - 250.0
            })
            .collect();
        let two_pass = Summary::of(&xs);
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.n(), 4096);
        assert!((m.mean() - two_pass.mean).abs() < 1e-9 * two_pass.mean.abs().max(1.0));
        assert!((m.std_dev() - two_pass.std_dev).abs() < 1e-9 * two_pass.std_dev);
        assert_eq!(m.min(), two_pass.min);
        assert_eq!(m.max(), two_pass.max);
    }

    #[test]
    fn moments_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        let mut whole = Moments::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(313);
        let mut left = Moments::new();
        let mut right = Moments::new();
        for &x in a {
            left.push(x);
        }
        for &x in b {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.n(), whole.n());
        assert!((left.mean() - whole.mean()).abs() < 1e-12 * whole.mean().abs());
        assert!((left.variance() - whole.variance()).abs() < 1e-9 * whole.variance());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn moments_merge_with_empty_is_identity() {
        let mut m = Moments::new();
        m.push(2.0);
        m.push(4.0);
        let before = (m.n(), m.mean(), m.variance());
        m.merge(&Moments::new());
        assert_eq!((m.n(), m.mean(), m.variance()), before);
        let mut empty = Moments::new();
        empty.merge(&m);
        assert_eq!(empty.n(), 2);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn moments_empty_state() {
        let m = Moments::new();
        assert_eq!(m.n(), 0);
        assert!(m.mean().is_nan());
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), f64::INFINITY);
        assert_eq!(m.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn moments_single_observation() {
        let mut m = Moments::new();
        m.push(3.5);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.std_dev(), 0.0);
        assert_eq!(m.min(), 3.5);
        assert_eq!(m.max(), 3.5);
    }
}

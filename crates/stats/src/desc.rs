//! Descriptive statistics: the summary block reported in the paper's Table 1
//! (mean, standard deviation, min, max) plus quantiles.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (linear-interpolated).
    pub median: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "Summary::of on empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile_sorted(&sorted, 0.5),
        }
    }

    /// Coefficient of variation (std/mean); 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Linear-interpolated quantile of an **already sorted** sample,
/// `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Quantile of an unsorted sample (sorts a copy).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_of_exponential_like_data_near_one() {
        let s = Summary {
            n: 10,
            mean: 100.0,
            std_dev: 100.0,
            min: 0.0,
            max: 500.0,
            median: 69.0,
        };
        assert!((s.cv() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }
}

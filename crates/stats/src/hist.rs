//! Histograms (relative frequency), matching the left panels of the paper's
//! Figure 8.

/// A fixed-width-bin histogram over `[lo, hi)`.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build a histogram spanning the sample's own range.
    pub fn from_samples(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty());
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Widen slightly so the maximum lands in the last bin.
        let span = (hi - lo).max(1e-12);
        let mut h = Histogram::new(lo, hi + span * 1e-9, bins);
        for &x in xs {
            h.record(x);
        }
        h
    }

    /// Record one observation.
    ///
    /// Branchless: the under/over/in-range outcomes become 0/1 masks and the
    /// bin index is computed unconditionally (Rust's saturating `as usize`
    /// cast maps negative/NaN to 0 and +huge to `usize::MAX`, so the
    /// clamped index is always a valid slot; the mask zeroes the increment
    /// for out-of-range observations). `lo < hi` is an invariant, so the
    /// under and over masks are mutually exclusive.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        let under = (x < self.lo) as u64;
        let over = (x >= self.hi) as u64;
        let in_range = 1 - under - over;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.underflow += under;
        self.overflow += over;
        self.counts[idx] += in_range;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw count of bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Relative frequency of bin `i` (fraction of all recorded points).
    pub fn rel_freq(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Density estimate at bin `i` (relative frequency / bin width),
    /// comparable to a pdf.
    pub fn density(&self, i: usize) -> f64 {
        self.rel_freq(i) / self.bin_width()
    }

    /// Total observations recorded (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_center, density)` series for plotting against a pdf.
    pub fn density_series(&self) -> Vec<(f64, f64)> {
        (0..self.bins())
            .map(|i| (self.bin_center(i), self.density(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9] {
            h.record(x);
        }
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0); // at hi => overflow (range is half-open)
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn rel_freqs_sum_to_one_when_in_range() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_samples(&xs, 20);
        let sum: f64 = (0..h.bins()).map(|i| h.rel_freq(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn density_approximates_uniform_pdf() {
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 1000.0).collect(); // ~U[0,10)
        let h = Histogram::from_samples(&xs, 10);
        for i in 0..h.bins() {
            assert!((h.density(i) - 0.1).abs() < 0.01, "bin {i}: {}", h.density(i));
        }
    }

    #[test]
    fn from_samples_includes_max() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0], 3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.underflow(), 0);
    }
}

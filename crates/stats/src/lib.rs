#![warn(missing_docs)]
//! # paradyn-stats — statistics substrate for the Paradyn IS study
//!
//! Everything statistical the paper's methodology needs:
//!
//! * [`dist`] — the random variables of the ROCC workload model
//!   (exponential, lognormal in the paper's `(mean, std)` convention,
//!   Weibull, uniform, deterministic) with sampling, pdf/cdf/quantile and
//!   exact moments.
//! * [`fit`] — maximum-likelihood fitting and Kolmogorov–Smirnov selection
//!   (the paper's Table 2 procedure).
//! * [`desc`] — descriptive summaries (Table 1).
//! * [`hist`] / [`qq`] — histogram + Q-Q data (Figure 8).
//! * [`factorial`] — 2^k·r factorial designs and allocation of variation
//!   (Figures 16/20/25, Tables 7–8; the paper calls this "PCA").
//! * [`pca`] — true covariance PCA via a Jacobi eigensolver (cross-check).
//! * [`ci`] — Student-t confidence intervals for replicated simulations.
//! * [`special`] — the underlying special functions.

pub mod ci;
pub mod desc;
pub mod dist;
pub mod factorial;
pub mod fit;
pub mod hist;
pub mod pca;
pub mod qq;
pub mod special;

pub use ci::{mean_ci, mean_ci_from_moments, MeanCi};
pub use desc::{quantile, quantile_sorted, Summary};
pub use dist::Rv;
pub use factorial::{Design2kr, Term, Variation};
pub use fit::{best_fit, fit_exponential, fit_lognormal, fit_weibull, ks_statistic, Fit};
pub use hist::Histogram;
pub use pca::{covariance_matrix, jacobi_eigen, pca, Pca};
pub use qq::{qq_correlation, qq_points, qq_series, QqPoint};

/// A tiny deterministic RNG (SplitMix64). Exposed so tests here and in
/// dependent crates can draw reproducible samples without wiring up the
/// full stream machinery.
pub struct SplitMix64(pub u64);

impl rand::RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (rand::RngCore::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rand::RngCore::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = rand::RngCore::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

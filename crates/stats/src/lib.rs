#![warn(missing_docs)]
//! # paradyn-stats — statistics substrate for the Paradyn IS study
//!
//! Everything statistical the paper's methodology needs:
//!
//! * [`dist`] — the random variables of the ROCC workload model
//!   (exponential, lognormal in the paper's `(mean, std)` convention,
//!   Weibull, uniform, deterministic) with sampling, pdf/cdf/quantile and
//!   exact moments.
//! * [`fit`] — maximum-likelihood fitting and Kolmogorov–Smirnov selection
//!   (the paper's Table 2 procedure).
//! * [`desc`] — descriptive summaries (Table 1).
//! * [`hist`] / [`qq`] — histogram + Q-Q data (Figure 8).
//! * [`factorial`] — 2^k·r factorial designs and allocation of variation
//!   (Figures 16/20/25, Tables 7–8; the paper calls this "PCA").
//! * [`pca`] — true covariance PCA via a Jacobi eigensolver (cross-check).
//! * [`ci`] — Student-t confidence intervals for replicated simulations.
//! * [`special`] — the underlying special functions.
//! * [`rng`] — the workspace's own [`Rng`] trait (the build is hermetic;
//!   no `rand`) plus the [`SplitMix64`] test generator.
//! * [`check`] — an in-tree property-based testing harness (seeded
//!   generators, shrinking, failing-seed reporting; no `proptest`).

pub mod check;
pub mod ci;
pub mod desc;
pub mod dist;
pub mod factorial;
pub mod fit;
pub mod hist;
pub mod pca;
pub mod qq;
pub mod rng;
pub mod special;

pub use check::{check, Gen, PropResult};
pub use ci::{mean_ci, mean_ci_from_moments, MeanCi};
pub use desc::{quantile, quantile_sorted, Moments, Summary};
pub use dist::Rv;
pub use factorial::{Design2kr, Term, Variation};
pub use fit::{best_fit, fit_exponential, fit_lognormal, fit_weibull, ks_statistic, Fit};
pub use hist::Histogram;
pub use pca::{covariance_matrix, jacobi_eigen, pca, Pca};
pub use qq::{qq_correlation, qq_points, qq_series, QqPoint};
pub use rng::{Rng, SplitMix64};

//! Random variables used by the ROCC workload model.
//!
//! [`Rv`] is a small `Copy` enum rather than a trait object so that models
//! can store one per process with zero indirection on the sampling hot path.
//!
//! A note on the paper's lognormal parameterization: Table 2 writes
//! `lognormal(a, b)` with `a` the mean and `b` matching the *standard
//! deviation* column of Table 1 (e.g. `lognormal(2213, 3034)` for the
//! application CPU bursts whose Table 1 row is mean 2213, st.dev 3034).
//! [`Rv::lognormal_mean_std`] therefore takes real-space mean and standard
//! deviation and converts to the underlying normal's `(mu, sigma)`.

use crate::rng::Rng;
use crate::special::{gamma, norm_cdf, norm_quantile};

/// Uniform draw in `[0, 1)` from any [`Rng`].
#[inline]
pub fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.next_f64()
}

/// Uniform draw in `(0, 1)` (never exactly zero).
#[inline]
pub fn unit_f64_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.next_f64_open()
}

/// Number of ziggurat layers (7-bit index).
const ZIG_N: usize = 128;
/// Rightmost layer edge for the 128-layer normal ziggurat.
const ZIG_R: f64 = 3.442619855899;
/// Area of each layer (rectangle + base strip including the tail).
const ZIG_V: f64 = 9.91256303526217e-3;

/// Ziggurat layer tables: `x[i]` are the layer edges (decreasing, with
/// `x[0] = V/f(R) > R` so the base layer's rectangle-vs-tail split falls out
/// of the ordinary accept test) and `f[i] = exp(-x[i]²/2)`.
struct ZigTables {
    x: [f64; ZIG_N + 1],
    f: [f64; ZIG_N + 1],
}

static ZIG: std::sync::LazyLock<ZigTables> = std::sync::LazyLock::new(|| {
    let pdf = |x: f64| (-0.5 * x * x).exp();
    let mut x = [0.0f64; ZIG_N + 1];
    x[0] = ZIG_V / pdf(ZIG_R);
    x[1] = ZIG_R;
    for i in 2..ZIG_N {
        x[i] = (-2.0 * (ZIG_V / x[i - 1] + pdf(x[i - 1])).ln()).sqrt();
    }
    x[ZIG_N] = 0.0;
    let mut f = [0.0f64; ZIG_N + 1];
    for i in 0..=ZIG_N {
        f[i] = pdf(x[i]);
    }
    ZigTables { x, f }
});

/// Standard normal draw (Marsaglia–Tsang ziggurat, 128 layers).
///
/// Exact — the accept/reject construction samples the true density, it is
/// not an approximation — and ~4× cheaper than the Box–Muller form it
/// replaced: the common case is one `next_u64`, one multiply, and one
/// compare, with no transcendentals. One 64-bit draw supplies the layer
/// index (7 bits), the sign (1 bit), and a 53-bit uniform. The number of
/// raw draws per sample is variable (rejection), which is safe here: replay
/// cursors in the model count *samples*, and snapshots persist raw
/// generator state, so neither depends on a fixed draws-per-sample ratio.
#[inline]
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let t: &ZigTables = &ZIG;
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0x7f) as usize;
        let sign = if bits & 0x80 == 0 { 1.0 } else { -1.0 };
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            // Fast path: strictly inside the next layer's rectangle.
            return sign * x;
        }
        if i == 0 {
            // Base layer miss: sample the tail beyond R (Marsaglia 1964).
            loop {
                let x = -rng.next_f64_open().ln() / ZIG_R;
                let y = -rng.next_f64_open().ln();
                if y + y > x * x {
                    return sign * (ZIG_R + x);
                }
            }
        }
        // Wedge: accept proportionally to the density between the layers.
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * unit_f64(rng) < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

/// A continuous random variable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Rv {
    /// Exponential with the given mean (the paper's `exponential(m)`).
    Exp {
        /// Mean (and standard deviation).
        mean: f64,
    },
    /// Lognormal with underlying normal parameters `mu`, `sigma`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull {
        /// Shape parameter `k`.
        shape: f64,
        /// Scale parameter `lambda`.
        scale: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// A degenerate (deterministic) value.
    Det {
        /// The constant value.
        value: f64,
    },
}

impl Rv {
    /// Exponential random variable with the given mean.
    pub fn exp(mean: f64) -> Rv {
        assert!(mean > 0.0, "exponential mean must be positive");
        Rv::Exp { mean }
    }

    /// Lognormal specified by real-space mean and standard deviation
    /// (the paper's `lognormal(a, b)` convention — see module docs).
    pub fn lognormal_mean_std(mean: f64, std: f64) -> Rv {
        assert!(mean > 0.0 && std >= 0.0);
        if std == 0.0 {
            return Rv::Det { value: mean };
        }
        let cv2 = (std / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Rv::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Lognormal from the underlying normal's parameters.
    pub fn lognormal_mu_sigma(mu: f64, sigma: f64) -> Rv {
        assert!(sigma > 0.0);
        Rv::LogNormal { mu, sigma }
    }

    /// Weibull with shape `k` and scale `lambda`.
    pub fn weibull(shape: f64, scale: f64) -> Rv {
        assert!(shape > 0.0 && scale > 0.0);
        Rv::Weibull { shape, scale }
    }

    /// Uniform on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Rv {
        assert!(hi > lo);
        Rv::Uniform { lo, hi }
    }

    /// A deterministic value.
    pub fn det(value: f64) -> Rv {
        Rv::Det { value }
    }

    /// Draw one sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Rv::Exp { mean } => -mean * unit_f64_open(rng).ln(),
            Rv::LogNormal { mu, sigma } => (mu + sigma * std_normal(rng)).exp(),
            Rv::Weibull { shape, scale } => {
                scale * (-unit_f64_open(rng).ln()).powf(1.0 / shape)
            }
            Rv::Uniform { lo, hi } => lo + (hi - lo) * unit_f64(rng),
            Rv::Det { value } => value,
        }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        match *self {
            Rv::Exp { mean } => {
                if x < 0.0 {
                    0.0
                } else {
                    (-x / mean).exp() / mean
                }
            }
            Rv::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    let z = (x.ln() - mu) / sigma;
                    (-0.5 * z * z).exp()
                        / (x * sigma * (2.0 * std::f64::consts::PI).sqrt())
                }
            }
            Rv::Weibull { shape, scale } => {
                if x < 0.0 {
                    0.0
                } else {
                    let t = x / scale;
                    (shape / scale) * t.powf(shape - 1.0) * (-t.powf(shape)).exp()
                }
            }
            Rv::Uniform { lo, hi } => {
                if x >= lo && x < hi {
                    1.0 / (hi - lo)
                } else {
                    0.0
                }
            }
            Rv::Det { .. } => 0.0,
        }
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            Rv::Exp { mean } => {
                if x < 0.0 {
                    0.0
                } else {
                    1.0 - (-x / mean).exp()
                }
            }
            Rv::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    norm_cdf((x.ln() - mu) / sigma)
                }
            }
            Rv::Weibull { shape, scale } => {
                if x < 0.0 {
                    0.0
                } else {
                    1.0 - (-(x / scale).powf(shape)).exp()
                }
            }
            Rv::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
            Rv::Det { value } => {
                if x >= value {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Quantile function (inverse CDF) for `p` in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        match *self {
            Rv::Exp { mean } => -mean * (1.0 - p).ln(),
            Rv::LogNormal { mu, sigma } => (mu + sigma * norm_quantile(p)).exp(),
            Rv::Weibull { shape, scale } => scale * (-(1.0 - p).ln()).powf(1.0 / shape),
            Rv::Uniform { lo, hi } => lo + (hi - lo) * p,
            Rv::Det { value } => value,
        }
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Rv::Exp { mean } => mean,
            Rv::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
            Rv::Weibull { shape, scale } => scale * gamma(1.0 + 1.0 / shape),
            Rv::Uniform { lo, hi } => 0.5 * (lo + hi),
            Rv::Det { value } => value,
        }
    }

    /// Theoretical variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Rv::Exp { mean } => mean * mean,
            Rv::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                ((s2).exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            Rv::Weibull { shape, scale } => {
                let g1 = gamma(1.0 + 1.0 / shape);
                let g2 = gamma(1.0 + 2.0 / shape);
                scale * scale * (g2 - g1 * g1)
            }
            Rv::Uniform { lo, hi } => (hi - lo).powi(2) / 12.0,
            Rv::Det { .. } => 0.0,
        }
    }

    /// Theoretical standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Human-readable family name.
    pub fn family(&self) -> &'static str {
        match self {
            Rv::Exp { .. } => "exponential",
            Rv::LogNormal { .. } => "lognormal",
            Rv::Weibull { .. } => "weibull",
            Rv::Uniform { .. } => "uniform",
            Rv::Det { .. } => "deterministic",
        }
    }

    /// Paper-style description, e.g. `exponential(267)` or
    /// `lognormal(2213, 3034)` (mean, std).
    pub fn describe(&self) -> String {
        match *self {
            Rv::Exp { mean } => format!("exponential({mean:.0})"),
            Rv::LogNormal { .. } => {
                format!("lognormal({:.0}, {:.0})", self.mean(), self.std_dev())
            }
            Rv::Weibull { shape, scale } => format!("weibull(k={shape:.2}, l={scale:.0})"),
            Rv::Uniform { lo, hi } => format!("uniform({lo:.0}, {hi:.0})"),
            Rv::Det { value } => format!("deterministic({value:.0})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::SplitMix64 as TestRng;

    fn sample_mean_std(rv: Rv, n: usize) -> (f64, f64) {
        let mut rng = TestRng(12345);
        let xs: Vec<f64> = (0..n).map(|_| rv.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        (m, v.sqrt())
    }

    #[test]
    fn exponential_moments_match() {
        let rv = Rv::exp(267.0);
        assert_eq!(rv.mean(), 267.0);
        let (m, s) = sample_mean_std(rv, 200_000);
        assert!((m - 267.0).abs() / 267.0 < 0.02, "mean {m}");
        assert!((s - 267.0).abs() / 267.0 < 0.03, "std {s}");
    }

    #[test]
    fn lognormal_paper_parameterization() {
        // The application CPU burst from Table 2: lognormal(2213, 3034).
        let rv = Rv::lognormal_mean_std(2213.0, 3034.0);
        assert!((rv.mean() - 2213.0).abs() < 1e-6);
        assert!((rv.std_dev() - 3034.0).abs() < 1e-6);
        let (m, s) = sample_mean_std(rv, 400_000);
        assert!((m - 2213.0).abs() / 2213.0 < 0.03, "mean {m}");
        assert!((s - 3034.0).abs() / 3034.0 < 0.10, "std {s}");
    }

    #[test]
    fn weibull_mean_matches_gamma_formula() {
        let rv = Rv::weibull(2.0, 100.0);
        // E[X] = lambda * Gamma(1.5) = 100 * 0.8862...
        assert!((rv.mean() - 88.622_692_5).abs() < 1e-3);
        let (m, _) = sample_mean_std(rv, 200_000);
        assert!((m - rv.mean()).abs() / rv.mean() < 0.02);
    }

    #[test]
    fn cdf_quantile_inverse() {
        for rv in [
            Rv::exp(100.0),
            Rv::lognormal_mean_std(2213.0, 3034.0),
            Rv::weibull(1.7, 50.0),
            Rv::uniform(2.0, 9.0),
        ] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = rv.quantile(p);
                assert!((rv.cdf(x) - p).abs() < 1e-6, "{rv:?} p={p}");
            }
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Crude trapezoid over a wide range.
        for rv in [Rv::exp(10.0), Rv::lognormal_mean_std(10.0, 5.0), Rv::weibull(2.0, 10.0)] {
            let hi = rv.quantile(0.9999);
            let n = 20_000;
            let dx = hi / n as f64;
            let total: f64 = (0..n)
                .map(|i| rv.pdf((i as f64 + 0.5) * dx) * dx)
                .sum();
            assert!((total - 1.0).abs() < 5e-3, "{rv:?} total={total}");
        }
    }

    #[test]
    fn deterministic_is_degenerate() {
        let rv = Rv::det(42.0);
        let mut rng = TestRng(1);
        assert_eq!(rv.sample(&mut rng), 42.0);
        assert_eq!(rv.mean(), 42.0);
        assert_eq!(rv.variance(), 0.0);
        assert_eq!(rv.cdf(41.9), 0.0);
        assert_eq!(rv.cdf(42.0), 1.0);
    }

    #[test]
    fn samples_are_non_negative() {
        let mut rng = TestRng(7);
        for rv in [Rv::exp(1.0), Rv::lognormal_mean_std(5.0, 2.0), Rv::weibull(0.8, 3.0)] {
            for _ in 0..10_000 {
                assert!(rv.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn describe_matches_paper_style() {
        assert_eq!(Rv::exp(267.0).describe(), "exponential(267)");
        assert_eq!(
            Rv::lognormal_mean_std(2213.0, 3034.0).describe(),
            "lognormal(2213, 3034)"
        );
    }

    #[test]
    fn zero_std_lognormal_degenerates() {
        let rv = Rv::lognormal_mean_std(100.0, 0.0);
        assert_eq!(rv, Rv::det(100.0));
    }
}

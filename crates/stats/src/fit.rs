//! Maximum-likelihood distribution fitting and goodness-of-fit, as used for
//! the paper's workload characterization (Section 2.3.2 / Table 2): the
//! candidate families are exponential, lognormal, and Weibull; the winner is
//! chosen by Kolmogorov–Smirnov distance (the paper picks visually via Q-Q
//! plots; K-S formalizes the same comparison).

use crate::dist::Rv;

/// One fitted candidate with its goodness measures.
#[derive(Clone, Debug)]
pub struct Fit {
    /// The fitted random variable.
    pub rv: Rv,
    /// Kolmogorov–Smirnov statistic (smaller is better).
    pub ks: f64,
    /// Log-likelihood of the sample under the fit (larger is better).
    pub log_likelihood: f64,
}

/// MLE fit of an exponential distribution (mean = sample mean).
///
/// # Panics
/// Panics on an empty sample or non-positive mean.
pub fn fit_exponential(xs: &[f64]) -> Rv {
    assert!(!xs.is_empty());
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(mean > 0.0, "exponential fit requires positive data");
    Rv::exp(mean)
}

/// MLE fit of a lognormal distribution (moments of `ln x`).
///
/// Non-positive observations are rejected with a panic: they are impossible
/// under a lognormal and indicate an upstream data error.
pub fn fit_lognormal(xs: &[f64]) -> Rv {
    assert!(!xs.is_empty());
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "lognormal fit requires strictly positive data"
    );
    let n = xs.len() as f64;
    let mu = xs.iter().map(|x| x.ln()).sum::<f64>() / n;
    let sigma2 = xs.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
    let sigma = sigma2.sqrt().max(1e-12);
    Rv::lognormal_mu_sigma(mu, sigma)
}

/// MLE fit of a Weibull distribution.
///
/// Solves the shape equation
/// `sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0` by bisection (the
/// function is monotone increasing in `k`), then sets the scale from the
/// first-order condition.
pub fn fit_weibull(xs: &[f64]) -> Rv {
    assert!(!xs.is_empty());
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "weibull fit requires strictly positive data"
    );
    let n = xs.len() as f64;
    let mean_ln = xs.iter().map(|x| x.ln()).sum::<f64>() / n;
    let g = |k: f64| -> f64 {
        let mut sxk = 0.0;
        let mut sxk_ln = 0.0;
        for &x in xs {
            let xk = x.powf(k);
            sxk += xk;
            sxk_ln += xk * x.ln();
        }
        sxk_ln / sxk - 1.0 / k - mean_ln
    };
    let (mut lo, mut hi) = (1e-3, 1.0);
    // Expand the bracket until g changes sign (g is increasing in k).
    while g(hi) < 0.0 && hi < 1e3 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * hi {
            break;
        }
    }
    let k = 0.5 * (lo + hi);
    let scale = (xs.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Rv::weibull(k, scale)
}

/// Kolmogorov–Smirnov distance between the empirical CDF of `xs` and `rv`.
pub fn ks_statistic(xs: &[f64], rv: &Rv) -> f64 {
    assert!(!xs.is_empty());
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = rv.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Log-likelihood of `xs` under `rv` (−inf if any point has zero density).
pub fn log_likelihood(xs: &[f64], rv: &Rv) -> f64 {
    xs.iter()
        .map(|&x| {
            let p = rv.pdf(x);
            if p <= 0.0 {
                f64::NEG_INFINITY
            } else {
                p.ln()
            }
        })
        .sum()
}

/// Fit all three candidate families and rank by K-S distance
/// (best first). This is the procedure behind the paper's Table 2.
pub fn best_fit(xs: &[f64]) -> Vec<Fit> {
    let mut fits: Vec<Fit> = [fit_exponential(xs), fit_lognormal(xs), fit_weibull(xs)]
        .into_iter()
        .map(|rv| Fit {
            ks: ks_statistic(xs, &rv),
            log_likelihood: log_likelihood(xs, &rv),
            rv,
        })
        .collect();
    fits.sort_by(|a, b| a.ks.partial_cmp(&b.ks).expect("NaN ks"));
    fits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Rv;
    

    use crate::SplitMix64 as TestRng;

    fn draws(rv: Rv, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = TestRng(seed);
        (0..n).map(|_| rv.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_mean() {
        let xs = draws(Rv::exp(223.0), 50_000, 1);
        let rv = fit_exponential(&xs);
        assert!((rv.mean() - 223.0).abs() / 223.0 < 0.02);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = Rv::lognormal_mean_std(2213.0, 3034.0);
        let xs = draws(truth, 100_000, 2);
        let rv = fit_lognormal(&xs);
        assert!((rv.mean() - 2213.0).abs() / 2213.0 < 0.05, "{}", rv.mean());
        assert!((rv.std_dev() - 3034.0).abs() / 3034.0 < 0.10, "{}", rv.std_dev());
    }

    #[test]
    fn weibull_fit_recovers_shape_and_scale() {
        let truth = Rv::weibull(1.8, 120.0);
        let xs = draws(truth, 50_000, 3);
        match fit_weibull(&xs) {
            Rv::Weibull { shape, scale } => {
                assert!((shape - 1.8).abs() < 0.05, "shape {shape}");
                assert!((scale - 120.0).abs() / 120.0 < 0.03, "scale {scale}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ks_small_for_true_family_large_for_wrong() {
        let xs = draws(Rv::exp(100.0), 20_000, 4);
        let good = ks_statistic(&xs, &Rv::exp(100.0));
        let bad = ks_statistic(&xs, &Rv::exp(300.0));
        assert!(good < 0.02, "good={good}");
        assert!(bad > 0.15, "bad={bad}");
    }

    #[test]
    fn best_fit_picks_lognormal_for_lognormal_data() {
        // The paper's finding for application CPU bursts (Figure 8a).
        let xs = draws(Rv::lognormal_mean_std(2213.0, 3034.0), 20_000, 5);
        let fits = best_fit(&xs);
        assert_eq!(fits[0].rv.family(), "lognormal", "{fits:#?}");
    }

    #[test]
    fn best_fit_picks_exponential_for_exponential_data() {
        // The paper's finding for network requests (Figure 8b). An
        // exponential is also a Weibull with k=1, so accept either family as
        // long as the fitted shape is ~1.
        let xs = draws(Rv::exp(223.0), 20_000, 6);
        let fits = best_fit(&xs);
        match fits[0].rv {
            Rv::Exp { .. } => {}
            Rv::Weibull { shape, .. } => {
                assert!((shape - 1.0).abs() < 0.05, "shape={shape}")
            }
            ref other => panic!("unexpected winner {other:?}"),
        }
    }

    #[test]
    fn log_likelihood_prefers_truth() {
        let xs = draws(Rv::lognormal_mean_std(100.0, 60.0), 10_000, 7);
        let ll_true = log_likelihood(&xs, &fit_lognormal(&xs));
        let ll_exp = log_likelihood(&xs, &fit_exponential(&xs));
        assert!(ll_true > ll_exp);
    }
}

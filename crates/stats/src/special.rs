//! Special functions needed by the distribution and inference code:
//! log-gamma, gamma, error function, normal CDF/quantile, and the
//! regularized incomplete beta function (for Student's t).
//!
//! All implementations are classical published approximations accurate to
//! well beyond what a simulation study needs (|err| < 1e-8 over the ranges
//! used here).

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The gamma function.
pub fn gamma(x: f64) -> f64 {
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        ln_gamma(x).exp()
    }
}

/// Error function (Abramowitz & Stegun 7.1.26 rational approximation,
/// |err| <= 1.5e-7, extended by symmetry).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's algorithm
/// (relative |err| < 1.15e-9).
pub fn norm_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "norm_quantile requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -norm_quantile(1.0 - p)
    }
}

/// Regularized incomplete beta function I_x(a, b) by continued fraction
/// (Numerical Recipes `betai`).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "beta_inc: x out of [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student's t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Student's t quantile (inverse CDF) by bisection on [`t_cdf`].
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "t_quantile requires p in (0,1)");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Normal quantile is a good bracket seed; t tails are fatter.
    let z = norm_quantile(p);
    let mut lo = z.min(0.0) * 50.0 - 1.0;
    let mut hi = z.max(0.0) * 50.0 + 1.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        // Gamma(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_half_integers() {
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-9);
        assert!((gamma(6.0) - 120.0).abs() < 1e-6);
    }

    #[test]
    fn erf_symmetry_and_known() {
        assert!((erf(0.0)).abs() < 1e-6); // A&S 7.1.26 is good to ~1.5e-7
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12); // exact by symmetry
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn norm_cdf_known() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((norm_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((norm_cdf(-1.644_853_6) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn norm_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let z = norm_quantile(p);
            assert!((norm_cdf(z) - p).abs() < 1e-6, "p={p} z={z}");
        }
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = beta_inc(2.5, 1.5, 0.3);
        let w = 1.0 - beta_inc(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
        // I_x(1,1) = x (uniform)
        assert!((beta_inc(1.0, 1.0, 0.42) - 0.42).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_known_values() {
        // t with large df approaches the normal.
        assert!((t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
        // Symmetry.
        assert!((t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        assert!((t_cdf(1.5, 7.0) + t_cdf(-1.5, 7.0) - 1.0).abs() < 1e-10);
        // t(df=1) is Cauchy: F(1) = 0.75.
        assert!((t_cdf(1.0, 1.0) - 0.75).abs() < 1e-8);
    }

    #[test]
    fn t_quantile_known_values() {
        // Classic table values.
        assert!((t_quantile(0.975, 10.0) - 2.228).abs() < 2e-3);
        assert!((t_quantile(0.95, 5.0) - 2.015).abs() < 2e-3);
        assert!((t_quantile(0.975, 1e6) - 1.96).abs() < 1e-2);
        assert!((t_quantile(0.025, 10.0) + t_quantile(0.975, 10.0)).abs() < 1e-9);
    }
}

//! Principal component analysis over small feature sets, via a Jacobi
//! eigensolver on the covariance (or correlation) matrix.
//!
//! The paper's "PCA" figures are really Jain's allocation of variation
//! ([`crate::factorial`]); this module provides true PCA as a cross-check
//! and for the measurement-analysis ablation.

// Indexed loops are the natural idiom for the fixed-size matrix math here.
#![allow(clippy::needless_range_loop)]

/// Result of a PCA.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Row `i` is the unit-length loading vector of component `i`.
    pub components: Vec<Vec<f64>>,
    /// Fraction of total variance explained by each component (sums to 1).
    pub explained: Vec<f64>,
    /// Per-feature means subtracted before analysis.
    pub means: Vec<f64>,
}

/// Covariance matrix of row-major observations (rows = observations,
/// columns = features). Uses the unbiased (n−1) normalizer.
pub fn covariance_matrix(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    assert!(rows.len() >= 2, "need at least two observations");
    let d = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == d), "ragged observation matrix");
    let n = rows.len() as f64;
    let means: Vec<f64> = (0..d)
        .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / n)
        .collect();
    let mut cov = vec![vec![0.0; d]; d];
    for r in rows {
        for i in 0..d {
            let di = r[i] - means[i];
            for j in i..d {
                cov[i][j] += di * (r[j] - means[j]);
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            cov[i][j] /= n - 1.0;
            cov[j][i] = cov[i][j];
        }
    }
    cov
}

/// Eigen-decomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as rows, both
/// sorted by descending eigenvalue.
pub fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    assert!(a.iter().all(|r| r.len() == n), "matrix must be square");
    // v starts as identity; columns accumulate the rotations.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let off: f64 = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .map(|(i, j)| a[i][j] * a[i][j])
            .sum();
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[j][j].partial_cmp(&a[i][i]).expect("NaN eigenvalue"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    (eigenvalues, eigenvectors)
}

/// PCA of row-major observations.
pub fn pca(rows: &[Vec<f64>]) -> Pca {
    let cov = covariance_matrix(rows);
    let d = cov.len();
    let n = rows.len() as f64;
    let means: Vec<f64> = (0..d)
        .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / n)
        .collect();
    let (eigenvalues, components) = jacobi_eigen(cov);
    let total: f64 = eigenvalues.iter().sum::<f64>().max(1e-300);
    let explained = eigenvalues.iter().map(|&e| (e / total).max(0.0)).collect();
    Pca {
        eigenvalues,
        components,
        explained,
        means,
    }
}

impl Pca {
    /// Project an observation onto the first `k` components.
    pub fn project(&self, x: &[f64], k: usize) -> Vec<f64> {
        assert!(k <= self.components.len());
        (0..k)
            .map(|c| {
                self.components[c]
                    .iter()
                    .zip(x.iter().zip(&self.means))
                    .map(|(w, (xi, m))| w * (xi - m))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_diagonal_matrix_is_trivial() {
        let a = vec![vec![3.0, 0.0], vec![0.0, 1.0]];
        let (vals, vecs) = jacobi_eigen(a);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let (vals, vecs) = jacobi_eigen(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // First eigenvector is (1,1)/sqrt(2) up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8 || (v[0] + v[1]).abs() < 1e-8);
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.25],
            vec![0.5, 0.25, 2.0],
        ];
        let (vals, vecs) = jacobi_eigen(a.clone());
        // A = sum_k lambda_k v_k v_k^T
        for i in 0..3 {
            for j in 0..3 {
                let r: f64 = (0..3).map(|k| vals[k] * vecs[k][i] * vecs[k][j]).sum();
                assert!((r - a[i][j]).abs() < 1e-9, "({i},{j})");
            }
        }
        // Trace preserved.
        let tr: f64 = vals.iter().sum();
        assert!((tr - 9.0).abs() < 1e-9);
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the (1, 2) direction plus tiny noise.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = ((i * 37 % 17) as f64 - 8.0) / 100.0;
                vec![t + noise, 2.0 * t - noise]
            })
            .collect();
        let p = pca(&rows);
        assert!(p.explained[0] > 0.999, "explained={:?}", p.explained);
        let c = &p.components[0];
        let ratio = c[1] / c[0];
        assert!((ratio - 2.0).abs() < 0.02, "ratio={ratio}");
    }

    #[test]
    fn explained_fractions_sum_to_one() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 13) as f64, ((i * 7) % 5) as f64])
            .collect();
        let p = pca(&rows);
        let total: f64 = p.explained.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sorted descending.
        for w in p.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn projection_is_centered() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 5.0]).collect();
        let p = pca(&rows);
        let z = p.project(&[4.5, 5.0], 1);
        assert!(z[0].abs() < 1e-9); // mean point projects to origin
    }
}

//! Quantile-quantile plot data, matching the right panels of the paper's
//! Figure 8 (observed quantiles against theoretical quantiles; a good fit
//! hugs the identity line).

use crate::dist::Rv;

/// One Q-Q point: `(theoretical quantile, observed quantile)`.
pub type QqPoint = (f64, f64);

/// Compute Q-Q points for a sample against a theoretical distribution,
/// using plotting positions `(i - 0.5) / n`.
pub fn qq_points(xs: &[f64], rv: &Rv) -> Vec<QqPoint> {
    assert!(!xs.is_empty());
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = sorted.len();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &obs)| {
            let p = (i as f64 + 0.5) / n as f64;
            (rv.quantile(p), obs)
        })
        .collect()
}

/// Pearson correlation of the Q-Q points — the probability-plot correlation
/// coefficient. Values near 1 indicate the family fits (the formal version
/// of the paper's "approximately follows the ideal linear curve").
pub fn qq_correlation(xs: &[f64], rv: &Rv) -> f64 {
    let pts = qq_points(xs, rv);
    let n = pts.len() as f64;
    let (mut sx, mut sy) = (0.0, 0.0);
    for &(t, o) in &pts {
        sx += t;
        sy += o;
    }
    let (mx, my) = (sx / n, sy / n);
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for &(t, o) in &pts {
        sxy += (t - mx) * (o - my);
        sxx += (t - mx) * (t - mx);
        syy += (o - my) * (o - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Thinned Q-Q series for display: keeps at most `max_points` evenly spaced
/// points (always including both extremes).
pub fn qq_series(xs: &[f64], rv: &Rv, max_points: usize) -> Vec<QqPoint> {
    assert!(max_points >= 2);
    let pts = qq_points(xs, rv);
    if pts.len() <= max_points {
        return pts;
    }
    let step = (pts.len() - 1) as f64 / (max_points - 1) as f64;
    (0..max_points)
        .map(|i| pts[(i as f64 * step).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_lies_on_identity() {
        // Take the theoretical quantiles themselves as "observations".
        let rv = Rv::exp(100.0);
        let xs: Vec<f64> = (0..200).map(|i| rv.quantile((i as f64 + 0.5) / 200.0)).collect();
        let pts = qq_points(&xs, &rv);
        for (t, o) in pts {
            assert!((t - o).abs() < 1e-9);
        }
        assert!((qq_correlation(&xs, &rv) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_family_has_lower_correlation() {
        // Lognormal-ish heavy-tail observations against an exponential.
        let truth = Rv::lognormal_mean_std(100.0, 300.0);
        let xs: Vec<f64> = (0..500)
            .map(|i| truth.quantile((i as f64 + 0.5) / 500.0))
            .collect();
        let right = qq_correlation(&xs, &truth);
        let wrong = qq_correlation(&xs, &Rv::exp(100.0));
        assert!(right > wrong, "right={right} wrong={wrong}");
        assert!(right > 0.999);
    }

    #[test]
    fn series_thins_to_requested_size() {
        let rv = Rv::exp(1.0);
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64 / 1000.0).collect();
        let s = qq_series(&xs, &rv, 25);
        assert_eq!(s.len(), 25);
        // Extremes retained.
        let full = qq_points(&xs, &rv);
        assert_eq!(s[0], full[0]);
        assert_eq!(*s.last().unwrap(), *full.last().unwrap());
    }

    #[test]
    fn qq_points_are_sorted_in_both_axes() {
        let rv = Rv::exp(10.0);
        let xs = [5.0, 1.0, 9.0, 2.0, 30.0, 4.0];
        let pts = qq_points(&xs, &rv);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}

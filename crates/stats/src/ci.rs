//! Confidence intervals for sample means (Student's t), used to report the
//! paper's "mean values ... derived within 90% confidence intervals from a
//! sample of fifty values" (Section 4.1).

use crate::special::t_quantile;

/// A two-sided confidence interval around a mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level in (0, 1), e.g. 0.90.
    pub confidence: f64,
}

impl MeanCi {
    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }

    /// Relative half-width (`half_width / |mean|`; infinite if mean is 0).
    pub fn relative_precision(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// t-based confidence interval for the mean of `xs`.
///
/// With a single observation the half-width is reported as 0 (no variance
/// estimate is possible); callers should check `xs.len()`.
pub fn mean_ci(xs: &[f64], confidence: f64) -> MeanCi {
    assert!(!xs.is_empty(), "mean_ci on empty sample");
    assert!(confidence > 0.0 && confidence < 1.0);
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return MeanCi {
            mean,
            half_width: 0.0,
            confidence,
        };
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let t = t_quantile(0.5 + confidence / 2.0, (n - 1) as f64);
    MeanCi {
        mean,
        half_width: t * (var / n as f64).sqrt(),
        confidence,
    }
}

/// Convenience: CI from pre-computed moments.
pub fn mean_ci_from_moments(n: u64, mean: f64, variance: f64, confidence: f64) -> MeanCi {
    assert!(n > 0);
    if n < 2 {
        return MeanCi {
            mean,
            half_width: 0.0,
            confidence,
        };
    }
    let t = t_quantile(0.5 + confidence / 2.0, (n - 1) as f64);
    MeanCi {
        mean,
        half_width: t * (variance / n as f64).sqrt(),
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_textbook_interval() {
        // Jain example-style: n=32 is common; use a simple case with n=8.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let ci = mean_ci(&xs, 0.90);
        assert!((ci.mean - 5.0).abs() < 1e-12);
        // s = sqrt(32/7) = 2.138; hw = t(0.95,7) * s/sqrt(8) = 1.895*0.7559=1.432
        assert!((ci.half_width - 1.432).abs() < 5e-3, "hw={}", ci.half_width);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(10.0));
    }

    #[test]
    fn higher_confidence_widens_interval() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let c90 = mean_ci(&xs, 0.90);
        let c99 = mean_ci(&xs, 0.99);
        assert!(c99.half_width > c90.half_width);
        assert_eq!(c90.mean, c99.mean);
    }

    #[test]
    fn single_observation_has_zero_width() {
        let ci = mean_ci(&[5.0], 0.90);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.mean, 5.0);
    }

    #[test]
    fn moments_variant_matches() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let direct = mean_ci(&xs, 0.90);
        let from_m = mean_ci_from_moments(8, 5.0, 32.0 / 7.0, 0.90);
        assert!((direct.half_width - from_m.half_width).abs() < 1e-9);
    }

    #[test]
    fn relative_precision() {
        let ci = MeanCi {
            mean: 10.0,
            half_width: 0.5,
            confidence: 0.9,
        };
        assert!((ci.relative_precision() - 0.05).abs() < 1e-12);
    }
}

//! The workspace's random-number abstraction.
//!
//! The build is hermetic (no external crates), so the `rand::RngCore`
//! interface the generators used to speak is defined here instead: [`Rng`]
//! is the minimal uniform-bits contract every sampler in the workspace is
//! written against. `paradyn-des` implements it for its xoshiro256++
//! streams; [`SplitMix64`] below is the single-word generator tests reach
//! for when they don't need the full stream machinery.

/// A source of uniform random bits.
///
/// Only [`Rng::next_u64`] is required; everything else is derived. The
/// trait is object-safe and all samplers take `R: Rng + ?Sized`, so both
/// concrete generators and `&mut dyn Rng` work.
pub trait Rng {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (the high half of a 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in the half-open interval `[0, 1)` with 53-bit
    /// precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the open interval `(0, 1)` — safe to pass to `ln()`.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)` via the multiply-shift mapping
    /// (rejection-free; fine for simulation use).
    #[inline]
    fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// One SplitMix64 step: advances `state` and returns the next output.
/// Shared by seeding, stream derivation, and [`SplitMix64`] itself.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A tiny deterministic RNG (SplitMix64). Exposed so tests here and in
/// dependent crates can draw reproducible samples without wiring up the
/// full stream machinery.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut r = SplitMix64(7);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(r.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64(3);
        for _ in 0..10_000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn fill_bytes_handles_unaligned_tails() {
        let mut r = SplitMix64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn trait_object_and_reborrow_both_work() {
        let mut r = SplitMix64(9);
        let dyn_r: &mut dyn Rng = &mut r;
        let _ = dyn_r.next_u64();
        fn takes_generic<R: Rng>(mut r: R) -> u64 {
            r.next_u64()
        }
        takes_generic(&mut r);
    }
}

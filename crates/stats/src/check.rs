//! In-tree property-based testing harness (the hermetic replacement for
//! `proptest`).
//!
//! A property is a closure over a [`Gen`] that draws its inputs and returns
//! `Ok(())`, a failure, or a discard (via [`prop_assume!`]). [`check`] runs
//! it for many cases with seeds derived from a master seed, and on failure
//! *shrinks* the raw draw tape by repeated halving before reporting.
//!
//! ## Environment knobs
//!
//! * `PARADYN_PROP_CASES` — cases per property (default 64).
//! * `PARADYN_PROP_SEED` — master seed override; rerun with the seed that a
//!   failure report prints to reproduce the exact failing case sequence.
//!
//! ## How shrinking works
//!
//! Every raw `u64` a generator consumes is recorded on a tape. Generators
//! map raw words to values monotonically (a smaller word gives a smaller
//! length / integer / float / index), so shrinking the *tape* shrinks the
//! *values* without the harness knowing anything about their types. On
//! failure, each tape word is repeatedly replaced by `word / 2` (and
//! finally `0`) while the property keeps failing. Each accepted step
//! strictly decreases the word, so the process terminates.

use crate::rng::{splitmix64, Rng, SplitMix64};

/// Why a property case did not pass.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable cause (empty for discards).
    pub message: String,
    /// Discarded by [`prop_assume!`] rather than failed.
    pub discard: bool,
}

impl Failure {
    /// A real failure with the given message.
    pub fn fail(message: impl Into<String>) -> Failure {
        Failure {
            message: message.into(),
            discard: false,
        }
    }

    /// A discard: the generated case does not satisfy the property's
    /// precondition and should not count either way.
    pub fn discard() -> Failure {
        Failure {
            message: String::new(),
            discard: true,
        }
    }
}

/// Result of one property case.
pub type PropResult = Result<(), Failure>;

enum Source {
    /// Fresh case: draw from the RNG and record every word.
    Random(SplitMix64),
    /// Shrinking replay: read words from a fixed tape (zeros past the end).
    Tape(Vec<u64>),
}

/// The input source handed to a property: draws values and records the raw
/// words behind them so the harness can shrink a failing case.
pub struct Gen {
    source: Source,
    tape: Vec<u64>,
}

impl Gen {
    fn random(seed: u64) -> Gen {
        Gen {
            source: Source::Random(SplitMix64(seed)),
            tape: Vec::new(),
        }
    }

    fn replay(tape: Vec<u64>) -> Gen {
        Gen {
            source: Source::Tape(tape),
            tape: Vec::new(),
        }
    }

    fn raw(&mut self) -> u64 {
        let w = match &mut self.source {
            Source::Random(rng) => rng.next_u64(),
            Source::Tape(tape) => tape.get(self.tape.len()).copied().unwrap_or(0),
        };
        self.tape.push(w);
        w
    }

    /// Uniform integer in `[lo, hi)`. Smaller raw words map to values
    /// nearer `lo`, so shrinking drives draws toward the lower bound.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = hi - lo;
        lo + ((self.raw() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u128;
        (lo as i128 + ((self.raw() as u128 * span) >> 64) as i128) as i64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let unit = (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }

    /// A boolean; shrinks toward `false`.
    pub fn bool(&mut self) -> bool {
        self.raw() & (1 << 63) != 0
    }

    /// Uniform index into a slice of length `n`; shrinks toward 0.
    pub fn index(&mut self, n: usize) -> usize {
        self.usize_in(0, n)
    }

    /// A uniformly chosen element of `choices`; shrinks toward the first.
    pub fn choice<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.index(choices.len())]
    }

    /// A vector with length in `[len_lo, len_hi)` whose elements come from
    /// `elem`; shrinks toward shorter vectors of smaller elements.
    pub fn vec_of<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut elem: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| elem(self)).collect()
    }

    /// Convenience: vector of uniform `u64`s.
    pub fn vec_u64(&mut self, len_lo: usize, len_hi: usize, lo: u64, hi: u64) -> Vec<u64> {
        self.vec_of(len_lo, len_hi, |g| g.u64_in(lo, hi))
    }

    /// Convenience: vector of uniform `f64`s.
    pub fn vec_f64(&mut self, len_lo: usize, len_hi: usize, lo: f64, hi: f64) -> Vec<f64> {
        self.vec_of(len_lo, len_hi, |g| g.f64_in(lo, hi))
    }

    /// Convenience: vector of booleans.
    pub fn vec_bool(&mut self, len_lo: usize, len_hi: usize) -> Vec<bool> {
        self.vec_of(len_lo, len_hi, |g| g.bool())
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| {
        let v = v.trim();
        v.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| v.parse().ok())
    })
}

/// Cases per property: `PARADYN_PROP_CASES` or 64.
pub fn default_cases() -> u64 {
    env_u64("PARADYN_PROP_CASES").unwrap_or(64)
}

/// Shrink a failing tape by repeated halving; returns the smallest tape
/// (and its failure) still failing the property. Bounded by `budget` extra
/// property executions.
fn shrink<F>(prop: &F, tape: Vec<u64>, failure: Failure, budget: usize) -> (Vec<u64>, Failure)
where
    F: Fn(&mut Gen) -> PropResult,
{
    let mut best_tape = tape;
    let mut best_failure = failure;
    let mut spent = 0usize;
    loop {
        let mut improved = false;
        for i in 0..best_tape.len() {
            // An accepted shrink may shorten the tape under us.
            if i >= best_tape.len() {
                break;
            }
            while best_tape[i] > 0 && spent < budget {
                let mut candidate = best_tape.clone();
                // Halve, jumping straight to zero for small words.
                candidate[i] = if candidate[i] < 2 { 0 } else { candidate[i] / 2 };
                spent += 1;
                let mut g = Gen::replay(candidate);
                match prop(&mut g) {
                    Err(f) if !f.discard => {
                        // Keep the tape the replay actually consumed, so
                        // shrinking one draw can also drop trailing draws.
                        best_tape = g.tape;
                        best_failure = f;
                        improved = true;
                    }
                    _ => break,
                }
            }
            if spent >= budget {
                return (best_tape, best_failure);
            }
        }
        if !improved {
            return (best_tape, best_failure);
        }
    }
}

/// Run `prop` for many seeded cases, shrinking and reporting any failure.
///
/// # Panics
/// Panics with the property name, the shrunk failure message, and the
/// master seed to export as `PARADYN_PROP_SEED` to reproduce.
pub fn check<F>(name: &str, prop: F)
where
    F: Fn(&mut Gen) -> PropResult,
{
    let cases = default_cases();
    // Derive the default master seed from the property name so distinct
    // properties explore distinct case sequences.
    let named = {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h
    };
    let master = env_u64("PARADYN_PROP_SEED").unwrap_or(named);
    let mut seed_state = master;
    let mut discards = 0u64;
    let mut executed = 0u64;
    for case in 0..cases {
        let case_seed = splitmix64(&mut seed_state);
        let mut g = Gen::random(case_seed);
        match prop(&mut g) {
            Ok(()) => executed += 1,
            Err(f) if f.discard => discards += 1,
            Err(f) => {
                let (tape, shrunk) = shrink(&prop, g.tape, f, 1_000);
                panic!(
                    "property `{name}` failed (case {case}/{cases}, master seed {master:#x}):\n  \
                     {msg}\n  shrunk input tape ({n} draws): {tape:?}\n  \
                     rerun with: PARADYN_PROP_SEED={master:#x} PARADYN_PROP_CASES={upto} \
                     cargo test {name}",
                    msg = shrunk.message,
                    n = tape.len(),
                    upto = case + 1,
                );
            }
        }
    }
    assert!(
        executed >= cases / 4,
        "property `{name}` discarded too much: {discards}/{cases} cases"
    );
}

/// Assert a condition inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::check::Failure::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::check::Failure::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::check::Failure::fail(format!(
                "assertion failed: `{} == {}`: {:?} != {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::check::Failure::discard());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_ranges_are_respected() {
        check("meta_ranges", |g| {
            let x = g.u64_in(10, 20);
            prop_assert!((10..20).contains(&x), "x={x}");
            let y = g.f64_in(-2.0, 3.0);
            prop_assert!((-2.0..3.0).contains(&y), "y={y}");
            let z = g.i64_in(-5, 5);
            prop_assert!((-5..5).contains(&z), "z={z}");
            let v = g.vec_u64(1, 8, 0, 100);
            prop_assert!((1..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
            let c = *g.choice(&[3, 5, 7]);
            prop_assert!(c == 3 || c == 5 || c == 7);
            Ok(())
        });
    }

    #[test]
    fn same_seed_gives_same_case_sequence() {
        let record = |seed: u64| -> Vec<u64> {
            let mut seed_state = seed;
            (0..10)
                .map(|_| {
                    let mut g = Gen::random(splitmix64(&mut seed_state));
                    g.u64_in(0, 1_000_000) ^ g.vec_u64(0, 5, 0, 9).len() as u64
                })
                .collect()
        };
        assert_eq!(record(0xABCD), record(0xABCD));
        assert_ne!(record(0xABCD), record(0xABCE));
    }

    #[test]
    fn shrinking_terminates_and_minimizes() {
        // Property failing whenever x >= 100: the shrinker must terminate
        // and land on a tape whose value is still >= 100 but no larger
        // than necessary (halving can't skip below 2x the boundary).
        let prop = |g: &mut Gen| -> PropResult {
            let x = g.u64_in(0, 1_000_000);
            prop_assert!(x < 100, "x={x}");
            Ok(())
        };
        // Find a failing tape.
        let mut failure = None;
        let mut seed_state = 0xFEEDu64;
        for _ in 0..100 {
            let mut g = Gen::random(splitmix64(&mut seed_state));
            if let Err(f) = prop(&mut g) {
                failure = Some((g.tape, f));
                break;
            }
        }
        let (tape, f) = failure.expect("should find a failing case");
        let (shrunk, f2) = shrink(&prop, tape, f, 10_000);
        assert!(!f2.discard);
        // Replay the shrunk tape: still failing, and close to minimal.
        let mut replay = Gen::replay(shrunk);
        let x = replay.u64_in(0, 1_000_000);
        assert!((100..200).contains(&x), "shrunk to x={x}");
    }

    #[test]
    fn discards_do_not_fail_but_excess_discard_is_reported() {
        check("meta_some_discards", |g| {
            let x = g.u64_in(0, 4);
            prop_assume!(x < 3);
            Ok(())
        });
        let result = std::panic::catch_unwind(|| {
            check("meta_all_discarded", |_| Err(Failure::discard()))
        });
        assert!(result.is_err(), "all-discard property must be flagged");
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check("meta_always_fails", |g| {
                let x = g.u64_in(0, 10);
                prop_assert!(x > 100, "impossible, x={x}");
                Ok(())
            })
        });
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("meta_always_fails"), "{msg}");
        assert!(msg.contains("PARADYN_PROP_SEED="), "{msg}");
        assert!(msg.contains("shrunk input tape"), "{msg}");
    }
}

//! 2^k·r factorial experiment design and allocation of variation
//! (Jain, *The Art of Computer Systems Performance Analysis*, ch. 17–18).
//!
//! This is the technique behind the paper's Figures 16, 20, 25 and
//! Tables 7–8 (which the paper calls "principal component analysis" — the
//! computed quantity is the percentage of total variation explained by each
//! factor and factor combination).

use crate::special::t_quantile;

/// One effect term (a factor or interaction of factors).
#[derive(Clone, Debug)]
pub struct Term {
    /// Bitmask over factors (bit j set = factor j participates).
    pub mask: u32,
    /// Label like `"A"`, `"B"`, `"AB"`, `"ABC"`.
    pub label: String,
    /// The effect `q` (half the average change when the factors flip from
    /// low to high).
    pub effect: f64,
    /// Sum of squares attributed to this term.
    pub ss: f64,
    /// Percentage of total variation explained.
    pub pct: f64,
}

/// Result of analysing a 2^k·r design.
#[derive(Clone, Debug)]
pub struct Variation {
    /// Number of factors.
    pub k: usize,
    /// Replications per configuration.
    pub r: usize,
    /// Grand mean of all responses (`q0`).
    pub grand_mean: f64,
    /// Effect terms sorted by decreasing explained percentage.
    pub terms: Vec<Term>,
    /// Experimental-error sum of squares.
    pub sse: f64,
    /// Percentage of variation unexplained (error).
    pub sse_pct: f64,
    /// Total sum of squares.
    pub sst: f64,
}

/// A 2^k·r full factorial design.
///
/// `responses[i]` holds the `r` replicate responses of configuration `i`,
/// where bit `j` of `i` gives the level (0 = low, 1 = high) of factor `j`.
#[derive(Clone, Debug)]
pub struct Design2kr {
    factor_names: Vec<String>,
    responses: Vec<Vec<f64>>,
}

impl Design2kr {
    /// Create a design for the named factors; responses are added with
    /// [`Design2kr::set_responses`].
    pub fn new<S: Into<String>>(factor_names: Vec<S>) -> Self {
        let factor_names: Vec<String> = factor_names.into_iter().map(Into::into).collect();
        assert!(
            (1..=5).contains(&factor_names.len()),
            "supported k is 1..=5"
        );
        let n = 1usize << factor_names.len();
        Design2kr {
            factor_names,
            responses: vec![vec![]; n],
        }
    }

    /// Number of factors.
    pub fn k(&self) -> usize {
        self.factor_names.len()
    }

    /// Store the replicate responses of configuration `config`
    /// (bit j of `config` = level of factor j).
    pub fn set_responses(&mut self, config: usize, reps: Vec<f64>) {
        assert!(config < self.responses.len(), "config out of range");
        assert!(!reps.is_empty(), "need at least one replicate");
        self.responses[config] = reps;
    }

    /// Single-letter code of factor `j` (A, B, C, ...).
    pub fn factor_letter(j: usize) -> char {
        (b'A' + j as u8) as char
    }

    /// Label of an effect mask, e.g. `0b011` → `"AB"`.
    pub fn label(mask: u32) -> String {
        (0..32)
            .filter(|j| mask & (1 << j) != 0)
            .map(Self::factor_letter)
            .collect()
    }

    /// Long-form description: `"A (sampling period)"`.
    pub fn describe_term(&self, mask: u32) -> String {
        if mask.count_ones() == 1 {
            let j = mask.trailing_zeros() as usize;
            format!("{} ({})", Self::factor_letter(j), self.factor_names[j])
        } else {
            Self::label(mask)
        }
    }

    /// Compute effects and the allocation of variation.
    ///
    /// # Panics
    /// Panics if any configuration is missing responses or replicate counts
    /// differ across configurations.
    pub fn analyze(&self) -> Variation {
        let k = self.k();
        let n_cfg = 1usize << k;
        let r = self.responses[0].len();
        assert!(
            self.responses.iter().all(|v| v.len() == r && r > 0),
            "all configurations need the same (non-zero) replicate count"
        );

        let means: Vec<f64> = self
            .responses
            .iter()
            .map(|v| v.iter().sum::<f64>() / r as f64)
            .collect();
        let grand_mean = means.iter().sum::<f64>() / n_cfg as f64;

        // Effects: q_c = (1/2^k) sum_i sign(i, c) * mean_i, where
        // sign(i, c) = prod over bits b of c of (+1 if bit b of i else -1)
        //            = (-1)^{popcount(c & !i)} = +1 iff popcount(c & !i) even.
        let mut terms = Vec::with_capacity(n_cfg - 1);
        for c in 1..n_cfg as u32 {
            let mut q = 0.0;
            for (i, &m) in means.iter().enumerate() {
                let neg_bits = (c & !(i as u32)).count_ones();
                let sign = if neg_bits.is_multiple_of(2) { 1.0 } else { -1.0 };
                q += sign * m;
            }
            q /= n_cfg as f64;
            let ss = (n_cfg * r) as f64 * q * q;
            terms.push(Term {
                mask: c,
                label: Self::label(c),
                effect: q,
                ss,
                pct: 0.0,
            });
        }

        // Experimental error.
        let sse: f64 = self
            .responses
            .iter()
            .zip(&means)
            .map(|(reps, &m)| reps.iter().map(|y| (y - m).powi(2)).sum::<f64>())
            .sum();
        let ss_effects: f64 = terms.iter().map(|t| t.ss).sum();
        let sst = ss_effects + sse;

        for t in &mut terms {
            t.pct = if sst > 0.0 { 100.0 * t.ss / sst } else { 0.0 };
        }
        terms.sort_by(|a, b| b.pct.partial_cmp(&a.pct).expect("NaN pct"));

        Variation {
            k,
            r,
            grand_mean,
            sse,
            sse_pct: if sst > 0.0 { 100.0 * sse / sst } else { 0.0 },
            sst,
            terms,
        }
    }
}

impl Variation {
    /// Percentage explained by the term with the given label
    /// (`None` if no such term).
    pub fn pct_of(&self, label: &str) -> Option<f64> {
        self.terms.iter().find(|t| t.label == label).map(|t| t.pct)
    }

    /// Confidence interval half-width for every effect at the given
    /// confidence level. Returns `None` when `r == 1` (no error estimate).
    pub fn effect_ci_half_width(&self, confidence: f64) -> Option<f64> {
        if self.r < 2 {
            return None;
        }
        let n_cfg = 1usize << self.k;
        let df = (n_cfg * (self.r - 1)) as f64;
        let se2 = self.sse / df;
        let sq = (se2 / (n_cfg * self.r) as f64).sqrt();
        let t = t_quantile(0.5 + confidence / 2.0, df);
        Some(t * sq)
    }

    /// Effects whose CI excludes zero at the given confidence
    /// (all effects when `r == 1`).
    pub fn significant_terms(&self, confidence: f64) -> Vec<&Term> {
        match self.effect_ci_half_width(confidence) {
            Some(hw) => self.terms.iter().filter(|t| t.effect.abs() > hw).collect(),
            None => self.terms.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Jain's textbook memory-cache example (2^2 design):
    /// y = 15, 45, 25, 75 for (A,B) = (-,-), (+,-), (-,+), (+,+).
    #[test]
    fn jain_22_example() {
        let mut d = Design2kr::new(vec!["memory", "cache"]);
        d.set_responses(0b00, vec![15.0]);
        d.set_responses(0b01, vec![45.0]); // A high
        d.set_responses(0b10, vec![25.0]); // B high
        d.set_responses(0b11, vec![75.0]);
        let v = d.analyze();
        assert!((v.grand_mean - 40.0).abs() < 1e-9);
        let qa = v.terms.iter().find(|t| t.label == "A").unwrap().effect;
        let qb = v.terms.iter().find(|t| t.label == "B").unwrap().effect;
        let qab = v.terms.iter().find(|t| t.label == "AB").unwrap().effect;
        assert!((qa - 20.0).abs() < 1e-9);
        assert!((qb - 10.0).abs() < 1e-9);
        assert!((qab - 5.0).abs() < 1e-9);
        // Allocation: SSA:SSB:SSAB = 400:100:25 => 76.2%, 19.0%, 4.8%.
        assert!((v.pct_of("A").unwrap() - 76.19).abs() < 0.01);
        assert!((v.pct_of("B").unwrap() - 19.05).abs() < 0.01);
        assert!((v.pct_of("AB").unwrap() - 4.76).abs() < 0.01);
        assert!(v.sse_pct.abs() < 1e-9);
    }

    /// Jain's 2^2·3 replicated example: effects 21.5, 9.5, 5 with
    /// SSE = 102 and SST = 7032.
    #[test]
    fn jain_22r3_example() {
        let mut d = Design2kr::new(vec!["memory", "cache"]);
        d.set_responses(0b00, vec![15.0, 18.0, 12.0]);
        d.set_responses(0b01, vec![45.0, 48.0, 51.0]);
        d.set_responses(0b10, vec![25.0, 28.0, 19.0]);
        d.set_responses(0b11, vec![75.0, 75.0, 81.0]);
        let v = d.analyze();
        let qa = v.terms.iter().find(|t| t.label == "A").unwrap().effect;
        let qb = v.terms.iter().find(|t| t.label == "B").unwrap().effect;
        let qab = v.terms.iter().find(|t| t.label == "AB").unwrap().effect;
        assert!((qa - 21.5).abs() < 1e-9, "qa={qa}");
        assert!((qb - 9.5).abs() < 1e-9, "qb={qb}");
        assert!((qab - 5.0).abs() < 1e-9, "qab={qab}");
        assert!((v.sse - 102.0).abs() < 1e-9, "sse={}", v.sse);
        assert!((v.sst - 7032.0).abs() < 1e-9, "sst={}", v.sst);
        // CI half width: s_e = sqrt(102/8) = 3.57..; s_q = s_e/sqrt(12).
        let hw = v.effect_ci_half_width(0.90).unwrap();
        // t(0.95, 8) = 1.860; hw = 1.860 * sqrt(102/8)/sqrt(12) = 1.917...
        assert!((hw - 1.917).abs() < 0.01, "hw={hw}");
        // All three effects significant at 90%.
        assert_eq!(v.significant_terms(0.90).len(), 3);
    }

    #[test]
    fn labels_and_masks() {
        assert_eq!(Design2kr::label(0b1), "A");
        assert_eq!(Design2kr::label(0b110), "BC");
        assert_eq!(Design2kr::label(0b1111), "ABCD");
    }

    #[test]
    fn additive_model_has_no_interaction() {
        // y = 10*A + 3*B (levels 0/1): interaction must be zero.
        let mut d = Design2kr::new(vec!["a", "b"]);
        for cfg in 0..4usize {
            let a = (cfg & 1) as f64;
            let b = ((cfg >> 1) & 1) as f64;
            d.set_responses(cfg, vec![10.0 * a + 3.0 * b]);
        }
        let v = d.analyze();
        assert!(v.pct_of("AB").unwrap() < 1e-9);
        assert!(v.pct_of("A").unwrap() > v.pct_of("B").unwrap());
    }

    #[test]
    fn four_factor_design_has_fifteen_terms() {
        let mut d = Design2kr::new(vec!["n", "p", "policy", "app"]);
        for cfg in 0..16usize {
            d.set_responses(cfg, vec![cfg as f64]);
        }
        let v = d.analyze();
        assert_eq!(v.terms.len(), 15);
        let total: f64 = v.terms.iter().map(|t| t.pct).sum();
        assert!((total + v.sse_pct - 100.0).abs() < 1e-6);
    }

    #[test]
    fn describe_includes_factor_name() {
        let d = Design2kr::new(vec!["nodes", "period"]);
        assert_eq!(d.describe_term(0b01), "A (nodes)");
        assert_eq!(d.describe_term(0b10), "B (period)");
        assert_eq!(d.describe_term(0b11), "AB");
    }

    #[test]
    #[should_panic(expected = "same")]
    fn mismatched_replicates_panic() {
        let mut d = Design2kr::new(vec!["a"]);
        d.set_responses(0, vec![1.0, 2.0]);
        d.set_responses(1, vec![1.0]);
        d.analyze();
    }
}

//! Trace-replay workload: drive the simulated application processes with
//! the *actual* burst sequence from a trace instead of fitted
//! distributions.
//!
//! The paper's methodology fits theoretical distributions to the traced
//! occupancy lengths (Section 2.3.2) — practical, but it discards burst
//! ordering and autocorrelation. Replay is the fidelity end of that
//! spectrum: the characterization pipeline's input trace can be played
//! back verbatim, which makes "distribution fit vs. raw trace" a testable
//! ablation of the paper's workload-modelling choice.

use crate::trace::{ProcessClass, Resource, Trace};

/// A replayable schedule of application bursts (µs), cycled when the
/// simulation outlives the trace.
#[derive(Clone, Debug)]
pub struct ReplaySchedule {
    cpu_us: Vec<f64>,
    net_us: Vec<f64>,
}

impl ReplaySchedule {
    /// Build from explicit burst lists.
    ///
    /// # Panics
    /// Panics if either list is empty or contains a non-finite/negative
    /// burst.
    pub fn new(cpu_us: Vec<f64>, net_us: Vec<f64>) -> Self {
        assert!(
            !cpu_us.is_empty() && !net_us.is_empty(),
            "replay schedule needs at least one burst of each kind"
        );
        for &b in cpu_us.iter().chain(&net_us) {
            assert!(b.is_finite() && b >= 0.0, "invalid burst {b}");
        }
        ReplaySchedule { cpu_us, net_us }
    }

    /// Extract the application process's burst sequences from a trace.
    ///
    /// # Panics
    /// Panics if the trace has no application occupancy records.
    pub fn from_trace(trace: &Trace) -> Self {
        ReplaySchedule::new(
            trace.occupancies(ProcessClass::Application, Resource::Cpu),
            trace.occupancies(ProcessClass::Application, Resource::Network),
        )
    }

    /// CPU burst at (cycled) position `i`.
    #[inline]
    pub fn cpu_at(&self, i: u64) -> f64 {
        self.cpu_us[(i % self.cpu_us.len() as u64) as usize]
    }

    /// Network burst at (cycled) position `i`.
    #[inline]
    pub fn net_at(&self, i: u64) -> f64 {
        self.net_us[(i % self.net_us.len() as u64) as usize]
    }

    /// Number of CPU bursts before the schedule cycles.
    pub fn cpu_len(&self) -> usize {
        self.cpu_us.len()
    }

    /// Number of network bursts before the schedule cycles.
    pub fn net_len(&self) -> usize {
        self.net_us.len()
    }

    /// Mean CPU burst (µs).
    pub fn cpu_mean(&self) -> f64 {
        self.cpu_us.iter().sum::<f64>() / self.cpu_us.len() as f64
    }

    /// Mean network burst (µs).
    pub fn net_mean(&self) -> f64 {
        self.net_us.iter().sum::<f64>() / self.net_us.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};
    use paradyn_stats::SplitMix64;

    #[test]
    fn cycles_past_the_end() {
        let r = ReplaySchedule::new(vec![10.0, 20.0, 30.0], vec![1.0]);
        assert_eq!(r.cpu_at(0), 10.0);
        assert_eq!(r.cpu_at(2), 30.0);
        assert_eq!(r.cpu_at(3), 10.0);
        assert_eq!(r.cpu_at(301), 20.0);
        assert_eq!(r.net_at(99), 1.0);
    }

    #[test]
    fn from_trace_matches_table2_means() {
        let t = synthesize(
            &SynthConfig {
                duration_us: 20.0e6,
                ..Default::default()
            },
            &mut SplitMix64(3),
        );
        let r = ReplaySchedule::from_trace(&t);
        assert!(r.cpu_len() > 1_000);
        assert!((r.cpu_mean() - 2213.0).abs() / 2213.0 < 0.15, "{}", r.cpu_mean());
        assert!((r.net_mean() - 223.0).abs() / 223.0 < 0.15, "{}", r.net_mean());
    }

    #[test]
    #[should_panic(expected = "at least one burst")]
    fn empty_schedule_rejected() {
        ReplaySchedule::new(vec![], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid burst")]
    fn nan_burst_rejected() {
        ReplaySchedule::new(vec![f64::NAN], vec![1.0]);
    }
}

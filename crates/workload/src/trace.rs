//! AIX-style resource-occupancy trace records.
//!
//! The paper's workload characterization is driven by traces from the SP-2's
//! AIX tracing facility; each relevant record says *which process occupied
//! which resource for how long, starting when*. This module defines that
//! record, an in-memory trace, and a simple line-oriented text codec so
//! traces can be saved and re-read (we deliberately avoid a heavyweight
//! serialization dependency; the format is one record per line:
//! `t_us pid class resource occupancy_us`).

use std::fmt;
use std::io::{self, BufRead, Write};
use std::str::FromStr;

/// The process classes of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessClass {
    /// Instrumented application process (the NAS benchmark).
    Application,
    /// Paradyn daemon (Pd).
    ParadynDaemon,
    /// PVM daemon (pvmd).
    PvmDaemon,
    /// Other user/system processes.
    Other,
    /// The main Paradyn process on the host workstation.
    MainParadyn,
}

impl ProcessClass {
    /// All classes, in Table 1 order.
    pub const ALL: [ProcessClass; 5] = [
        ProcessClass::Application,
        ProcessClass::ParadynDaemon,
        ProcessClass::PvmDaemon,
        ProcessClass::Other,
        ProcessClass::MainParadyn,
    ];

    /// Table-1 row label.
    pub fn label(self) -> &'static str {
        match self {
            ProcessClass::Application => "Application process",
            ProcessClass::ParadynDaemon => "Paradyn daemon",
            ProcessClass::PvmDaemon => "PVM daemon",
            ProcessClass::Other => "Other processes",
            ProcessClass::MainParadyn => "Main Paradyn process",
        }
    }

    fn code(self) -> &'static str {
        match self {
            ProcessClass::Application => "app",
            ProcessClass::ParadynDaemon => "pd",
            ProcessClass::PvmDaemon => "pvmd",
            ProcessClass::Other => "other",
            ProcessClass::MainParadyn => "main",
        }
    }
}

impl fmt::Display for ProcessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for ProcessClass {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "app" => ProcessClass::Application,
            "pd" => ProcessClass::ParadynDaemon,
            "pvmd" => ProcessClass::PvmDaemon,
            "other" => ProcessClass::Other,
            "main" => ProcessClass::MainParadyn,
            other => return Err(format!("unknown process class {other:?}")),
        })
    }
}

/// The two resources of the ROCC model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A CPU occupancy request.
    Cpu,
    /// A network occupancy request.
    Network,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Cpu => "cpu",
            Resource::Network => "net",
        })
    }
}

impl FromStr for Resource {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "cpu" => Resource::Cpu,
            "net" => Resource::Network,
            other => return Err(format!("unknown resource {other:?}")),
        })
    }
}

/// One occupancy record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Start time of the occupancy, microseconds since trace start.
    pub t_us: f64,
    /// Process id within its class.
    pub pid: u32,
    /// Process class.
    pub class: ProcessClass,
    /// Which resource was occupied.
    pub resource: Resource,
    /// Occupancy length in microseconds.
    pub occupancy_us: f64,
}

/// An in-memory trace (records sorted by start time).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { records: vec![] }
    }

    /// Build from records, sorting by time.
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by(|a, b| a.t_us.partial_cmp(&b.t_us).expect("NaN time"));
        Trace { records }
    }

    /// Append a record (keeps insertion order; call [`Trace::sort`] after
    /// bulk appends from multiple generators).
    pub fn push(&mut self, r: TraceRecord) {
        self.records.push(r);
    }

    /// Sort records by start time.
    pub fn sort(&mut self) {
        self.records
            .sort_by(|a, b| a.t_us.partial_cmp(&b.t_us).expect("NaN time"));
    }

    /// All records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Occupancy lengths of one `(class, resource)` population —
    /// the sample behind one cell pair of Table 1.
    pub fn occupancies(&self, class: ProcessClass, resource: Resource) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.class == class && r.resource == resource)
            .map(|r| r.occupancy_us)
            .collect()
    }

    /// Inter-arrival times (µs) of requests of one `(class, resource)`
    /// population, in trace order.
    pub fn interarrivals(&self, class: ProcessClass, resource: Resource) -> Vec<f64> {
        let times: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.class == class && r.resource == resource)
            .map(|r| r.t_us)
            .collect();
        times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Total occupancy (µs) of one `(class, resource)` population — e.g. the
    /// "Pd CPU time" of Table 3 is `total_occupancy(ParadynDaemon, Cpu)`.
    pub fn total_occupancy(&self, class: ProcessClass, resource: Resource) -> f64 {
        self.records
            .iter()
            .filter(|r| r.class == class && r.resource == resource)
            .map(|r| r.occupancy_us)
            .sum()
    }

    /// Write the trace in the line format.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for r in &self.records {
            writeln!(
                w,
                "{:.3} {} {} {} {:.3}",
                r.t_us, r.pid, r.class, r.resource, r.occupancy_us
            )?;
        }
        Ok(())
    }

    /// Read a trace from the line format. Blank lines and `#` comments are
    /// skipped.
    pub fn read_from<R: BufRead>(r: R) -> io::Result<Trace> {
        let mut records = vec![];
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parse = |line: &str| -> Result<TraceRecord, String> {
                let mut it = line.split_ascii_whitespace();
                let mut next = |what: &str| it.next().ok_or(format!("missing {what}"));
                let t_us: f64 = next("time")?.parse().map_err(|e| format!("time: {e}"))?;
                let pid: u32 = next("pid")?.parse().map_err(|e| format!("pid: {e}"))?;
                let class: ProcessClass = next("class")?.parse()?;
                let resource: Resource = next("resource")?.parse()?;
                let occupancy_us: f64 = next("occupancy")?
                    .parse()
                    .map_err(|e| format!("occupancy: {e}"))?;
                Ok(TraceRecord {
                    t_us,
                    pid,
                    class,
                    resource,
                    occupancy_us,
                })
            };
            match parse(line) {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("trace line {}: {e}", lineno + 1),
                    ))
                }
            }
        }
        Ok(Trace::from_records(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, class: ProcessClass, res: Resource, occ: f64) -> TraceRecord {
        TraceRecord {
            t_us: t,
            pid: 0,
            class,
            resource: res,
            occupancy_us: occ,
        }
    }

    #[test]
    fn from_records_sorts_by_time() {
        let t = Trace::from_records(vec![
            rec(5.0, ProcessClass::Application, Resource::Cpu, 1.0),
            rec(1.0, ProcessClass::Application, Resource::Cpu, 2.0),
        ]);
        assert_eq!(t.records()[0].t_us, 1.0);
    }

    #[test]
    fn occupancies_filter_by_class_and_resource() {
        let t = Trace::from_records(vec![
            rec(0.0, ProcessClass::Application, Resource::Cpu, 10.0),
            rec(1.0, ProcessClass::Application, Resource::Network, 20.0),
            rec(2.0, ProcessClass::ParadynDaemon, Resource::Cpu, 30.0),
            rec(3.0, ProcessClass::Application, Resource::Cpu, 40.0),
        ]);
        assert_eq!(
            t.occupancies(ProcessClass::Application, Resource::Cpu),
            vec![10.0, 40.0]
        );
        assert_eq!(
            t.total_occupancy(ProcessClass::ParadynDaemon, Resource::Cpu),
            30.0
        );
    }

    #[test]
    fn interarrivals_computed_within_population() {
        let t = Trace::from_records(vec![
            rec(0.0, ProcessClass::PvmDaemon, Resource::Cpu, 1.0),
            rec(50.0, ProcessClass::Application, Resource::Cpu, 1.0),
            rec(100.0, ProcessClass::PvmDaemon, Resource::Cpu, 1.0),
            rec(250.0, ProcessClass::PvmDaemon, Resource::Cpu, 1.0),
        ]);
        assert_eq!(
            t.interarrivals(ProcessClass::PvmDaemon, Resource::Cpu),
            vec![100.0, 150.0]
        );
    }

    #[test]
    fn codec_round_trips() {
        let t = Trace::from_records(vec![
            rec(0.5, ProcessClass::Application, Resource::Cpu, 2213.25),
            rec(100.0, ProcessClass::ParadynDaemon, Resource::Network, 71.0),
            rec(200.0, ProcessClass::MainParadyn, Resource::Cpu, 3208.0),
        ]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let t2 = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(t.records().len(), t2.records().len());
        for (a, b) in t.records().iter().zip(t2.records()) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.resource, b.resource);
            assert!((a.t_us - b.t_us).abs() < 1e-3);
            assert!((a.occupancy_us - b.occupancy_us).abs() < 1e-3);
        }
    }

    #[test]
    fn codec_skips_comments_and_rejects_garbage() {
        let text = "# header\n\n0.0 0 app cpu 10.0\n";
        let t = Trace::read_from(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        let bad = "0.0 0 alien cpu 10.0\n";
        assert!(Trace::read_from(bad.as_bytes()).is_err());
        let short = "0.0 0 app cpu\n";
        assert!(Trace::read_from(short.as_bytes()).is_err());
    }

    #[test]
    fn class_labels_match_table1() {
        assert_eq!(ProcessClass::Application.label(), "Application process");
        assert_eq!(ProcessClass::MainParadyn.label(), "Main Paradyn process");
        assert_eq!(ProcessClass::ALL.len(), 5);
    }
}

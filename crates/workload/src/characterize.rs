//! The workload-characterization pipeline (paper Section 2.3):
//! trace → per-class summary statistics (Table 1) → fitted distributions
//! (Table 2) → a [`RoccParams`] to drive the simulation model.

use crate::params::{ProcessParams, RoccParams};
use crate::trace::{ProcessClass, Resource, Trace};
use paradyn_stats::{best_fit, fit_exponential, Fit, Rv, Summary};

/// One row of Table 1: occupancy statistics of a process class.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// The process class.
    pub class: ProcessClass,
    /// CPU occupancy summary (absent if the trace has no such records).
    pub cpu: Option<Summary>,
    /// Network occupancy summary.
    pub net: Option<Summary>,
}

/// Compute Table 1 from a trace.
pub fn table1(trace: &Trace) -> Vec<Table1Row> {
    ProcessClass::ALL
        .iter()
        .map(|&class| {
            let cpu = trace.occupancies(class, Resource::Cpu);
            let net = trace.occupancies(class, Resource::Network);
            Table1Row {
                class,
                cpu: (!cpu.is_empty()).then(|| Summary::of(&cpu)),
                net: (!net.is_empty()).then(|| Summary::of(&net)),
            }
        })
        .collect()
}

/// Characterization of one process class: fitted occupancy-length
/// distributions plus the exponential inter-arrival approximation the paper
/// uses ("the inter-arrival time of requests to individual resources is
/// approximated by an exponential distribution").
#[derive(Clone, Debug)]
pub struct ClassFits {
    /// The process class.
    pub class: ProcessClass,
    /// Ranked CPU occupancy fits, best first.
    pub cpu_fits: Vec<Fit>,
    /// Ranked network occupancy fits, best first.
    pub net_fits: Vec<Fit>,
    /// Exponential fit of CPU request inter-arrival times.
    pub cpu_interarrival: Option<Rv>,
    /// Exponential fit of network request inter-arrival times.
    pub net_interarrival: Option<Rv>,
}

impl ClassFits {
    /// The winning CPU occupancy distribution.
    pub fn best_cpu(&self) -> Option<&Rv> {
        self.cpu_fits.first().map(|f| &f.rv)
    }

    /// The winning network occupancy distribution.
    pub fn best_net(&self) -> Option<&Rv> {
        self.net_fits.first().map(|f| &f.rv)
    }
}

/// Full characterization of a trace (Table 2 content).
#[derive(Clone, Debug)]
pub struct Characterization {
    /// Per-class fits, in Table 1 order.
    pub classes: Vec<ClassFits>,
}

/// Fit distributions for every process class present in the trace.
pub fn characterize(trace: &Trace) -> Characterization {
    let classes = ProcessClass::ALL
        .iter()
        .map(|&class| {
            let cpu = trace.occupancies(class, Resource::Cpu);
            let net = trace.occupancies(class, Resource::Network);
            let cpu_ia = trace.interarrivals(class, Resource::Cpu);
            let net_ia = trace.interarrivals(class, Resource::Network);
            ClassFits {
                class,
                cpu_fits: if cpu.len() >= 10 { best_fit(&cpu) } else { vec![] },
                net_fits: if net.len() >= 10 { best_fit(&net) } else { vec![] },
                cpu_interarrival: (cpu_ia.len() >= 10)
                    .then(|| fit_exponential(&cpu_ia)),
                net_interarrival: (net_ia.len() >= 10)
                    .then(|| fit_exponential(&net_ia)),
            }
        })
        .collect();
    Characterization { classes }
}

impl Characterization {
    /// Fits for one class.
    pub fn class(&self, class: ProcessClass) -> &ClassFits {
        self.classes
            .iter()
            .find(|c| c.class == class)
            .expect("all classes present by construction")
    }

    /// Build a [`RoccParams`] from the fitted distributions, falling back to
    /// `fallback` for quantities a single-node trace cannot identify (batch
    /// marginals, merge cost, quantum, pipe capacity).
    pub fn to_rocc_params(&self, fallback: &RoccParams) -> RoccParams {
        let pick = |fits: &ClassFits,
                    res: Resource,
                    fb: Rv| {
            let best = match res {
                Resource::Cpu => fits.best_cpu(),
                Resource::Network => fits.best_net(),
            };
            best.copied().unwrap_or(fb)
        };
        let app = self.class(ProcessClass::Application);
        let pd = self.class(ProcessClass::ParadynDaemon);
        let pvmd = self.class(ProcessClass::PvmDaemon);
        let other = self.class(ProcessClass::Other);
        let main = self.class(ProcessClass::MainParadyn);
        RoccParams {
            app: ProcessParams {
                cpu_req: pick(app, Resource::Cpu, fallback.app.cpu_req),
                net_req: pick(app, Resource::Network, fallback.app.net_req),
            },
            pd: ProcessParams {
                cpu_req: pick(pd, Resource::Cpu, fallback.pd.cpu_req),
                net_req: pick(pd, Resource::Network, fallback.pd.net_req),
            },
            pvmd: ProcessParams {
                cpu_req: pick(pvmd, Resource::Cpu, fallback.pvmd.cpu_req),
                net_req: pick(pvmd, Resource::Network, fallback.pvmd.net_req),
            },
            pvmd_interarrival: pvmd
                .cpu_interarrival
                .unwrap_or(fallback.pvmd_interarrival),
            other: ProcessParams {
                cpu_req: pick(other, Resource::Cpu, fallback.other.cpu_req),
                net_req: pick(other, Resource::Network, fallback.other.net_req),
            },
            other_cpu_interarrival: other
                .cpu_interarrival
                .unwrap_or(fallback.other_cpu_interarrival),
            other_net_interarrival: other
                .net_interarrival
                .unwrap_or(fallback.other_net_interarrival),
            main_cpu: pick(main, Resource::Cpu, fallback.main_cpu),
            main_net: pick(main, Resource::Network, fallback.main_net),
            ..fallback.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};
    use paradyn_stats::SplitMix64;

    fn trace() -> Trace {
        let cfg = SynthConfig {
            duration_us: 60.0e6,
            ..Default::default()
        };
        synthesize(&cfg, &mut SplitMix64(42))
    }

    #[test]
    fn table1_has_all_five_rows() {
        let rows = table1(&trace());
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.cpu.is_some(), "{:?} missing CPU stats", row.class);
        }
    }

    #[test]
    fn table1_app_row_tracks_paper_values() {
        let rows = table1(&trace());
        let app = rows
            .iter()
            .find(|r| r.class == ProcessClass::Application)
            .unwrap();
        let cpu = app.cpu.as_ref().unwrap();
        assert!((cpu.mean - 2213.0).abs() / 2213.0 < 0.10, "mean {}", cpu.mean);
        let net = app.net.as_ref().unwrap();
        assert!((net.mean - 223.0).abs() / 223.0 < 0.10, "mean {}", net.mean);
    }

    #[test]
    fn characterization_recovers_table2_families() {
        let ch = characterize(&trace());
        // Application CPU bursts: lognormal (the paper's Figure 8a finding).
        let app = ch.class(ProcessClass::Application);
        assert_eq!(app.best_cpu().unwrap().family(), "lognormal");
        // Application network requests: exponential-like (Figure 8b). The
        // Weibull family with shape ~1 is statistically the same call.
        match app.best_net().unwrap() {
            Rv::Exp { .. } => {}
            Rv::Weibull { shape, .. } => assert!((shape - 1.0).abs() < 0.1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trip_recovers_parameters() {
        // Ground truth -> trace -> characterization -> RoccParams: means
        // must come back close to Table 2.
        let ch = characterize(&trace());
        let p = ch.to_rocc_params(&RoccParams::default());
        assert!((p.app.cpu_req.mean() - 2213.0).abs() / 2213.0 < 0.10);
        assert!((p.app.net_req.mean() - 223.0).abs() / 223.0 < 0.10);
        assert!((p.pd.cpu_req.mean() - 267.0).abs() / 267.0 < 0.15);
        assert!((p.pvmd_interarrival.mean() - 6485.0).abs() / 6485.0 < 0.15);
    }

    #[test]
    fn interarrival_fit_matches_sampling_rate() {
        let ch = characterize(&trace());
        let pd = ch.class(ProcessClass::ParadynDaemon);
        let ia = pd.cpu_interarrival.unwrap();
        assert!(
            (ia.mean() - 40_000.0).abs() / 40_000.0 < 0.15,
            "ia mean {}",
            ia.mean()
        );
    }

    #[test]
    fn sparse_trace_falls_back_gracefully() {
        let t = Trace::new();
        let ch = characterize(&t);
        let fb = RoccParams::default();
        let p = ch.to_rocc_params(&fb);
        assert!((p.app.cpu_req.mean() - fb.app.cpu_req.mean()).abs() < 1e-9);
    }
}

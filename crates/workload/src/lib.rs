#![warn(missing_docs)]
//! # paradyn-workload — workload characterization for the Paradyn IS study
//!
//! The paper parameterizes its ROCC model from AIX traces of the NAS
//! `pvmbt` benchmark on an IBM SP-2 (Section 2.3). That hardware and those
//! traces are unavailable, so this crate provides the documented substitute:
//!
//! * [`trace`] — AIX-style occupancy records with a text codec;
//! * [`synth`] — a synthetic trace generator driven by the paper's own
//!   published distributions (Table 2), standing in for the SP-2 tracing
//!   facility;
//! * [`characterize`] — the measurement-analysis pipeline: Table 1 summary
//!   statistics and Table 2 distribution fits, producing a [`RoccParams`];
//! * [`process`] — the detailed (Figure 6) and simplified (Figure 7)
//!   process-behaviour models and their reduction;
//! * [`params`] — the ROCC parameter set with the paper's defaults;
//! * [`nas`] — application profiles (pvmbt, pvmis-like, compute- and
//!   communication-intensive).

pub mod characterize;
pub mod nas;
pub mod params;
pub mod process;
pub mod replay;
pub mod synth;
pub mod trace;

pub use characterize::{characterize, table1, Characterization, ClassFits, Table1Row};
pub use nas::{comm_intensive, compute_intensive, pvmbt, pvmis, AppProfile};
pub use params::{ProcessParams, RoccParams};
pub use process::{simplify, DetailedProcess, DetailedState, ProcEvent, SimpleState};
pub use replay::ReplaySchedule;
pub use synth::{synthesize, SynthConfig};
pub use trace::{ProcessClass, Resource, Trace, TraceRecord};

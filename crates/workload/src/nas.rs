//! Application workload profiles.
//!
//! The paper drives its experiments with the NAS Parallel Benchmarks
//! `pvmbt` (block-tridiagonal solver; the measured Table 1/2 profile) and
//! `pvmis` (integer sort), plus two synthetic extremes used in the factorial
//! designs: a compute-intensive application (network occupancy arbitrarily
//! set to 200 µs) and a communication-intensive one (2000 µs) —
//! Section 4.2.1.

use paradyn_stats::Rv;

/// An application's resource-demand profile for the ROCC model.
#[derive(Clone, Copy, Debug)]
pub struct AppProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// CPU burst length (µs).
    pub cpu_req: Rv,
    /// Network occupancy length (µs).
    pub net_req: Rv,
    /// Mean computation between synchronization barriers (µs);
    /// `None` = no barriers.
    pub barrier_period_us: Option<f64>,
}

/// The measured `pvmbt` profile (Table 2): CPU lognormal(2213, 3034),
/// network exponential(223).
pub fn pvmbt() -> AppProfile {
    AppProfile {
        name: "pvmbt",
        cpu_req: Rv::lognormal_mean_std(2213.0, 3034.0),
        net_req: Rv::exp(223.0),
        barrier_period_us: None,
    }
}

/// A `pvmis`-like profile. The paper does not publish a Table 2 for pvmis;
/// an integer-sort kernel has shorter compute bursts and heavier
/// communication than the BT solver, so we use a synthetic stand-in with
/// that character (documented substitution; only the *contrast* with pvmbt
/// matters for Figure 31 / Table 8).
pub fn pvmis() -> AppProfile {
    AppProfile {
        name: "pvmis",
        cpu_req: Rv::lognormal_mean_std(850.0, 1100.0),
        net_req: Rv::exp(510.0),
        barrier_period_us: None,
    }
}

/// Compute-intensive synthetic application of the factorial designs:
/// network occupancy fixed at 200 µs (Section 4.2.1).
pub fn compute_intensive() -> AppProfile {
    AppProfile {
        name: "compute-intensive",
        cpu_req: Rv::lognormal_mean_std(2213.0, 3034.0),
        net_req: Rv::exp(200.0),
        barrier_period_us: None,
    }
}

/// Communication-intensive synthetic application: network occupancy
/// 2000 µs (Section 4.2.1).
pub fn comm_intensive() -> AppProfile {
    AppProfile {
        name: "communication-intensive",
        cpu_req: Rv::lognormal_mean_std(2213.0, 3034.0),
        net_req: Rv::exp(2000.0),
        barrier_period_us: None,
    }
}

impl AppProfile {
    /// Same profile with synchronization barriers every `period_us` of
    /// computation (Figure 28's factor).
    pub fn with_barriers(mut self, period_us: f64) -> AppProfile {
        assert!(period_us > 0.0);
        self.barrier_period_us = Some(period_us);
        self
    }

    /// Ratio of mean network to mean CPU demand — a crude
    /// communication-intensity index.
    pub fn comm_ratio(&self) -> f64 {
        self.net_req.mean() / self.cpu_req.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pvmbt_matches_table2() {
        let p = pvmbt();
        assert!((p.cpu_req.mean() - 2213.0).abs() < 1e-6);
        assert!((p.net_req.mean() - 223.0).abs() < 1e-9);
        assert!(p.barrier_period_us.is_none());
    }

    #[test]
    fn pvmis_is_more_communication_heavy() {
        assert!(pvmis().comm_ratio() > pvmbt().comm_ratio());
    }

    #[test]
    fn intensity_profiles_match_section_421() {
        assert!((compute_intensive().net_req.mean() - 200.0).abs() < 1e-9);
        assert!((comm_intensive().net_req.mean() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn barriers_attach() {
        let p = pvmbt().with_barriers(1000.0);
        assert_eq!(p.barrier_period_us, Some(1000.0));
        assert_eq!(p.name, "pvmbt");
    }
}

//! Process behaviour models: the detailed instrumented-process state machine
//! of the paper's Figure 6 and the simplified two-state model of Figure 7.
//!
//! The detailed model is an extension of the Unix process model with
//! instrumentation activity (periodic data collection forwarded through the
//! daemon). The paper reduces it to Computation/Communication so that the
//! workload can be characterized from ordinary traces without kernel
//! instrumentation; [`simplify`] encodes that reduction and the tests verify
//! the two models agree on resource-occupancy attribution.

use std::fmt;

/// States of the detailed model (Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DetailedState {
    /// Admitted and runnable, waiting for dispatch.
    Ready,
    /// Executing on a CPU.
    Running,
    /// Performing communication (data collection / NFS / inter-node).
    Communication,
    /// Blocked waiting for a resource (I/O).
    Blocked,
    /// Spawning a child (logged by the instrumentation).
    Fork,
    /// Terminated.
    Exited,
}

/// Events that drive the detailed model's transitions (edge labels of
/// Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcEvent {
    /// Scheduler dispatch: Ready → Running.
    Dispatch,
    /// Quantum expiry: Running → Ready.
    TimeOut,
    /// Start a communication step: Running → Communication.
    StartComm,
    /// Communication finished: Communication → Ready.
    CommDone,
    /// Wait on an unavailable resource: Running → Blocked.
    Wait,
    /// The awaited resource became available: Blocked → Ready.
    ResourceAvailable,
    /// Spawn a new process: Running → Fork.
    Spawn,
    /// Fork logged, back to execution: Fork → Running.
    ForkLogged,
    /// Process finished: Running → Exited.
    Release,
}

/// States of the simplified model (Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimpleState {
    /// Occupying the CPU.
    Computation,
    /// Occupying the network.
    Communication,
}

/// Map a detailed state to the simplified model.
///
/// `Running` is the Computation state; `Communication` maps to itself
/// (it covers data collection, NFS, and inter-node traffic); all other
/// states occupy neither modelled resource and map to `None`.
pub fn simplify(s: DetailedState) -> Option<SimpleState> {
    match s {
        DetailedState::Running => Some(SimpleState::Computation),
        DetailedState::Communication => Some(SimpleState::Communication),
        DetailedState::Ready
        | DetailedState::Blocked
        | DetailedState::Fork
        | DetailedState::Exited => None,
    }
}

/// Error for an illegal transition attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IllegalTransition {
    /// State the process was in.
    pub from: DetailedState,
    /// The offending event.
    pub event: ProcEvent,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {:?} is illegal in state {:?}", self.event, self.from)
    }
}

impl std::error::Error for IllegalTransition {}

/// The detailed process state machine with transition validation.
#[derive(Clone, Debug)]
pub struct DetailedProcess {
    state: DetailedState,
    history: Vec<(DetailedState, ProcEvent)>,
}

impl Default for DetailedProcess {
    fn default() -> Self {
        Self::new()
    }
}

impl DetailedProcess {
    /// A freshly admitted process starts Ready.
    pub fn new() -> Self {
        DetailedProcess {
            state: DetailedState::Ready,
            history: vec![],
        }
    }

    /// Current state.
    pub fn state(&self) -> DetailedState {
        self.state
    }

    /// The legal next state for `event` in `from`, if any (the transition
    /// relation of Figure 6).
    pub fn next_state(from: DetailedState, event: ProcEvent) -> Option<DetailedState> {
        use DetailedState as S;
        use ProcEvent as E;
        Some(match (from, event) {
            (S::Ready, E::Dispatch) => S::Running,
            (S::Running, E::TimeOut) => S::Ready,
            (S::Running, E::StartComm) => S::Communication,
            (S::Communication, E::CommDone) => S::Ready,
            (S::Running, E::Wait) => S::Blocked,
            (S::Blocked, E::ResourceAvailable) => S::Ready,
            (S::Running, E::Spawn) => S::Fork,
            (S::Fork, E::ForkLogged) => S::Running,
            (S::Running, E::Release) => S::Exited,
            _ => return None,
        })
    }

    /// Apply an event, validating legality.
    pub fn apply(&mut self, event: ProcEvent) -> Result<DetailedState, IllegalTransition> {
        match Self::next_state(self.state, event) {
            Some(next) => {
                self.history.push((self.state, event));
                self.state = next;
                Ok(next)
            }
            None => Err(IllegalTransition {
                from: self.state,
                event,
            }),
        }
    }

    /// Transition history as `(state-before, event)` pairs.
    pub fn history(&self) -> &[(DetailedState, ProcEvent)] {
        &self.history
    }

    /// Whether the process has terminated.
    pub fn is_exited(&self) -> bool {
        self.state == DetailedState::Exited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DetailedState as S;
    use ProcEvent as E;

    #[test]
    fn typical_lifecycle_is_legal() {
        let mut p = DetailedProcess::new();
        for (ev, expect) in [
            (E::Dispatch, S::Running),
            (E::TimeOut, S::Ready),
            (E::Dispatch, S::Running),
            (E::StartComm, S::Communication),
            (E::CommDone, S::Ready),
            (E::Dispatch, S::Running),
            (E::Wait, S::Blocked),
            (E::ResourceAvailable, S::Ready),
            (E::Dispatch, S::Running),
            (E::Spawn, S::Fork),
            (E::ForkLogged, S::Running),
            (E::Release, S::Exited),
        ] {
            assert_eq!(p.apply(ev).unwrap(), expect);
        }
        assert!(p.is_exited());
        assert_eq!(p.history().len(), 12);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut p = DetailedProcess::new();
        // Cannot time out while Ready.
        let err = p.apply(E::TimeOut).unwrap_err();
        assert_eq!(err.from, S::Ready);
        // Cannot communicate while Ready.
        assert!(p.apply(E::StartComm).is_err());
        // State unchanged after rejection.
        assert_eq!(p.state(), S::Ready);
        // Exited is terminal.
        p.apply(E::Dispatch).unwrap();
        p.apply(E::Release).unwrap();
        assert!(p.apply(E::Dispatch).is_err());
    }

    #[test]
    fn simplification_matches_figure7() {
        assert_eq!(simplify(S::Running), Some(SimpleState::Computation));
        assert_eq!(
            simplify(S::Communication),
            Some(SimpleState::Communication)
        );
        for s in [S::Ready, S::Blocked, S::Fork, S::Exited] {
            assert_eq!(simplify(s), None, "{s:?} occupies no modelled resource");
        }
    }

    #[test]
    fn only_running_and_comm_occupy_resources() {
        // Walk a random-ish legal path and verify: states mapping to
        // Computation are exactly the Running visits.
        let mut p = DetailedProcess::new();
        let script = [
            E::Dispatch,
            E::StartComm,
            E::CommDone,
            E::Dispatch,
            E::TimeOut,
            E::Dispatch,
            E::Wait,
            E::ResourceAvailable,
            E::Dispatch,
            E::Release,
        ];
        let mut computation_visits = 0;
        let mut communication_visits = 0;
        for ev in script {
            let s = p.apply(ev).unwrap();
            match simplify(s) {
                Some(SimpleState::Computation) => computation_visits += 1,
                Some(SimpleState::Communication) => communication_visits += 1,
                None => {}
            }
        }
        assert_eq!(computation_visits, 4); // four Dispatches to Running
        assert_eq!(communication_visits, 1);
    }
}

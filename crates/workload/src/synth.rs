//! Synthetic AIX-style trace generation — the substitute for the paper's
//! IBM SP-2 tracing of the NAS `pvmbt` benchmark.
//!
//! Records are drawn from ground-truth distributions (the paper's Table 2)
//! and laid out on a timeline per process class:
//!
//! * the application process alternates CPU and network bursts (the closed
//!   two-state model of Figure 7);
//! * the Paradyn daemon's requests arrive with the sampling inter-arrival,
//!   each producing a CPU record followed by a network record;
//! * the PVM daemon and "other" processes are open Poisson sources;
//! * the main Paradyn process (on the host node) receives one message per
//!   daemon forward.
//!
//! Because the characterization pipeline consumes only occupancy lengths
//! and inter-arrival times, re-fitting these traces recovers the published
//! parameters — which is exactly what the round-trip tests assert.

use crate::params::RoccParams;
use crate::trace::{ProcessClass, Resource, Trace, TraceRecord};
use paradyn_stats::Rng;

/// Configuration of a synthetic tracing run (one traced node, as in the
/// paper's Figure 29 setup).
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Trace duration in microseconds.
    pub duration_us: f64,
    /// Mean sampling inter-arrival per application process (µs);
    /// Table 2 typical: 40 000.
    pub sampling_period_us: f64,
    /// Number of application processes on the traced node.
    pub n_app: u32,
    /// Whether to also emit main-Paradyn-process records (the paper traces
    /// the host node separately).
    pub include_main: bool,
    /// Ground-truth parameters.
    pub params: RoccParams,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            duration_us: 100.0e6,
            sampling_period_us: 40_000.0,
            n_app: 1,
            include_main: true,
            params: RoccParams::default(),
        }
    }
}

/// Generate a synthetic trace.
pub fn synthesize<R: Rng>(cfg: &SynthConfig, rng: &mut R) -> Trace {
    let p = &cfg.params;
    let mut trace = Trace::new();

    // Application processes: closed alternation of CPU and network bursts.
    for pid in 0..cfg.n_app {
        let mut t = 0.0;
        while t < cfg.duration_us {
            let cpu = p.app.cpu_req.sample(rng);
            trace.push(TraceRecord {
                t_us: t,
                pid,
                class: ProcessClass::Application,
                resource: Resource::Cpu,
                occupancy_us: cpu,
            });
            t += cpu;
            if t >= cfg.duration_us {
                break;
            }
            let net = p.app.net_req.sample(rng);
            trace.push(TraceRecord {
                t_us: t,
                pid,
                class: ProcessClass::Application,
                resource: Resource::Network,
                occupancy_us: net,
            });
            t += net;
        }
    }

    // Paradyn daemon: one collect-and-forward cycle per sample.
    let pd_rate_period = cfg.sampling_period_us / cfg.n_app.max(1) as f64;
    let mut t = exp_draw(rng, pd_rate_period);
    while t < cfg.duration_us {
        let cpu = p.pd.cpu_req.sample(rng);
        trace.push(TraceRecord {
            t_us: t,
            pid: 0,
            class: ProcessClass::ParadynDaemon,
            resource: Resource::Cpu,
            occupancy_us: cpu,
        });
        let net = p.pd.net_req.sample(rng);
        trace.push(TraceRecord {
            t_us: t + cpu,
            pid: 0,
            class: ProcessClass::ParadynDaemon,
            resource: Resource::Network,
            occupancy_us: net,
        });
        // A received sample costs the main process CPU on the host node.
        if cfg.include_main {
            trace.push(TraceRecord {
                t_us: t + cpu + net,
                pid: 0,
                class: ProcessClass::MainParadyn,
                resource: Resource::Cpu,
                occupancy_us: p.main_cpu.sample(rng),
            });
            trace.push(TraceRecord {
                t_us: t + cpu + net,
                pid: 0,
                class: ProcessClass::MainParadyn,
                resource: Resource::Network,
                occupancy_us: p.main_net.sample(rng),
            });
        }
        t += exp_draw(rng, pd_rate_period);
    }

    // PVM daemon: Poisson arrivals; each arrival occupies CPU then network.
    let mut t = exp_draw(rng, p.pvmd_interarrival.mean());
    while t < cfg.duration_us {
        let cpu = p.pvmd.cpu_req.sample(rng);
        trace.push(TraceRecord {
            t_us: t,
            pid: 0,
            class: ProcessClass::PvmDaemon,
            resource: Resource::Cpu,
            occupancy_us: cpu,
        });
        trace.push(TraceRecord {
            t_us: t + cpu,
            pid: 0,
            class: ProcessClass::PvmDaemon,
            resource: Resource::Network,
            occupancy_us: p.pvmd.net_req.sample(rng),
        });
        t += p.pvmd_interarrival.sample(rng);
    }

    // Other user/system processes: independent open CPU and network sources.
    let mut t = exp_draw(rng, p.other_cpu_interarrival.mean());
    while t < cfg.duration_us {
        trace.push(TraceRecord {
            t_us: t,
            pid: 0,
            class: ProcessClass::Other,
            resource: Resource::Cpu,
            occupancy_us: p.other.cpu_req.sample(rng),
        });
        t += p.other_cpu_interarrival.sample(rng);
    }
    let mut t = exp_draw(rng, p.other_net_interarrival.mean());
    while t < cfg.duration_us {
        trace.push(TraceRecord {
            t_us: t,
            pid: 0,
            class: ProcessClass::Other,
            resource: Resource::Network,
            occupancy_us: p.other.net_req.sample(rng),
        });
        t += p.other_net_interarrival.sample(rng);
    }

    trace.sort();
    trace
}

fn exp_draw<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    paradyn_stats::Rv::exp(mean).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradyn_stats::{Summary, SplitMix64};

    fn small_trace(seed: u64) -> Trace {
        let cfg = SynthConfig {
            duration_us: 20.0e6,
            ..Default::default()
        };
        synthesize(&cfg, &mut SplitMix64(seed))
    }

    #[test]
    fn records_sorted_and_within_duration() {
        let t = small_trace(1);
        assert!(!t.is_empty());
        let mut last = 0.0;
        for r in t.records() {
            assert!(r.t_us >= last);
            assert!(r.t_us < 20.0e6);
            assert!(r.occupancy_us >= 0.0);
            last = r.t_us;
        }
    }

    #[test]
    fn all_classes_present() {
        let t = small_trace(2);
        for class in ProcessClass::ALL {
            let any = t.records().iter().any(|r| r.class == class);
            assert!(any, "missing class {class:?}");
        }
    }

    #[test]
    fn app_cpu_stats_match_ground_truth() {
        let t = small_trace(3);
        let cpu = t.occupancies(ProcessClass::Application, Resource::Cpu);
        let s = Summary::of(&cpu);
        assert!((s.mean - 2213.0).abs() / 2213.0 < 0.10, "mean {}", s.mean);
        assert!((s.std_dev - 3034.0).abs() / 3034.0 < 0.25, "std {}", s.std_dev);
    }

    #[test]
    fn pd_arrival_rate_tracks_sampling_period() {
        let t = small_trace(4);
        let n = t.occupancies(ProcessClass::ParadynDaemon, Resource::Cpu).len();
        // 20s at 40ms sampling -> ~500 samples.
        assert!((400..620).contains(&n), "n={n}");
    }

    #[test]
    fn multiple_apps_scale_pd_rate() {
        let cfg = SynthConfig {
            duration_us: 20.0e6,
            n_app: 4,
            ..Default::default()
        };
        let t = synthesize(&cfg, &mut SplitMix64(5));
        let n = t.occupancies(ProcessClass::ParadynDaemon, Resource::Cpu).len();
        assert!((1700..2400).contains(&n), "n={n}");
        // Four distinct app pids.
        let pids: std::collections::HashSet<u32> = t
            .records()
            .iter()
            .filter(|r| r.class == ProcessClass::Application)
            .map(|r| r.pid)
            .collect();
        assert_eq!(pids.len(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_trace(7);
        let b = small_trace(7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.records()[10], b.records()[10]);
    }

    #[test]
    fn no_main_records_when_disabled() {
        let cfg = SynthConfig {
            duration_us: 5.0e6,
            include_main: false,
            ..Default::default()
        };
        let t = synthesize(&cfg, &mut SplitMix64(8));
        assert!(t
            .records()
            .iter()
            .all(|r| r.class != ProcessClass::MainParadyn));
    }
}

//! The ROCC model parameter set — the paper's Table 2.
//!
//! All time quantities are in **microseconds**, matching the paper; the
//! simulator converts to its integer clock at the edges.

use paradyn_stats::Rv;

/// Occupancy-request lengths of one process class.
#[derive(Clone, Copy, Debug)]
pub struct ProcessParams {
    /// Length of a CPU occupancy request (µs).
    pub cpu_req: Rv,
    /// Length of a network occupancy request (µs).
    pub net_req: Rv,
}

/// Full parameterization of the ROCC model for the Paradyn IS
/// (Table 2 of the paper, plus the batch-cost marginals discussed with
/// Figure 19: "more CPU time is also needed to forward a larger batch").
#[derive(Clone, Debug)]
pub struct RoccParams {
    /// Application process: CPU bursts lognormal(2213, 3034),
    /// network exponential(223).
    pub app: ProcessParams,
    /// Paradyn daemon per-forward costs: CPU exponential(267),
    /// network exponential(71). Under BF these are charged once per batch.
    pub pd: ProcessParams,
    /// Marginal Pd CPU cost per sample beyond the first in a batch (µs).
    /// Calibrated so a batch of 32 costs roughly a third of 32 CF forwards,
    /// matching the >60% overhead reduction measured in Section 5.
    pub pd_cpu_per_extra_sample_us: f64,
    /// Marginal network occupancy per extra sample in a batch (µs).
    pub pd_net_per_extra_sample_us: f64,
    /// CPU cost of merging one en-route child message at a non-leaf tree
    /// node (the `D_Pdm,CPU` of eq. 13).
    pub pdm_cpu: Rv,
    /// PVM daemon request lengths: CPU lognormal(294, 206), net exp(58).
    pub pvmd: ProcessParams,
    /// PVM daemon request inter-arrival: exponential(6485).
    pub pvmd_interarrival: Rv,
    /// Other user/system processes: CPU lognormal(367, 819), net exp(92).
    pub other: ProcessParams,
    /// Other-process CPU request inter-arrival: exponential(31485).
    pub other_cpu_interarrival: Rv,
    /// Other-process network request inter-arrival: exponential(5598903).
    pub other_net_interarrival: Rv,
    /// Main Paradyn process CPU burst profile as *measured* — Table 1 row
    /// "Main Paradyn process": lognormal(3208, 3287). These bursts include
    /// all main-process threads (Performance Consultant, UI, Data Manager),
    /// so they parameterize the trace generator, not the per-message cost.
    pub main_cpu: Rv,
    /// Main Paradyn process network occupancy per message — Table 1:
    /// mean 214, st.dev 451.
    pub main_net: Rv,
    /// Main-process CPU cost of *receiving one forwarded message*
    /// (`D_Paradyn,CPU` in the operational analysis). Calibrated so host
    /// utilization tracks the paper's Figures 9/18 (~0.5–30% over the node
    /// sweeps rather than saturating).
    pub main_cpu_per_msg: Rv,
    /// Marginal main-process CPU per extra sample in a received batch (µs).
    pub main_cpu_per_extra_sample_us: f64,
    /// CPU scheduling quantum (µs); Table 2: 10 000.
    pub quantum_us: f64,
    /// How much faster the SMP shared bus moves a message than the NOW
    /// Ethernet (all bus occupancies are divided by this). An SP-2-era
    /// SMP memory bus comfortably outruns 10 Mb/s Ethernet; 4x keeps the
    /// paper's Figure 22 bus-bottleneck onset near 32 CPUs.
    pub smp_bus_speedup: f64,
    /// Capacity of the per-application-process Unix pipe, in samples.
    /// When full, the generating application process blocks (Section
    /// 4.3.3). Default 170 ~ a classic 4 KiB pipe of 24-byte sample
    /// records.
    pub pipe_capacity: usize,
    /// Minimum wire time of one forwarding hop on a contention-free
    /// interconnect (µs): the drawn occupancy is clamped up to this floor.
    /// This is the sharded driver's lookahead lower bound — a cross-node
    /// forward never arrives sooner than `min_forward_us` after it is
    /// sent. Default 5 µs, far below the exp(71) mean hop occupancy, so
    /// the clamp almost never binds.
    pub min_forward_us: f64,
}

impl Default for RoccParams {
    fn default() -> Self {
        RoccParams {
            app: ProcessParams {
                cpu_req: Rv::lognormal_mean_std(2213.0, 3034.0),
                net_req: Rv::exp(223.0),
            },
            pd: ProcessParams {
                cpu_req: Rv::exp(267.0),
                net_req: Rv::exp(71.0),
            },
            pd_cpu_per_extra_sample_us: 60.0,
            pd_net_per_extra_sample_us: 4.0,
            pdm_cpu: Rv::exp(100.0),
            pvmd: ProcessParams {
                cpu_req: Rv::lognormal_mean_std(294.0, 206.0),
                net_req: Rv::exp(58.0),
            },
            pvmd_interarrival: Rv::exp(6_485.0),
            other: ProcessParams {
                cpu_req: Rv::lognormal_mean_std(367.0, 819.0),
                net_req: Rv::exp(92.0),
            },
            other_cpu_interarrival: Rv::exp(31_485.0),
            other_net_interarrival: Rv::exp(5_598_903.0),
            main_cpu: Rv::lognormal_mean_std(3_208.0, 3_287.0),
            main_net: Rv::lognormal_mean_std(214.0, 451.0),
            main_cpu_per_msg: Rv::exp(350.0),
            main_cpu_per_extra_sample_us: 50.0,
            quantum_us: 10_000.0,
            smp_bus_speedup: 4.0,
            pipe_capacity: 170,
            min_forward_us: 5.0,
        }
    }
}

impl RoccParams {
    /// Expected Pd CPU demand of forwarding a batch of `k` samples (µs).
    pub fn pd_cpu_batch_mean_us(&self, k: usize) -> f64 {
        assert!(k >= 1);
        self.pd.cpu_req.mean() + self.pd_cpu_per_extra_sample_us * (k as f64 - 1.0)
    }

    /// Expected network occupancy of forwarding a batch of `k` samples (µs).
    pub fn pd_net_batch_mean_us(&self, k: usize) -> f64 {
        assert!(k >= 1);
        self.pd.net_req.mean() + self.pd_net_per_extra_sample_us * (k as f64 - 1.0)
    }

    /// Expected main-process CPU demand of receiving a batch of `k`
    /// samples (µs).
    pub fn main_cpu_batch_mean_us(&self, k: usize) -> f64 {
        assert!(k >= 1);
        self.main_cpu_per_msg.mean() + self.main_cpu_per_extra_sample_us * (k as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = RoccParams::default();
        assert!((p.app.cpu_req.mean() - 2213.0).abs() < 1e-6);
        assert!((p.app.cpu_req.std_dev() - 3034.0).abs() < 1e-6);
        assert!((p.app.net_req.mean() - 223.0).abs() < 1e-9);
        assert!((p.pd.cpu_req.mean() - 267.0).abs() < 1e-9);
        assert!((p.pd.net_req.mean() - 71.0).abs() < 1e-9);
        assert!((p.pvmd.cpu_req.mean() - 294.0).abs() < 1e-6);
        assert!((p.pvmd_interarrival.mean() - 6485.0).abs() < 1e-9);
        assert!((p.other_net_interarrival.mean() - 5_598_903.0).abs() < 1e-6);
        assert!((p.quantum_us - 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn batch_costs_scale_linearly() {
        let p = RoccParams::default();
        assert!((p.pd_cpu_batch_mean_us(1) - 267.0).abs() < 1e-9);
        let b32 = p.pd_cpu_batch_mean_us(32);
        assert!((b32 - (267.0 + 31.0 * 60.0)).abs() < 1e-9);
        // A batch of 32 must be much cheaper than 32 CF forwards — the
        // mechanism behind the paper's >60% overhead reduction.
        assert!(b32 < 0.5 * 32.0 * 267.0);
    }

    #[test]
    fn batching_gain_is_in_measured_band() {
        // Section 5 measured ~60-70% daemon CPU reduction under BF.
        let p = RoccParams::default();
        let per_sample_bf = p.pd_cpu_batch_mean_us(32) / 32.0;
        let reduction = 1.0 - per_sample_bf / p.pd_cpu_batch_mean_us(1);
        assert!(
            (0.55..0.90).contains(&reduction),
            "BF per-sample reduction {reduction}"
        );
    }
}

//! Exact Mean Value Analysis for closed product-form queueing networks.
//!
//! Section 3 of the paper discusses (and rejects) using MVA for the
//! application workload's CPU utilization, because MVA cannot capture the
//! Pd/application CPU contention coupling. We implement exact single-class
//! MVA anyway: it backs the integration tests that reproduce that argument
//! (MVA utilization is insensitive to the IS knobs) and provides the closed
//! -network throughput bound used as a sanity envelope for the simulator.

/// A queueing center in the closed network.
#[derive(Clone, Copy, Debug)]
pub enum Center {
    /// A single-server FCFS/PS queue with the given service demand (s).
    Queueing(f64),
    /// A pure delay (infinite-server) center with the given demand (s).
    Delay(f64),
}

/// Result of MVA at a population level.
#[derive(Clone, Debug)]
pub struct MvaSolution {
    /// System throughput (jobs/s) at each population `1..=n`.
    pub throughput: Vec<f64>,
    /// Per-center residence times (s) at the final population.
    pub residence_s: Vec<f64>,
    /// Per-center mean queue lengths at the final population.
    pub queue_len: Vec<f64>,
    /// Per-center utilizations at the final population
    /// (`X · D`; for delay centers this is the mean number in service).
    pub utilization: Vec<f64>,
}

/// Exact MVA for `n` statistically identical customers over `centers`.
///
/// # Panics
/// Panics if `n == 0` or `centers` is empty or any demand is negative.
pub fn mva(centers: &[Center], n: usize) -> MvaSolution {
    assert!(n > 0, "population must be positive");
    assert!(!centers.is_empty(), "need at least one center");
    for c in centers {
        let d = match c {
            Center::Queueing(d) | Center::Delay(d) => *d,
        };
        assert!(d >= 0.0, "negative demand");
    }
    let k = centers.len();
    let mut q = vec![0.0_f64; k];
    let mut throughput = Vec::with_capacity(n);
    let mut r = vec![0.0_f64; k];
    for _pop in 1..=n {
        for (i, c) in centers.iter().enumerate() {
            r[i] = match c {
                Center::Queueing(d) => d * (1.0 + q[i]),
                Center::Delay(d) => *d,
            };
        }
        let total_r: f64 = r.iter().sum();
        let x = _pop as f64 / total_r;
        for i in 0..k {
            q[i] = x * r[i];
        }
        throughput.push(x);
    }
    let x = *throughput.last().expect("n >= 1");
    let utilization = centers
        .iter()
        .map(|c| match c {
            Center::Queueing(d) | Center::Delay(d) => x * d,
        })
        .collect();
    MvaSolution {
        throughput,
        residence_s: r,
        queue_len: q,
        utilization,
    }
}

/// The application-workload closed model of the paper: one CPU center and
/// one network center per node, `n_app` customers. Returns CPU utilization.
pub fn app_cpu_utilization_mva(cpu_demand_s: f64, net_demand_s: f64, n_app: usize) -> f64 {
    let sol = mva(
        &[Center::Queueing(cpu_demand_s), Center::Queueing(net_demand_s)],
        n_app,
    );
    sol.utilization[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_customer_single_queue() {
        let sol = mva(&[Center::Queueing(0.1)], 1);
        assert!((sol.throughput[0] - 10.0).abs() < 1e-9);
        assert!((sol.utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interactive_system_textbook_case() {
        // Classic: think time 18s (delay), two queueing centers 0.05s and
        // 0.03s visits folded into demands. Bottleneck bound: X <= 1/0.05.
        let centers = [
            Center::Delay(18.0),
            Center::Queueing(0.05),
            Center::Queueing(0.03),
        ];
        let sol = mva(&centers, 100);
        let x = *sol.throughput.last().unwrap();
        assert!(x <= 1.0 / 0.05 + 1e-9);
        // Below saturation (N* = (18+0.08)/0.05 ≈ 361) the asymptote is
        // X ≈ N/(Z+R): with 100 users X ≈ 5.5.
        assert!((x - 100.0 / 18.08).abs() < 0.1, "x={x}");
        // Push past N*: the bottleneck saturates.
        let sol = mva(&centers, 800);
        assert!(sol.utilization[1] > 0.95);
    }

    #[test]
    fn throughput_monotone_in_population() {
        let centers = [Center::Queueing(0.01), Center::Queueing(0.02)];
        let sol = mva(&centers, 20);
        for w in sol.throughput.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        // Asymptote 1/0.02 = 50.
        assert!(*sol.throughput.last().unwrap() <= 50.0 + 1e-9);
    }

    #[test]
    fn balanced_two_center_exact_value() {
        // For two identical queueing centers with demand D and n=2 the
        // exact MVA gives X = 2/(3D)... iteration: n=1: R=2D, X=1/(2D),
        // q=1/2 each; n=2: R_i = D(1.5), total 3D, X=2/(3D).
        let d = 0.1;
        let sol = mva(&[Center::Queueing(d), Center::Queueing(d)], 2);
        assert!((sol.throughput[1] - 2.0 / (3.0 * d)).abs() < 1e-12);
    }

    #[test]
    fn paper_argument_mva_insensitive_to_is_knobs() {
        // The paper's reason for dropping MVA: application CPU utilization
        // from MVA does not vary with sampling period or batch size (those
        // aren't in the closed model at all).
        let u = app_cpu_utilization_mva(2213e-6, 223e-6, 1);
        // One customer alternating: U_cpu = D_cpu/(D_cpu+D_net).
        assert!((u - 2213.0 / 2436.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zero_population_panics() {
        mva(&[Center::Queueing(0.1)], 0);
    }
}

//! Operational analysis of the SMP case — equations (7)–(12)
//! (Section 3.2). The CPUs are pooled: every process's CPU demand is
//! divided by the number of CPUs `n`; daemons and the main process share
//! the pool, and all message passing crosses a shared bus.
//!
//! Note the paper's SMP arrival rate additionally multiplies by the daemon
//! count (its equation below eq. 6): `λ = apps · pds / (period · batch)`.
//! We implement the published formula; its effect is that adding daemons
//! raises modelled IS load, which the simulation (Figures 22–24) probes
//! more faithfully.

use crate::inputs::{Demands, Knobs};
use crate::laws::{clamp_util, open_residence, utilization};

/// Metrics of the paper's SMP plots (Figures 12–13).
#[derive(Clone, Copy, Debug)]
pub struct SmpMetrics {
    /// Aggregate daemon forward-operation arrival rate λ (per s).
    pub lambda: f64,
    /// `µ_Pd,CPU`, eq. (7) — per-daemon share of the CPU pool.
    pub pd_cpu_util: f64,
    /// `µ_Paradyn,CPU`, eq. (8).
    pub main_cpu_util: f64,
    /// `µ_IS,CPU`, eq. (9) — pooled IS utilization.
    pub is_cpu_util: f64,
    /// `µ_Application,CPU`, eq. (10).
    pub app_cpu_util: f64,
    /// Bus utilization by daemon forwards, eq. (11).
    pub bus_util: f64,
    /// Monitoring latency per sample, eq. (12) — seconds.
    pub latency_s: f64,
}

/// Evaluate equations (7)–(12). `k.nodes` is the CPU count `n`;
/// `k.apps_per_node` is interpreted as the total application-process count
/// (the paper sets apps = nodes in Section 4.3, but varies them separately
/// in Figure 24).
pub fn smp_metrics(k: &Knobs, d: &Demands) -> SmpMetrics {
    let n = k.nodes as f64;
    let pds = k.pds as f64;
    let lambda = k.lambda_smp();
    // (7) daemon CPU utilization over the pooled CPUs.
    let pd_cpu = utilization(lambda, d.pd_cpu_s / n);
    // (8) main process CPU utilization.
    let main_cpu = utilization(lambda, d.main_cpu_s / n);
    // (9) pooled IS utilization.
    let is_cpu = (pds * pd_cpu + main_cpu) / (pds + 1.0);
    // (11) bus utilization.
    let bus = utilization(lambda, d.pd_net_s);
    // (12) latency through CPU pool then bus.
    let latency = open_residence(d.pd_cpu_s / n, pd_cpu) + open_residence(d.pd_net_s, bus);
    SmpMetrics {
        lambda,
        pd_cpu_util: clamp_util(pd_cpu),
        main_cpu_util: clamp_util(main_cpu),
        is_cpu_util: clamp_util(is_cpu),
        app_cpu_util: clamp_util(1.0 - is_cpu),
        bus_util: clamp_util(bus),
        latency_s: latency,
    }
}

/// Sweep the sampling period (ms) for a set of daemon counts —
/// the Figure 12 family of curves.
pub fn sweep_period_by_pds(
    base: &Knobs,
    d: &Demands,
    periods_ms: &[f64],
    pds: &[usize],
) -> Vec<(usize, Vec<(f64, SmpMetrics)>)> {
    pds.iter()
        .map(|&p| {
            let series = periods_ms
                .iter()
                .map(|&ms| {
                    let k = Knobs {
                        sampling_period_s: ms * 1e-3,
                        pds: p,
                        ..*base
                    };
                    (ms, smp_metrics(&k, d))
                })
                .collect();
            (p, series)
        })
        .collect()
}

/// Sweep the application-process count for a set of daemon counts —
/// Figure 13.
pub fn sweep_apps_by_pds(
    base: &Knobs,
    d: &Demands,
    apps: &[usize],
    pds: &[usize],
) -> Vec<(usize, Vec<(usize, SmpMetrics)>)> {
    pds.iter()
        .map(|&p| {
            let series = apps
                .iter()
                .map(|&a| {
                    let k = Knobs {
                        apps_per_node: a,
                        pds: p,
                        ..*base
                    };
                    (a, smp_metrics(&k, d))
                })
                .collect();
            (p, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradyn_workload::RoccParams;

    fn demands() -> Demands {
        Demands::from_params(&RoccParams::default(), 1, false)
    }

    fn base() -> Knobs {
        Knobs {
            nodes: 16,
            apps_per_node: 32,
            ..Default::default()
        }
    }

    #[test]
    fn hand_calculation_at_typical_point() {
        // n=16 CPUs, 32 apps, 1 Pd, 40ms, CF.
        let m = smp_metrics(&base(), &demands());
        // λ = 32/0.04 = 800/s.
        assert!((m.lambda - 800.0).abs() < 1e-9);
        // µ_Pd = 800 * 267e-6/16 = 1.335%.
        assert!((m.pd_cpu_util - 0.01335).abs() < 1e-9);
        // Bus = 800 * 71e-6 = 5.68%.
        assert!((m.bus_util - 0.0568).abs() < 1e-9);
        assert!(m.app_cpu_util > 0.95);
    }

    #[test]
    fn more_cpus_dilute_is_utilization() {
        let d = demands();
        let few = smp_metrics(&Knobs { nodes: 2, ..base() }, &d);
        let many = smp_metrics(&Knobs { nodes: 32, ..base() }, &d);
        assert!(few.pd_cpu_util > many.pd_cpu_util);
        assert!(few.is_cpu_util > many.is_cpu_util);
    }

    #[test]
    fn paper_smp_lambda_scales_with_daemons() {
        let d = demands();
        let one = smp_metrics(&base(), &d);
        let four = smp_metrics(&Knobs { pds: 4, ..base() }, &d);
        assert!((four.lambda / one.lambda - 4.0).abs() < 1e-9);
        assert!(four.bus_util > one.bus_util);
    }

    #[test]
    fn bf_lowers_is_utilization_and_latency() {
        let d = demands();
        let cf = smp_metrics(&base(), &d);
        let bf = smp_metrics(&Knobs { batch: 128, ..base() }, &d);
        assert!(bf.is_cpu_util < cf.is_cpu_util);
        assert!(bf.latency_s <= cf.latency_s);
        assert!(bf.app_cpu_util > cf.app_cpu_util);
    }

    #[test]
    fn small_periods_saturate_bus_first() {
        // Figure 12a: under CF, 1ms sampling with 32 apps gives
        // λ = 32 000/s; bus util = 32 000 * 71e-6 > 1 (saturated).
        let d = demands();
        let m = smp_metrics(
            &Knobs {
                sampling_period_s: 0.001,
                ..base()
            },
            &d,
        );
        assert_eq!(m.bus_util, 1.0);
        assert!(m.latency_s.is_infinite());
    }

    #[test]
    fn sweep_shapes() {
        let d = demands();
        let fam = sweep_period_by_pds(&base(), &d, &[1.0, 10.0, 40.0, 64.0], &[1, 2, 3, 4]);
        assert_eq!(fam.len(), 4);
        for (_, series) in &fam {
            // IS utilization decreases with longer sampling period.
            let first = series.first().unwrap().1.is_cpu_util;
            let last = series.last().unwrap().1.is_cpu_util;
            assert!(first >= last);
        }
        let fam = sweep_apps_by_pds(&base(), &d, &[1, 2, 4, 6], &[1, 4]);
        for (_, series) in &fam {
            let first = series.first().unwrap().1.is_cpu_util;
            let last = series.last().unwrap().1.is_cpu_util;
            assert!(last >= first);
        }
    }
}

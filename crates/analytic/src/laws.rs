//! Operational laws (Denning & Buzen; Jain ch. 33) used by the paper's
//! "back-of-the-envelope" Section 3 analysis: the utilization law, the
//! forced-flow law, Little's law, and the open-server residence-time
//! formula under flow balance.
//!
//! Conventions: rates are per second, demands in seconds, utilizations
//! dimensionless in `[0, ∞)` (a value ≥ 1 means the flow-balance assumption
//! is violated — the paper acknowledges this can happen; residence times
//! are then reported as infinite).

/// Utilization law: `U = X · D` (throughput times service demand).
#[inline]
pub fn utilization(throughput_per_s: f64, demand_s: f64) -> f64 {
    throughput_per_s * demand_s
}

/// Little's law: `N = X · R`.
#[inline]
pub fn littles_n(throughput_per_s: f64, residence_s: f64) -> f64 {
    throughput_per_s * residence_s
}

/// Forced-flow law: the system throughput seen at a device visited `v`
/// times per job is `X_dev = v · X_sys`.
#[inline]
pub fn forced_flow(system_throughput_per_s: f64, visits: f64) -> f64 {
    system_throughput_per_s * visits
}

/// Residence time at an open single-queue server under flow balance:
/// `R = D / (1 − U)`. Returns `+∞` when the server is saturated (`U ≥ 1`),
/// which is how the paper's formulas degenerate outside their validity
/// region.
#[inline]
pub fn open_residence(demand_s: f64, utilization: f64) -> f64 {
    if utilization >= 1.0 {
        f64::INFINITY
    } else {
        demand_s / (1.0 - utilization)
    }
}

/// Clamp a computed utilization into `[0, 1]` for *reporting* (plots show
/// percentages); analysis code should test the raw value for saturation
/// first.
#[inline]
pub fn clamp_util(u: f64) -> f64 {
    u.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_law() {
        // 25 requests/s, 267us each -> 0.67% busy.
        let u = utilization(25.0, 267e-6);
        assert!((u - 0.006675).abs() < 1e-9);
    }

    #[test]
    fn littles_law() {
        assert!((littles_n(100.0, 0.05) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn forced_flow_law() {
        assert!((forced_flow(10.0, 3.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn residence_grows_toward_saturation() {
        let d = 1e-3;
        assert!((open_residence(d, 0.0) - d).abs() < 1e-15);
        assert!((open_residence(d, 0.5) - 2.0 * d).abs() < 1e-15);
        assert!(open_residence(d, 0.999) > 0.9);
        assert!(open_residence(d, 1.0).is_infinite());
        assert!(open_residence(d, 1.7).is_infinite());
    }

    #[test]
    fn clamp_for_reporting() {
        assert_eq!(clamp_util(-0.1), 0.0);
        assert_eq!(clamp_util(0.42), 0.42);
        assert_eq!(clamp_util(2.5), 1.0);
    }
}

#![warn(missing_docs)]
//! # paradyn-analytic — operational analysis of the Paradyn IS ROCC model
//!
//! Section 3 of the paper derives "back-of-the-envelope" metrics for the
//! instrumentation system with operational laws under a flow-balance
//! assumption. This crate implements those calculations:
//!
//! * [`laws`] — the operational laws themselves;
//! * [`inputs`] — service demands ([`Demands`]) and experiment knobs
//!   ([`Knobs`], eq. 1's arrival rate);
//! * [`now`] — the NOW case, equations (1)–(6), Figures 9–10;
//! * [`smp`] — the SMP case, equations (7)–(12), Figures 12–13;
//! * [`mpp`] — the MPP case with direct and binary-tree forwarding,
//!   equations (13)–(16), Figures 14–15;
//! * [`mva`] — exact Mean Value Analysis (the approach the paper considers
//!   and rejects for application CPU utilization — kept as an ablation and
//!   sanity envelope);
//! * [`bounds`] — asymptotic bottleneck bounds bracketing any simulation
//!   of the same demands.
//!
//! The analytic results are deliberately approximate; the paper uses them
//! as an intuitive cross-check on the simulation, and the integration tests
//! of this workspace do the same in reverse.

pub mod bounds;
pub mod inputs;
pub mod laws;
pub mod mpp;
pub mod mva;
pub mod now;
pub mod smp;

pub use bounds::{closed_bounds, open_saturation_rate, ClosedBounds};
pub use inputs::{Demands, Knobs};
pub use mpp::{mpp_metrics, Forwarding, MppMetrics};
pub use mva::{app_cpu_utilization_mva, mva, Center, MvaSolution};
pub use now::{now_metrics, NowMetrics};
pub use smp::{smp_metrics, SmpMetrics};

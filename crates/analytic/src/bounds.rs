//! Asymptotic (bottleneck) bounds on closed-network performance
//! (Denning & Buzen; Jain ch. 33.4). The paper uses flow-balance
//! operational laws; these bounds give the envelope that any simulation of
//! the same demands must respect — the workspace's integration tests use
//! them as a sanity corridor around the simulator.

/// Bound summary for a closed network with `n` customers.
#[derive(Clone, Copy, Debug)]
pub struct ClosedBounds {
    /// Throughput upper bound: `min(1/D_max, n/(D_total + Z))` (jobs/s).
    pub throughput_max: f64,
    /// Throughput lower bound: `n / (n·D_total + Z)` — pessimistic
    /// (all queueing at one station).
    pub throughput_min: f64,
    /// Response-time lower bound: `max(D_total, n·D_max − Z)` (s).
    pub response_min_s: f64,
    /// The population at which the two upper-bound asymptotes cross,
    /// `n* = (D_total + Z)/D_max`.
    pub knee_population: f64,
}

/// Compute the classic asymptotic bounds for service demands `demands_s`
/// (per-station total demands, seconds) and think time `z_s`.
///
/// # Panics
/// Panics on an empty demand list, non-positive demands, or `n == 0`.
pub fn closed_bounds(demands_s: &[f64], z_s: f64, n: usize) -> ClosedBounds {
    assert!(!demands_s.is_empty(), "need at least one station");
    assert!(n > 0, "population must be positive");
    assert!(z_s >= 0.0);
    let mut d_total = 0.0;
    let mut d_max: f64 = 0.0;
    for &d in demands_s {
        assert!(d > 0.0, "demands must be positive");
        d_total += d;
        d_max = d_max.max(d);
    }
    let nf = n as f64;
    ClosedBounds {
        throughput_max: (1.0 / d_max).min(nf / (d_total + z_s)),
        throughput_min: nf / (nf * d_total + z_s),
        response_min_s: d_total.max(nf * d_max - z_s),
        knee_population: (d_total + z_s) / d_max,
    }
}

/// Open-network stability bound: the arrival rate beyond which some
/// station saturates, `λ_max = 1/D_max` (per second).
pub fn open_saturation_rate(demands_s: &[f64]) -> f64 {
    assert!(!demands_s.is_empty());
    let d_max = demands_s
        .iter()
        .fold(0.0f64, |m, &d| m.max(d));
    assert!(d_max > 0.0);
    1.0 / d_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::{mva, Center};

    #[test]
    fn bounds_bracket_exact_mva() {
        let demands = [2213e-6, 223e-6];
        for n in [1usize, 2, 4, 16] {
            let b = closed_bounds(&demands, 0.0, n);
            let sol = mva(
                &[Center::Queueing(demands[0]), Center::Queueing(demands[1])],
                n,
            );
            let x = *sol.throughput.last().expect("population >= 1");
            assert!(
                x <= b.throughput_max + 1e-9,
                "n={n}: X={x} above upper bound {}",
                b.throughput_max
            );
            assert!(
                x >= b.throughput_min - 1e-9,
                "n={n}: X={x} below lower bound {}",
                b.throughput_min
            );
        }
    }

    #[test]
    fn single_customer_bounds_are_tight() {
        let demands = [1e-3, 2e-3];
        let b = closed_bounds(&demands, 0.0, 1);
        // With one customer there is no queueing: X = 1/D_total exactly,
        // and both bounds coincide there.
        assert!((b.throughput_min - 1.0 / 3e-3).abs() < 1e-9);
        assert!((b.throughput_max - 1.0 / 3e-3).abs() < 1e-9);
        assert!((b.response_min_s - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn knee_marks_saturation_onset() {
        // App workload: knee at (2213+223)/2213 = 1.1 customers — the CPU
        // saturates almost immediately, which is why one application
        // process already keeps a node ~91% busy.
        let b = closed_bounds(&[2213e-6, 223e-6], 0.0, 4);
        assert!((b.knee_population - 2436.0 / 2213.0).abs() < 1e-9);
        assert!((b.throughput_max - 1.0 / 2213e-6).abs() < 1e-6);
    }

    #[test]
    fn think_time_shifts_the_knee() {
        let without = closed_bounds(&[1e-3], 0.0, 10);
        let with = closed_bounds(&[1e-3], 9e-3, 10);
        assert!(with.knee_population > without.knee_population);
        assert!((with.knee_population - 10.0).abs() < 1e-9);
    }

    #[test]
    fn open_saturation_is_bottleneck_rate() {
        // Paradyn daemon: CPU 267us, net 71us -> saturates at ~3745/s.
        let rate = open_saturation_rate(&[267e-6, 71e-6]);
        assert!((rate - 1.0 / 267e-6).abs() < 1e-6);
    }
}

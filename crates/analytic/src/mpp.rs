//! Operational analysis of the MPP case — Section 3.3.
//!
//! Direct forwarding reuses the NOW equations (1)–(6) on a dedicated
//! network. Binary-tree forwarding adds merge work at non-leaf daemons:
//! with `n` nodes (a power of two), `n/2` leaves see no en-route traffic,
//! `n/2 − 1` interior nodes merge two children's streams, and one node
//! merges a single child's (equations 13–16).
//!
//! Equation (15) as printed contains `λ·D_Pd,CPU` inside the interior-node
//! term; dimensional analysis (it is a *network* utilization) shows it must
//! be `λ·D_Pd,Network`, and we implement the corrected form.

use crate::inputs::{Demands, Knobs};
use crate::laws::{clamp_util, open_residence, utilization};
use crate::now::{now_metrics, NowMetrics};

/// Forwarding configuration of the MPP study (Figure 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Forwarding {
    /// Every daemon sends straight to the main process.
    Direct,
    /// Daemons forward along a binary tree, merging en route.
    BinaryTree,
}

/// Metrics of the paper's MPP plots (Figures 14–15).
#[derive(Clone, Copy, Debug)]
pub struct MppMetrics {
    /// Per-node daemon forward arrival rate λ (per s).
    pub lambda: f64,
    /// Average per-node daemon CPU utilization (eq. 2 or 13).
    pub pd_cpu_util: f64,
    /// Average per-node network utilization (eq. 3 or corrected 15).
    pub pd_net_util: f64,
    /// Main-process CPU utilization (eq. 5 or 14).
    pub main_cpu_util: f64,
    /// Application CPU utilization per node (eq. 6).
    pub app_cpu_util: f64,
    /// Monitoring latency per sample (eq. 4 or 16) — seconds.
    pub latency_s: f64,
}

impl From<NowMetrics> for MppMetrics {
    fn from(m: NowMetrics) -> Self {
        MppMetrics {
            lambda: m.lambda,
            pd_cpu_util: m.pd_cpu_util,
            pd_net_util: m.pd_net_util,
            main_cpu_util: m.main_cpu_util,
            app_cpu_util: m.app_cpu_util,
            latency_s: m.latency_s,
        }
    }
}

/// Evaluate the MPP model for the chosen forwarding configuration.
///
/// For `Direct`, the network term uses per-node (contention-free, dedicated
/// links) rather than shared-medium utilization: each node's link carries
/// only its own `λ` (the paper's "contention-free network" assumption in
/// Section 4.4).
pub fn mpp_metrics(k: &Knobs, d: &Demands, fwd: Forwarding) -> MppMetrics {
    match fwd {
        Forwarding::Direct => {
            let mut m: MppMetrics = now_metrics(k, d).into();
            // Dedicated per-node links: utilization of a node's own link.
            let lambda = k.lambda_now();
            let link = utilization(lambda, d.pd_net_s);
            m.pd_net_util = clamp_util(link);
            m.latency_s =
                open_residence(d.pd_cpu_s, m.pd_cpu_util) + open_residence(d.pd_net_s, link);
            m
        }
        Forwarding::BinaryTree => tree_metrics(k, d),
    }
}

fn tree_metrics(k: &Knobs, d: &Demands) -> MppMetrics {
    let n = k.nodes as f64;
    assert!(k.nodes >= 2, "tree forwarding needs at least 2 nodes");
    let lambda = k.lambda_now();
    let leaves = n / 2.0;
    let interior2 = (n / 2.0 - 1.0).max(0.0); // nodes with two children
    // (13) average per-node daemon CPU utilization.
    let pd_cpu = (leaves * lambda * d.pd_cpu_s
        + interior2 * (lambda * d.pd_cpu_s + 2.0 * lambda * d.pdm_cpu_s)
        + lambda * d.pdm_cpu_s)
        / n
        + 0.0;
    // (15, corrected) average per-node network utilization: interior nodes
    // forward their own plus both children's merged streams.
    let pd_net = (leaves * lambda * d.pd_net_s
        + interior2 * (lambda * d.pd_net_s + 2.0 * lambda * d.pd_net_s)
        + lambda * d.pd_net_s)
        / n;
    // (14) the root's parent — the main process — receives two streams.
    let main_cpu = utilization(2.0 * lambda, d.main_cpu_s);
    // (16) latency includes the merge work on the daemon CPU.
    let latency = open_residence(d.pd_cpu_s + d.pdm_cpu_s, pd_cpu)
        + open_residence(d.pd_net_s, pd_net);
    MppMetrics {
        lambda,
        pd_cpu_util: clamp_util(pd_cpu),
        pd_net_util: clamp_util(pd_net),
        main_cpu_util: clamp_util(main_cpu),
        app_cpu_util: clamp_util(1.0 - pd_cpu),
        latency_s: latency,
    }
}

/// Sweep sampling period (ms) for both forwarding configurations —
/// Figure 14.
pub fn sweep_period(
    base: &Knobs,
    d: &Demands,
    periods_ms: &[f64],
) -> Vec<(f64, MppMetrics, MppMetrics)> {
    periods_ms
        .iter()
        .map(|&ms| {
            let k = Knobs {
                sampling_period_s: ms * 1e-3,
                ..*base
            };
            (
                ms,
                mpp_metrics(&k, d, Forwarding::Direct),
                mpp_metrics(&k, d, Forwarding::BinaryTree),
            )
        })
        .collect()
}

/// Sweep node count for both forwarding configurations — Figure 15.
pub fn sweep_nodes(
    base: &Knobs,
    d: &Demands,
    nodes: &[usize],
) -> Vec<(usize, MppMetrics, MppMetrics)> {
    nodes
        .iter()
        .map(|&n| {
            let k = Knobs { nodes: n, ..*base };
            (
                n,
                mpp_metrics(&k, d, Forwarding::Direct),
                mpp_metrics(&k, d, Forwarding::BinaryTree),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradyn_workload::RoccParams;

    fn demands() -> Demands {
        Demands::from_params(&RoccParams::default(), 32, false)
    }

    fn base() -> Knobs {
        Knobs {
            nodes: 256,
            batch: 32,
            ..Default::default()
        }
    }

    #[test]
    fn direct_equals_now_daemon_cpu() {
        let d = demands();
        let m = mpp_metrics(&base(), &d, Forwarding::Direct);
        // λ = 1/(0.04*32) = 0.78125/s; µ = λ*267e-6.
        assert!((m.lambda - 0.78125).abs() < 1e-9);
        assert!((m.pd_cpu_util - 0.78125 * 267e-6).abs() < 1e-12);
    }

    #[test]
    fn tree_adds_merge_overhead_to_daemon_cpu() {
        // Figure 27's key shape: tree forwarding has *higher* per-node Pd
        // CPU (merge work) than direct.
        let d = demands();
        let direct = mpp_metrics(&base(), &d, Forwarding::Direct);
        let tree = mpp_metrics(&base(), &d, Forwarding::BinaryTree);
        assert!(tree.pd_cpu_util > direct.pd_cpu_util);
        // And correspondingly lower app CPU.
        assert!(tree.app_cpu_util < direct.app_cpu_util);
    }

    #[test]
    fn tree_main_process_sees_two_streams() {
        let d = demands();
        let direct = mpp_metrics(&base(), &d, Forwarding::Direct);
        let tree = mpp_metrics(&base(), &d, Forwarding::BinaryTree);
        // Direct: 256 streams; tree: 2 streams — main CPU far lower.
        assert!(tree.main_cpu_util < direct.main_cpu_util);
        let expect = 2.0 * direct.lambda * d.main_cpu_s;
        assert!((tree.main_cpu_util - expect).abs() < 1e-12);
    }

    #[test]
    fn eq13_limit_cases() {
        // With n=2: one leaf (λm=0) and one single-child node (λm=λ);
        // average = [λ·Dpd + λ·Dpdm]/2... the formula gives
        // (1·λDpd + 0·(...) + λDpdm)/2.
        let d = demands();
        let k = Knobs {
            nodes: 2,
            batch: 32,
            ..Default::default()
        };
        let m = mpp_metrics(&k, &d, Forwarding::BinaryTree);
        let lambda = k.lambda_now();
        let expect = (lambda * d.pd_cpu_s + lambda * d.pdm_cpu_s) / 2.0;
        assert!((m.pd_cpu_util - expect).abs() < 1e-12);
    }

    #[test]
    fn period_sweep_monotone_in_overhead() {
        let d = demands();
        let s = sweep_period(&base(), &d, &[1.0, 4.0, 16.0, 64.0]);
        for w in s.windows(2) {
            // Longer period -> lower overhead, both configurations.
            assert!(w[1].1.pd_cpu_util <= w[0].1.pd_cpu_util);
            assert!(w[1].2.pd_cpu_util <= w[0].2.pd_cpu_util);
        }
    }

    #[test]
    fn node_sweep_direct_daemon_flat_tree_grows() {
        let d = demands();
        let s = sweep_nodes(&base(), &d, &[2, 16, 128, 256]);
        let first_direct = s[0].1.pd_cpu_util;
        let last_direct = s.last().unwrap().1.pd_cpu_util;
        assert!((first_direct - last_direct).abs() < 1e-12);
        // Tree per-node overhead rises toward the 2-children asymptote.
        assert!(s.last().unwrap().2.pd_cpu_util > s[0].2.pd_cpu_util);
    }
}

//! Operational analysis of the NOW case — equations (1)–(6) of the paper
//! (Section 3.1). The daemon workload is treated as an open (transaction)
//! class under flow balance; the application CPU share is obtained
//! indirectly as `1 − µ_Pd,CPU` (equation 6), which the paper notes is an
//! over-estimate because it ignores network waiting.

use crate::inputs::{Demands, Knobs};
use crate::laws::{clamp_util, open_residence, utilization};

/// The four metrics of the paper's NOW plots (Figures 9–10).
#[derive(Clone, Copy, Debug)]
pub struct NowMetrics {
    /// Per-node daemon forward-operation arrival rate λ (per s), eq. (1).
    pub lambda: f64,
    /// `µ_Pd,CPU` per node, eq. (2) — fraction.
    pub pd_cpu_util: f64,
    /// `µ_Pd,Network` across the shared network, eq. (3) — fraction.
    pub pd_net_util: f64,
    /// `µ_Paradyn,CPU` of the main process host, eq. (5) — fraction.
    pub main_cpu_util: f64,
    /// `µ_Application,CPU` per node, eq. (6) — fraction.
    pub app_cpu_util: f64,
    /// Monitoring latency per sample R(λ), eq. (4) — seconds
    /// (`+∞` when a resource saturates).
    pub latency_s: f64,
}

/// Evaluate equations (1)–(6).
pub fn now_metrics(k: &Knobs, d: &Demands) -> NowMetrics {
    let lambda = k.lambda_now();
    let n = k.nodes as f64;
    // (2) per-node daemon CPU utilization.
    let pd_cpu = utilization(lambda, d.pd_cpu_s);
    // Forced flow: all n nodes forward into the shared network.
    let pd_net = utilization(n * lambda, d.pd_net_s);
    // (5) main process CPU sees the aggregate arrival stream.
    let main_cpu = utilization(n * lambda, d.main_cpu_s);
    // (4) monitoring latency: residence in daemon CPU then network.
    let latency = open_residence(d.pd_cpu_s, pd_cpu) + open_residence(d.pd_net_s, pd_net);
    NowMetrics {
        lambda,
        pd_cpu_util: clamp_util(pd_cpu),
        pd_net_util: clamp_util(pd_net),
        main_cpu_util: clamp_util(main_cpu),
        app_cpu_util: clamp_util(1.0 - pd_cpu),
        latency_s: latency,
    }
}

/// Series helper: sweep the number of nodes (Figure 9a's x-axis).
pub fn sweep_nodes(base: &Knobs, d: &Demands, nodes: &[usize]) -> Vec<(usize, NowMetrics)> {
    nodes
        .iter()
        .map(|&n| {
            let k = Knobs { nodes: n, ..*base };
            (n, now_metrics(&k, d))
        })
        .collect()
}

/// Series helper: sweep the sampling period in ms (Figure 9b).
pub fn sweep_period(base: &Knobs, d: &Demands, periods_ms: &[f64]) -> Vec<(f64, NowMetrics)> {
    periods_ms
        .iter()
        .map(|&ms| {
            let k = Knobs {
                sampling_period_s: ms * 1e-3,
                ..*base
            };
            (ms, now_metrics(&k, d))
        })
        .collect()
}

/// Series helper: sweep the batch size (Figure 10). `demands` is
/// re-evaluated per batch so the marginal-cost ablation works.
pub fn sweep_batch(
    base: &Knobs,
    demands_of: impl Fn(usize) -> Demands,
    batches: &[usize],
) -> Vec<(usize, NowMetrics)> {
    batches
        .iter()
        .map(|&b| {
            let k = Knobs { batch: b, ..*base };
            (b, now_metrics(&k, &demands_of(b)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradyn_workload::RoccParams;

    fn demands() -> Demands {
        Demands::from_params(&RoccParams::default(), 1, false)
    }

    #[test]
    fn typical_point_matches_hand_calculation() {
        // 40ms sampling, CF, 1 app/node, 8 nodes.
        let k = Knobs::default();
        let m = now_metrics(&k, &demands());
        assert!((m.lambda - 25.0).abs() < 1e-9);
        // µ_Pd,CPU = 25 * 267e-6 = 0.6675%.
        assert!((m.pd_cpu_util - 0.006675).abs() < 1e-9);
        // µ_Pd,Net = 8 * 25 * 71e-6 = 1.42%.
        assert!((m.pd_net_util - 0.0142).abs() < 1e-9);
        // Latency ~ 267us/(1-0.0067) + 71us/(1-0.0142) ≈ 3.4e-4 s —
        // the value on Figure 9's latency axis.
        assert!((m.latency_s - 3.4e-4).abs() < 0.2e-4, "{}", m.latency_s);
        assert!((m.app_cpu_util - (1.0 - 0.006675)).abs() < 1e-9);
    }

    #[test]
    fn bf_reduces_daemon_utilization_by_batch_factor() {
        // Paper analytic model: λ scales as 1/batch, so µ_Pd does too.
        let cf = now_metrics(&Knobs::default(), &demands());
        let bf = now_metrics(
            &Knobs {
                batch: 128,
                ..Default::default()
            },
            &demands(),
        );
        assert!((cf.pd_cpu_util / bf.pd_cpu_util - 128.0).abs() < 1e-6);
    }

    #[test]
    fn latency_explodes_at_small_periods() {
        // Figure 9b: latency rises steeply as the period shrinks.
        let d = demands();
        let slow = now_metrics(
            &Knobs {
                sampling_period_s: 0.064,
                ..Default::default()
            },
            &d,
        );
        let fast = now_metrics(
            &Knobs {
                sampling_period_s: 0.001,
                ..Default::default()
            },
            &d,
        );
        assert!(fast.latency_s > slow.latency_s);
        // At 1ms with 8 nodes the shared network runs at 8*1000*71e-6 = 57%.
        assert!(fast.pd_net_util > 0.5);
    }

    #[test]
    fn node_sweep_grows_network_and_main_util_only() {
        let d = demands();
        let s = sweep_nodes(&Knobs::default(), &d, &[2, 8, 32]);
        // Pd CPU per node independent of n.
        assert!((s[0].1.pd_cpu_util - s[2].1.pd_cpu_util).abs() < 1e-12);
        // Network and main-process utilizations grow with n.
        assert!(s[2].1.pd_net_util > s[0].1.pd_net_util);
        assert!(s[2].1.main_cpu_util > s[0].1.main_cpu_util);
    }

    #[test]
    fn batch_sweep_knee_with_marginals() {
        // With marginal batch costs, the gain saturates: going 1->8 helps a
        // lot; 64->128 helps little (the Figure 19 knee).
        let p = RoccParams::default();
        let base = Knobs {
            sampling_period_s: 0.001,
            ..Default::default()
        };
        let s = sweep_batch(
            &base,
            |b| Demands::from_params(&p, b, true),
            &[1, 8, 64, 128],
        );
        let u: Vec<f64> = s.iter().map(|(_, m)| m.pd_cpu_util).collect();
        let gain_1_8 = u[0] / u[1];
        let gain_64_128 = u[2] / u[3];
        assert!(gain_1_8 > 2.0, "gain_1_8={gain_1_8}");
        assert!(gain_64_128 < 1.3, "gain_64_128={gain_64_128}");
    }

    #[test]
    fn saturated_network_reports_infinite_latency() {
        let d = demands();
        let k = Knobs {
            sampling_period_s: 0.0001,
            nodes: 64,
            ..Default::default()
        };
        let m = now_metrics(&k, &d);
        assert!(m.latency_s.is_infinite());
        assert_eq!(m.pd_net_util, 1.0); // clamped for reporting
    }
}

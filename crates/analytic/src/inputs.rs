//! Shared inputs for the operational-analysis calculations.

use paradyn_workload::RoccParams;

/// Service demands (seconds) extracted from a [`RoccParams`], the `D_...`
/// quantities of the paper's equations.
#[derive(Clone, Copy, Debug)]
pub struct Demands {
    /// `D_Pd,CPU`: daemon CPU demand per forward operation (s).
    pub pd_cpu_s: f64,
    /// `D_Pd,Network`: network occupancy per forward (s).
    pub pd_net_s: f64,
    /// `D_Pdm,CPU`: merge CPU demand per en-route message (s).
    pub pdm_cpu_s: f64,
    /// `D_Paradyn,CPU`: main-process CPU demand per received message (s).
    pub main_cpu_s: f64,
    /// Application CPU burst mean (s).
    pub app_cpu_s: f64,
    /// Application network occupancy mean (s).
    pub app_net_s: f64,
}

impl Demands {
    /// Extract demands for a given batch size.
    ///
    /// With `batch_marginals = false` this reproduces the paper's analytic
    /// model exactly (one `D` per batch regardless of size); with `true` the
    /// per-extra-sample marginals are included — the ablation showing why
    /// the simulated batch-size curve levels off (Figure 19) while the
    /// analytic one keeps falling (Figure 10).
    pub fn from_params(p: &RoccParams, batch: usize, batch_marginals: bool) -> Demands {
        let us = 1e-6;
        let (pd_cpu, pd_net, main_cpu) = if batch_marginals {
            (
                p.pd_cpu_batch_mean_us(batch),
                p.pd_net_batch_mean_us(batch),
                p.main_cpu_batch_mean_us(batch),
            )
        } else {
            (
                p.pd.cpu_req.mean(),
                p.pd.net_req.mean(),
                p.main_cpu_per_msg.mean(),
            )
        };
        Demands {
            pd_cpu_s: pd_cpu * us,
            pd_net_s: pd_net * us,
            pdm_cpu_s: p.pdm_cpu.mean() * us,
            main_cpu_s: main_cpu * us,
            app_cpu_s: p.app.cpu_req.mean() * us,
            app_net_s: p.app.net_req.mean() * us,
        }
    }
}

/// The experiment knobs of Section 3: "(1) sampling period; (2) number of
/// application processes per node; (3) number of system nodes; and
/// (4) batch size" (plus daemon count for the SMP case).
#[derive(Clone, Copy, Debug)]
pub struct Knobs {
    /// Sampling period (seconds); Table 2 typical: 0.040.
    pub sampling_period_s: f64,
    /// Batch size (1 = the CF policy).
    pub batch: usize,
    /// Application processes per node.
    pub apps_per_node: usize,
    /// Number of nodes (SMP: number of CPUs).
    pub nodes: usize,
    /// Number of Paradyn daemons (SMP case; 1 elsewhere).
    pub pds: usize,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            sampling_period_s: 0.040,
            batch: 1,
            apps_per_node: 1,
            nodes: 8,
            pds: 1,
        }
    }
}

impl Knobs {
    /// Equation (1): per-node arrival rate of Paradyn daemon forward
    /// operations, `λ = apps / (period · batch)` (per second).
    pub fn lambda_now(&self) -> f64 {
        self.apps_per_node as f64 / (self.sampling_period_s * self.batch as f64)
    }

    /// The SMP variant of equation (1), which the paper additionally scales
    /// by the daemon count.
    pub fn lambda_smp(&self) -> f64 {
        self.lambda_now() * self.pds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_matches_equation_one() {
        let k = Knobs {
            sampling_period_s: 0.040,
            batch: 1,
            apps_per_node: 1,
            ..Default::default()
        };
        assert!((k.lambda_now() - 25.0).abs() < 1e-9);
        let k2 = Knobs {
            batch: 128,
            apps_per_node: 4,
            ..k
        };
        assert!((k2.lambda_now() - 4.0 / (0.040 * 128.0)).abs() < 1e-9);
    }

    #[test]
    fn smp_lambda_scales_with_daemons() {
        let k = Knobs {
            pds: 4,
            ..Default::default()
        };
        assert!((k.lambda_smp() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn demands_paper_mode_ignores_batch() {
        let p = RoccParams::default();
        let d1 = Demands::from_params(&p, 1, false);
        let d128 = Demands::from_params(&p, 128, false);
        assert_eq!(d1.pd_cpu_s, d128.pd_cpu_s);
        assert!((d1.pd_cpu_s - 267e-6).abs() < 1e-12);
    }

    #[test]
    fn demands_marginal_mode_grows_with_batch() {
        let p = RoccParams::default();
        let d1 = Demands::from_params(&p, 1, true);
        let d32 = Demands::from_params(&p, 32, true);
        assert!(d32.pd_cpu_s > d1.pd_cpu_s);
        assert!((d32.pd_cpu_s - (267.0 + 31.0 * 60.0) * 1e-6).abs() < 1e-12);
    }
}

//! Statistics-substrate benchmarks: sampling, fitting, K-S, PCA, and
//! factorial analysis throughput.

use paradyn_bench::timing::Group;
use paradyn_stats::{
    best_fit, fit_lognormal, fit_weibull, ks_statistic, pca, Design2kr, Rv, SplitMix64,
};

fn draws(rv: Rv, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64(42);
    (0..n).map(|_| rv.sample(&mut rng)).collect()
}

fn main() {
    let mut g = Group::new("stats");

    g.throughput(1_000_000);
    let rv = Rv::lognormal_mean_std(2213.0, 3034.0);
    let mut rng = SplitMix64(1);
    g.bench_function("sample_lognormal_1m", || {
        let mut acc = 0.0;
        for _ in 0..1_000_000 {
            acc += rv.sample(&mut rng);
        }
        acc
    });

    let xs = draws(Rv::lognormal_mean_std(2213.0, 3034.0), 10_000);
    g.throughput(xs.len() as u64);
    g.bench_function("fit_lognormal_10k", || fit_lognormal(&xs));
    g.bench_function("fit_weibull_10k", || fit_weibull(&xs));
    let fitted = fit_lognormal(&xs);
    g.bench_function("ks_statistic_10k", || ks_statistic(&xs, &fitted));
    g.bench_function("best_fit_10k", || best_fit(&xs));

    let rows: Vec<Vec<f64>> = (0..1000)
        .map(|i| (0..5).map(|j| ((i * 31 + j * 17) % 97) as f64).collect())
        .collect();
    g.bench_function("pca_5d_1000", || pca(&rows).explained[0]);

    g.bench_with_setup(
        "factorial_2k4_r50",
        || {
            let mut d = Design2kr::new(vec!["a", "b", "c", "d"]);
            for cfg in 0..16usize {
                d.set_responses(cfg, (0..50).map(|r| (cfg * 7 + r) as f64).collect());
            }
            d
        },
        |d| d.analyze().sst,
    );
}

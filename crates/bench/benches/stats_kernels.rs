//! Statistics-substrate benchmarks: sampling, fitting, K-S, PCA, and
//! factorial analysis throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use paradyn_stats::{
    best_fit, fit_lognormal, fit_weibull, ks_statistic, pca, Design2kr, Rv, SplitMix64,
};

fn draws(rv: Rv, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64(42);
    (0..n).map(|_| rv.sample(&mut rng)).collect()
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats");

    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("sample_lognormal_1m", |b| {
        let rv = Rv::lognormal_mean_std(2213.0, 3034.0);
        let mut rng = SplitMix64(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000_000 {
                acc += rv.sample(&mut rng);
            }
            acc
        })
    });

    let xs = draws(Rv::lognormal_mean_std(2213.0, 3034.0), 10_000);
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("fit_lognormal_10k", |b| b.iter(|| fit_lognormal(&xs)));
    g.bench_function("fit_weibull_10k", |b| b.iter(|| fit_weibull(&xs)));
    g.bench_function("ks_statistic_10k", |b| {
        let rv = fit_lognormal(&xs);
        b.iter(|| ks_statistic(&xs, &rv))
    });
    g.bench_function("best_fit_10k", |b| b.iter(|| best_fit(&xs)));

    g.bench_function("pca_5d_1000", |b| {
        let rows: Vec<Vec<f64>> = (0..1000)
            .map(|i| {
                (0..5)
                    .map(|j| ((i * 31 + j * 17) % 97) as f64)
                    .collect()
            })
            .collect();
        b.iter(|| pca(&rows).explained[0])
    });

    g.bench_function("factorial_2k4_r50", |b| {
        b.iter_batched(
            || {
                let mut d = Design2kr::new(vec!["a", "b", "c", "d"]);
                for cfg in 0..16usize {
                    d.set_responses(cfg, (0..50).map(|r| (cfg * 7 + r) as f64).collect());
                }
                d
            },
            |d| d.analyze().sst,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);

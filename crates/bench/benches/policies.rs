//! Ablation benches for the design choices DESIGN.md calls out:
//! CF ≡ BF(1) single code path (3), batch-size cost scaling, and tree vs
//! direct forwarding event cost.

use paradyn_bench::timing::Group;
use paradyn_core::{run, Arch, Forwarding, SimConfig};

fn main() {
    let mut g = Group::new("policies");
    g.sample_size(10);
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 8,
        apps_per_node: 4,
        sampling_period_us: 5_000.0,
        duration_s: 1.0,
        ..Default::default()
    };
    for batch in [1usize, 8, 32, 128] {
        let cfg = SimConfig {
            batch,
            ..base.clone()
        };
        g.bench_function(&format!("now_batch_{batch}"), || run(&cfg).forwarded_batches);
    }
    for (name, fwd) in [
        ("mpp_direct_128n", Forwarding::Direct),
        ("mpp_tree_128n", Forwarding::BinaryTree),
    ] {
        let cfg = SimConfig {
            arch: Arch::Mpp { forwarding: fwd },
            nodes: 128,
            batch: 32,
            duration_s: 1.0,
            ..Default::default()
        };
        g.bench_function(name, || run(&cfg).received_samples);
    }
}

//! Kernel benchmarks: raw event-calendar throughput (DESIGN.md ablations
//! 1–2: integer time + typed events), run against **both** calendar
//! backends — the O(1) timing wheel and the legacy binary heap — plus the
//! `model_path` group: the full ROCC model (NOW contention-free sweep) at
//! three sizes, so end-to-end throughput is a first-class ratchet artifact
//! and not just the calendar microbenches.
//!
//! Besides the human-readable table, the run emits a machine-readable
//! `BENCH_des.json` (path overridable via `PARADYN_BENCH_JSON`) with
//! events/sec, ns/event, and calendar occupancy per case, and the
//! wheel-over-heap speedup per workload. `PARADYN_BENCH_SMOKE=1` shrinks
//! the workloads so `scripts/verify.sh` can exercise the bench + JSON
//! pipeline in seconds.

use paradyn_bench::json::Json;
use paradyn_bench::timing::{Group, Stats};
use paradyn_core::{build_with_calendar, run_sharded, Arch, Forwarding, SimConfig};
use paradyn_des::{CalendarKind, CalendarStats, Ctx, Model, Sim, SimDur, SimTime};

/// Self-rescheduling single event: pure calendar overhead.
struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimDur::from_nanos(100), ());
        }
    }
}

/// K interleaved timers: deeper calendar population.
struct Timers {
    remaining: u64,
}

impl Model for Timers {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, id: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            // Deterministic pseudo-random gap keeps the calendar shuffled.
            let gap = 50 + (id as u64).wrapping_mul(2654435761) % 1000;
            ctx.schedule_in(SimDur::from_nanos(gap), id);
        }
    }
}

fn kind_name(kind: CalendarKind) -> &'static str {
    match kind {
        CalendarKind::Wheel => "wheel",
        CalendarKind::Heap => "heap",
    }
}

fn occupancy_json(s: CalendarStats) -> Json {
    Json::Obj(vec![
        ("live".into(), Json::num(s.live as f64)),
        ("occupied_buckets".into(), Json::num(s.occupied_buckets as f64)),
        ("slab_slots".into(), Json::num(s.slab_slots as f64)),
    ])
}

/// One measured case: records the JSON row and returns it for the
/// speedup computation.
fn record(
    results: &mut Vec<Json>,
    name: &str,
    kind: CalendarKind,
    events: u64,
    stats: Stats,
    occupancy: CalendarStats,
) {
    let ns_per_event = stats.median_ns as f64 / events.max(1) as f64;
    let events_per_sec = if stats.median_ns > 0 {
        events as f64 / (stats.median_ns as f64 * 1e-9)
    } else {
        f64::NAN
    };
    results.push(Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("calendar".into(), Json::str(kind_name(kind))),
        ("events".into(), Json::num(events as f64)),
        ("median_ns".into(), Json::num(stats.median_ns as f64)),
        ("p95_ns".into(), Json::num(stats.p95_ns as f64)),
        ("min_ns".into(), Json::num(stats.min_ns as f64)),
        ("ns_per_event".into(), Json::num(ns_per_event)),
        ("events_per_sec".into(), Json::num(events_per_sec)),
        ("occupancy".into(), occupancy_json(occupancy)),
    ]));
}

fn median_of(results: &[Json], name: &str, kind: &str) -> Option<f64> {
    results.iter().find_map(|r| {
        (r.get("name")?.as_str()? == name && r.get("calendar")?.as_str()? == kind)
            .then(|| r.get("median_ns")?.as_num())?
    })
}

fn main() {
    let smoke = std::env::var("PARADYN_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let n: u64 = if smoke { 2_000 } else { 100_000 };
    let model_dur_s = if smoke { 0.02 } else { 1.0 };

    let mut g = Group::new("des_engine");
    if !smoke {
        // Ratchet contract: pinned counts + a fixed minimum warmup so the
        // committed medians are comparable across commits (smoke runs are
        // ratchet-exempt and keep the fast env-driven counts).
        g.pin(25, 3).warmup_time_ms(200);
    }
    let mut results: Vec<Json> = vec![];
    let mut case_names: Vec<String> = vec![];

    for kind in [CalendarKind::Heap, CalendarKind::Wheel] {
        let k_name = kind_name(kind);

        // Pure calendar overhead: one self-rescheduling event.
        //
        // Known cost level: the batched same-timestamp delivery added with
        // the SoA-arena hot-path work costs this no-tie microbench a
        // resolved-early `at == now` comparison per event (~5 ns/ev here
        // against the pre-batching level), in exchange for a large win on
        // tie-heavy model workloads. Deliberately pinned at this level —
        // the comparison resolves before the handler call and has no
        // cheaper sound form — and held by the `event_chain` floors in
        // BENCH_floor.json; `tests/batch_delivery.rs` keeps the batching
        // honest.
        let case = format!("event_chain_{n}");
        g.throughput(n);
        let occ = {
            let mut sim = Sim::with_calendar(Chain { remaining: n }, kind);
            sim.ctx().schedule_at(SimTime::ZERO, ());
            sim.ctx().calendar_stats()
        };
        let stats = g.bench_with_setup(
            &format!("{case}/{k_name}"),
            || {
                let mut sim = Sim::with_calendar(Chain { remaining: n }, kind);
                sim.ctx().schedule_at(SimTime::ZERO, ());
                sim
            },
            |mut sim| {
                sim.run_until(SimTime::MAX);
                sim.executed_events()
            },
        );
        record(&mut results, &case, kind, n, stats, occ);
        if kind == CalendarKind::Heap {
            case_names.push(case);
        }

        // K interleaved timers: a deeper, shuffled calendar.
        for k in [64u32, 1024] {
            let case = format!("timers_{k}_{n}");
            g.throughput(n);
            let occ = {
                let mut sim = Sim::with_calendar(Timers { remaining: n }, kind);
                for id in 0..k {
                    sim.ctx().schedule_at(SimTime::from_nanos(id as u64), id);
                }
                sim.ctx().calendar_stats()
            };
            let stats = g.bench_with_setup(
                &format!("{case}/{k_name}"),
                || {
                    let mut sim = Sim::with_calendar(Timers { remaining: n }, kind);
                    for id in 0..k {
                        sim.ctx().schedule_at(SimTime::from_nanos(id as u64), id);
                    }
                    sim
                },
                |mut sim| {
                    sim.run_until(SimTime::MAX);
                    sim.executed_events()
                },
            );
            record(&mut results, &case, kind, n, stats, occ);
            if kind == CalendarKind::Heap {
                case_names.push(case);
            }
        }
    }

    // `model_path` group: the full ROCC model (the paper's NOW
    // contention-free sweep) at three sizes. Model logic (RNG draws,
    // resource state machines) shares the bill with the calendar here, so
    // the wheel-over-heap speedup is smaller than on the kernel
    // microbenches; both numbers land in the JSON and the 50-node case
    // carries its own ratchet floor.
    let mut g = Group::new("model_path");
    if !smoke {
        g.pin(25, 3).warmup_time_ms(200);
    }
    for kind in [CalendarKind::Heap, CalendarKind::Wheel] {
        let k_name = kind_name(kind);
        for nodes in [16usize, 50, 120] {
            let case = format!("now_cf_{nodes}n");
            let cfg = SimConfig {
                arch: Arch::Now { contention_free: true },
                nodes,
                duration_s: model_dur_s,
                ..Default::default()
            };
            let horizon = SimTime::from_secs_f64(cfg.duration_s);
            let (model_events, occ) = {
                let mut sim = build_with_calendar(&cfg, kind);
                let occ = sim.ctx().calendar_stats();
                sim.run_until(horizon);
                (sim.executed_events(), occ)
            };
            g.throughput(model_events);
            let stats = g.bench_with_setup(
                &format!("{case}/{k_name}"),
                || build_with_calendar(&cfg, kind),
                |mut sim| {
                    sim.run_until(horizon);
                    sim.executed_events()
                },
            );
            record(&mut results, &case, kind, model_events, stats, occ);
            if kind == CalendarKind::Heap {
                case_names.push(case);
            }
        }
    }

    // `sharded_run` group: the conservative sharded driver on an MPP
    // binary tree of >=1k daemons (DESIGN.md §11), wheel calendar, merge
    // included — end-to-end cost of the exact bit-identical run. The
    // driver runs with `threads = 1` (all shards round-robin on one OS
    // thread, bit-identical to any thread count): that isolates the window
    // protocol's overhead from scheduler noise, and on a single-core host
    // it is also simply faster — per-round cross-thread synchronization
    // costs far more than the work in a 5 µs window when every thread
    // shares one core. The separate `sharded` JSON array adds a
    // speedup-vs-serial column per shard count; on a single-core host it
    // is bounded above by 1 by construction and reads as protocol
    // overhead — EXPERIMENTS.md discusses both readings.
    let mut g = Group::new("sharded_run");
    if !smoke {
        g.pin(15, 2).warmup_time_ms(200);
    }
    let sh_nodes = if smoke { 63 } else { 1023 };
    let sh_cfg = SimConfig {
        arch: Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
        nodes: sh_nodes,
        batch: 16,
        duration_s: if smoke { 0.01 } else { 0.05 },
        ..Default::default()
    };
    let sh_horizon = SimTime::from_secs_f64(sh_cfg.duration_s);
    let sh_events = {
        let mut sim = build_with_calendar(&sh_cfg, CalendarKind::Wheel);
        sim.run_until(sh_horizon);
        sim.executed_events()
    };
    let sh_occ = build_with_calendar(&sh_cfg, CalendarKind::Wheel)
        .ctx()
        .calendar_stats();
    let serial_case = format!("sharded_mpp_{sh_nodes}n_serial");
    g.throughput(sh_events);
    let serial_stats = g.bench_with_setup(
        &format!("{serial_case}/wheel"),
        || build_with_calendar(&sh_cfg, CalendarKind::Wheel),
        |mut sim| {
            sim.run_until(sh_horizon);
            sim.executed_events()
        },
    );
    record(
        &mut results,
        &serial_case,
        CalendarKind::Wheel,
        sh_events,
        serial_stats,
        sh_occ,
    );
    let mut sharded: Vec<Json> = vec![Json::Obj(vec![
        ("name".into(), Json::str(serial_case.clone())),
        ("shards".into(), Json::num(0.0)),
        (
            "events_per_sec".into(),
            Json::num(sh_events as f64 / (serial_stats.median_ns as f64 * 1e-9)),
        ),
        ("speedup_vs_serial".into(), Json::num(1.0)),
    ])];
    for shards in [1u16, 2, 4] {
        let case = format!("sharded_mpp_{sh_nodes}n_s{shards}");
        g.throughput(sh_events);
        let stats = g.bench_function(&format!("{case}/wheel"), || {
            let sim = run_sharded(&sh_cfg, CalendarKind::Wheel, shards, 1);
            sim.executed_events()
        });
        record(&mut results, &case, CalendarKind::Wheel, sh_events, stats, sh_occ);
        let eps = sh_events as f64 / (stats.median_ns as f64 * 1e-9);
        let speedup = serial_stats.median_ns as f64 / stats.median_ns as f64;
        println!("sharded {case:<28} vs serial: {speedup:.2}x");
        sharded.push(Json::Obj(vec![
            ("name".into(), Json::str(case)),
            ("shards".into(), Json::num(shards as f64)),
            ("events_per_sec".into(), Json::num(eps)),
            ("speedup_vs_serial".into(), Json::num(speedup)),
        ]));
    }

    let mut speedups: Vec<Json> = vec![];
    for case in &case_names {
        if let (Some(h), Some(w)) = (
            median_of(&results, case, "heap"),
            median_of(&results, case, "wheel"),
        ) {
            let ratio = if w > 0.0 { h / w } else { f64::NAN };
            println!("speedup {case:<24} wheel over heap: {ratio:.2}x");
            speedups.push(Json::Obj(vec![
                ("name".into(), Json::str(case.clone())),
                ("wheel_over_heap".into(), Json::num(ratio)),
            ]));
        }
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("paradyn.bench.des.v1")),
        ("group".into(), Json::str("des_engine")),
        ("smoke".into(), Json::Bool(smoke)),
        ("results".into(), Json::Arr(results)),
        ("speedups".into(), Json::Arr(speedups)),
        ("sharded".into(), Json::Arr(sharded)),
    ]);
    let path =
        std::env::var("PARADYN_BENCH_JSON").unwrap_or_else(|_| "BENCH_des.json".to_string());
    std::fs::write(&path, doc.pretty()).expect("write BENCH_des.json");
    println!("wrote {path}");
}

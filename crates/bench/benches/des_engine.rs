//! Kernel benchmarks: raw event-calendar throughput (DESIGN.md ablations
//! 1–2: integer time + typed events).

use paradyn_bench::timing::Group;
use paradyn_des::{Ctx, Model, Sim, SimDur, SimTime};

/// Self-rescheduling single event: pure calendar overhead.
struct Chain {
    remaining: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimDur::from_nanos(100), ());
        }
    }
}

/// K interleaved timers: deeper heap.
struct Timers {
    remaining: u64,
}

impl Model for Timers {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Ctx<u32>, id: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            // Deterministic pseudo-random gap keeps the heap shuffled.
            let gap = 50 + (id as u64).wrapping_mul(2654435761) % 1000;
            ctx.schedule_in(SimDur::from_nanos(gap), id);
        }
    }
}

fn main() {
    let mut g = Group::new("des_engine");
    const N: u64 = 100_000;
    g.throughput(N);
    g.bench_with_setup(
        "event_chain_100k",
        || {
            let mut sim = Sim::new(Chain { remaining: N });
            sim.ctx().schedule_at(SimTime::ZERO, ());
            sim
        },
        |mut sim| {
            sim.run_until(SimTime::MAX);
            sim.executed_events()
        },
    );
    for k in [64u32, 1024] {
        g.bench_with_setup(
            &format!("timers_{k}_100k"),
            || {
                let mut sim = Sim::new(Timers { remaining: N });
                for id in 0..k {
                    sim.ctx().schedule_at(SimTime::from_nanos(id as u64), id);
                }
                sim
            },
            |mut sim| {
                sim.run_until(SimTime::MAX);
                sim.executed_events()
            },
        );
    }
}

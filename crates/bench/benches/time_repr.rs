//! Ablation bench for DESIGN.md decision 1: integer-nanosecond event keys
//! vs. a float-keyed calendar. Measures raw binary-heap push/pop throughput
//! with each key representation over an identical event trace.

use paradyn_bench::timing::Group;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A totally ordered f64 wrapper (what a float-keyed calendar would need).
#[derive(Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Deterministic pseudo-random event-time trace.
fn times(n: usize) -> Vec<u64> {
    let mut x = 0x243F6A8885A308D3u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 1_000_000_000
        })
        .collect()
}

fn churn<K: Ord + Copy>(heap: &mut BinaryHeap<Reverse<(K, u64)>>, keys: &[K]) -> u64 {
    // Steady-state churn: push one, pop one, like a running calendar.
    let mut acc = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        heap.push(Reverse((k, i as u64)));
        if let Some(Reverse((_, seq))) = heap.pop() {
            acc = acc.wrapping_add(seq);
        }
    }
    acc
}

fn main() {
    let mut g = Group::new("time_repr");
    const N: usize = 100_000;
    const PREFILL: usize = 1_024;
    let ts = times(N);
    g.throughput(N as u64);
    g.bench_with_setup(
        "integer_keys",
        || {
            let mut h: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            for (i, &t) in ts.iter().take(PREFILL).enumerate() {
                h.push(Reverse((t, i as u64)));
            }
            h
        },
        |mut h| churn(&mut h, &ts),
    );
    let fts: Vec<OrderedF64> = ts.iter().map(|&t| OrderedF64(t as f64 * 1e-9)).collect();
    g.bench_with_setup(
        "float_keys",
        || {
            let mut h: BinaryHeap<Reverse<(OrderedF64, u64)>> = BinaryHeap::new();
            for (i, &t) in fts.iter().take(PREFILL).enumerate() {
                h.push(Reverse((t, i as u64)));
            }
            h
        },
        |mut h| churn(&mut h, &fts),
    );
}

//! Whole-model simulation throughput across the three architectures —
//! the cost of regenerating the paper's experiments.

use paradyn_bench::timing::Group;
use paradyn_core::{run, Arch, Forwarding, SimConfig};

fn cfg(arch: Arch, nodes: usize, duration_s: f64) -> SimConfig {
    SimConfig {
        arch,
        nodes,
        duration_s,
        ..Default::default()
    }
}

fn main() {
    let mut g = Group::new("rocc_model");
    g.sample_size(10);

    let cases = [
        (
            "now_shared_8n_1s",
            cfg(Arch::Now { contention_free: false }, 8, 1.0),
        ),
        (
            "now_cfree_8n_1s",
            cfg(Arch::Now { contention_free: true }, 8, 1.0),
        ),
        ("smp_16cpu_1s", {
            let mut c = cfg(Arch::Smp, 16, 1.0);
            c.apps_per_node = 32;
            c
        }),
        (
            "mpp_direct_64n_1s",
            cfg(
                Arch::Mpp {
                    forwarding: Forwarding::Direct,
                },
                64,
                1.0,
            ),
        ),
        ("mpp_tree_64n_1s", {
            let mut c = cfg(
                Arch::Mpp {
                    forwarding: Forwarding::BinaryTree,
                },
                64,
                1.0,
            );
            c.batch = 32;
            c
        }),
    ];
    for (name, config) in cases {
        // Report throughput in simulated events per wall second.
        let events = run(&config).events;
        g.throughput(events);
        g.bench_function(name, || run(&config).events);
    }
}

//! Minimal wall-clock benchmarking harness — the hermetic replacement for
//! Criterion, keeping `cargo bench` runnable with zero external crates.
//!
//! Each measurement warms the routine up, then times `iters` independent
//! executions and reports **median**, **p95**, and **min** wall time
//! (median and p95 are robust to scheduler noise; min approximates the
//! uncontended cost). With a declared throughput, the median is also
//! converted to elements/second.
//!
//! Environment knobs:
//! * `PARADYN_BENCH_ITERS` — timed iterations per benchmark (default 20);
//! * `PARADYN_BENCH_WARMUP` — warmup iterations (default 3).

use std::time::Instant;

/// Re-export so bench files have a hermetic `black_box`.
pub use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Robust summary of one benchmark's per-iteration times.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median wall time per iteration (ns).
    pub median_ns: u64,
    /// 95th-percentile wall time (ns).
    pub p95_ns: u64,
    /// Minimum wall time (ns).
    pub min_ns: u64,
}

/// Summarize per-iteration samples (ns). Uses the nearest-rank method, so
/// the reported quantiles are actual observed samples.
pub fn summarize(samples_ns: &[u64]) -> Stats {
    assert!(!samples_ns.is_empty());
    let mut xs = samples_ns.to_vec();
    xs.sort_unstable();
    let rank = |p: f64| -> u64 {
        let idx = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
        xs[idx]
    };
    Stats {
        median_ns: rank(0.50),
        p95_ns: rank(0.95),
        min_ns: xs[0],
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of benchmarks sharing iteration settings.
pub struct Group {
    name: String,
    iters: usize,
    warmup: usize,
    throughput_elems: Option<u64>,
}

impl Group {
    /// Start a group; prints a header.
    pub fn new(name: &str) -> Group {
        println!("== bench group: {name} ==");
        Group {
            name: name.to_string(),
            iters: env_usize("PARADYN_BENCH_ITERS", 20),
            warmup: env_usize("PARADYN_BENCH_WARMUP", 3),
            throughput_elems: None,
        }
    }

    /// Override the timed iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, iters: usize) -> &mut Self {
        self.iters = iters.max(1);
        self
    }

    /// Declare elements processed per iteration; subsequent reports add
    /// elements/second derived from the median.
    pub fn throughput(&mut self, elems: u64) -> &mut Self {
        self.throughput_elems = Some(elems);
        self
    }

    /// Time `routine` as-is (setup-free benchmark). Returns the stats so
    /// callers (and tests) can assert on them.
    pub fn bench_function<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) -> Stats {
        self.bench_with_setup(name, || (), |()| routine())
    }

    /// Time only `routine`, rebuilding its input with `setup` before every
    /// iteration (the `iter_batched` pattern: excludes setup cost and
    /// prevents state leaking across iterations).
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> Stats {
        for _ in 0..self.warmup {
            black_box(routine(setup()));
        }
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        let stats = summarize(&samples);
        let rate = self
            .throughput_elems
            .filter(|_| stats.median_ns > 0)
            .map(|e| {
                format!(
                    "  ({:.2} Melem/s)",
                    e as f64 / (stats.median_ns as f64 * 1e-9) / 1e6
                )
            })
            .unwrap_or_default();
        println!(
            "{:<32} median {:>12}  p95 {:>12}  min {:>12}{rate}",
            format!("{}/{}", self.name, name),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.min_ns),
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_uses_nearest_rank() {
        let s = summarize(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.median_ns, 50);
        assert_eq!(s.p95_ns, 100);
        assert_eq!(s.min_ns, 10);
        let one = summarize(&[7]);
        assert_eq!((one.median_ns, one.p95_ns, one.min_ns), (7, 7, 7));
    }

    #[test]
    fn bench_runs_warmup_plus_iters_times() {
        let mut g = Group::new("meta");
        g.sample_size(5);
        let mut calls = 0u32;
        let stats = g.bench_function("counter", || calls += 1);
        // 3 default warmups + 5 timed.
        assert_eq!(calls, 8);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.p95_ns);
    }

    #[test]
    fn setup_is_not_timed_state_is_fresh() {
        let mut g = Group::new("meta");
        g.sample_size(3);
        g.bench_with_setup(
            "fresh_vec",
            || vec![1u64; 16],
            |v| {
                // Routine consumes its own fresh input every iteration.
                assert_eq!(v.len(), 16);
                v.into_iter().sum::<u64>()
            },
        );
    }
}

//! Minimal wall-clock benchmarking harness — the hermetic replacement for
//! Criterion, keeping `cargo bench` runnable with zero external crates.
//!
//! Each measurement warms the routine up, then times `iters` independent
//! executions and reports **median**, **p95**, and **min** wall time
//! (median and p95 are robust to scheduler noise; min approximates the
//! uncontended cost). With a declared throughput, the median is also
//! converted to elements/second.
//!
//! ## Variance control for ratchet benches
//!
//! Benchmarks that feed the committed `BENCH_des.json` / `BENCH_floor.json`
//! throughput ratchet must produce comparable medians run over run, so two
//! extra controls exist beyond the env knobs:
//!
//! * [`Group::pin`] **pins** the iteration and warmup counts in the bench
//!   source, ignoring `PARADYN_BENCH_ITERS`/`PARADYN_BENCH_WARMUP`: a
//!   ratchet comparison is only meaningful when both sides drew the same
//!   number of samples.
//! * [`Group::warmup_time_ms`] adds a **fixed minimum warmup time**: the
//!   warmup loop keeps re-running the routine until both the warmup
//!   iteration count *and* the wall-clock minimum are met. The first
//!   iterations of a cold process are polluted by page faults, lazy
//!   allocator growth, and CPU frequency ramp — a count-only warmup lets
//!   that pollution leak into the timed samples of short benchmarks
//!   (observed as `timers_1024` p95 at 3× its median).
//!
//! Environment knobs (ignored by pinned groups):
//! * `PARADYN_BENCH_ITERS` — timed iterations per benchmark (default 20);
//! * `PARADYN_BENCH_WARMUP` — warmup iterations (default 3).

use std::time::Instant;

use paradyn_stats::Moments;

/// Re-export so bench files have a hermetic `black_box`.
pub use std::hint::black_box;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Robust summary of one benchmark's per-iteration times.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median wall time per iteration (ns).
    pub median_ns: u64,
    /// 95th-percentile wall time (ns).
    pub p95_ns: u64,
    /// Minimum wall time (ns).
    pub min_ns: u64,
    /// Mean wall time (ns) — sensitive to outliers; report with `std_ns`.
    pub mean_ns: f64,
    /// Sample standard deviation of the iteration times (ns). The ratio
    /// `std_ns / mean_ns` (coefficient of variation) is the run's noise
    /// gauge: ratchet-quality runs should sit well under 0.15.
    pub std_ns: f64,
}

impl Stats {
    /// Coefficient of variation of the iteration times (std/mean).
    pub fn cv(&self) -> f64 {
        if self.mean_ns == 0.0 {
            0.0
        } else {
            self.std_ns / self.mean_ns
        }
    }
}

/// Summarize per-iteration samples (ns). Quantiles use the nearest-rank
/// method, so they are actual observed samples; mean/std come from a
/// single-pass [`Moments`] fold.
pub fn summarize(samples_ns: &[u64]) -> Stats {
    assert!(!samples_ns.is_empty());
    let mut xs = samples_ns.to_vec();
    xs.sort_unstable();
    let rank = |p: f64| -> u64 {
        let idx = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
        xs[idx]
    };
    let mut m = Moments::new();
    for &x in &xs {
        m.push(x as f64);
    }
    Stats {
        median_ns: rank(0.50),
        p95_ns: rank(0.95),
        min_ns: xs[0],
        mean_ns: m.mean(),
        std_ns: m.std_dev(),
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named group of benchmarks sharing iteration settings.
pub struct Group {
    name: String,
    iters: usize,
    warmup: usize,
    warmup_min_ns: u64,
    throughput_elems: Option<u64>,
}

impl Group {
    /// Start a group; prints a header. Iteration counts come from the
    /// environment knobs (see module docs); ratchet benches should [`pin`]
    /// them instead.
    ///
    /// [`pin`]: Group::pin
    pub fn new(name: &str) -> Group {
        println!("== bench group: {name} ==");
        Group {
            name: name.to_string(),
            iters: env_usize("PARADYN_BENCH_ITERS", 20),
            warmup: env_usize("PARADYN_BENCH_WARMUP", 3),
            warmup_min_ns: 0,
            throughput_elems: None,
        }
    }

    /// Pin the timed-iteration and warmup counts in source, overriding any
    /// `PARADYN_BENCH_ITERS`/`PARADYN_BENCH_WARMUP` in the environment.
    /// Every benchmark feeding the `BENCH_floor.json` ratchet must be
    /// pinned: floors compare medians across commits, which is only sound
    /// when the sample count is part of the benchmark's definition.
    pub fn pin(&mut self, iters: usize, warmup: usize) -> &mut Self {
        self.iters = iters.max(1);
        self.warmup = warmup;
        self
    }

    /// Require at least `ms` milliseconds of warmup wall time per
    /// benchmark, on top of the warmup iteration count. Use for ratchet
    /// benches whose single iteration is short relative to cold-start
    /// effects (page faults, allocator growth, CPU frequency ramp).
    pub fn warmup_time_ms(&mut self, ms: u64) -> &mut Self {
        self.warmup_min_ns = ms.saturating_mul(1_000_000);
        self
    }

    /// Override the timed iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, iters: usize) -> &mut Self {
        self.iters = iters.max(1);
        self
    }

    /// Declare elements processed per iteration; subsequent reports add
    /// elements/second derived from the median.
    pub fn throughput(&mut self, elems: u64) -> &mut Self {
        self.throughput_elems = Some(elems);
        self
    }

    /// Time `routine` as-is (setup-free benchmark). Returns the stats so
    /// callers (and tests) can assert on them.
    pub fn bench_function<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) -> Stats {
        self.bench_with_setup(name, || (), |()| routine())
    }

    /// Time only `routine`, rebuilding its input with `setup` before every
    /// iteration (the `iter_batched` pattern: excludes setup cost and
    /// prevents state leaking across iterations).
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> Stats {
        // Fixed warmup pass: at least `warmup` iterations AND at least
        // `warmup_min_ns` of wall time before the first timed sample.
        let warm_start = Instant::now();
        let mut warmed = 0usize;
        while warmed < self.warmup
            || (warm_start.elapsed().as_nanos() as u64) < self.warmup_min_ns
        {
            black_box(routine(setup()));
            warmed += 1;
        }
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        let stats = summarize(&samples);
        let rate = self
            .throughput_elems
            .filter(|_| stats.median_ns > 0)
            .map(|e| {
                format!(
                    "  ({:.2} Melem/s)",
                    e as f64 / (stats.median_ns as f64 * 1e-9) / 1e6
                )
            })
            .unwrap_or_default();
        println!(
            "{:<32} median {:>12}  p95 {:>12}  min {:>12}  cv {:>5.1}%{rate}",
            format!("{}/{}", self.name, name),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.min_ns),
            stats.cv() * 100.0,
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_uses_nearest_rank() {
        let s = summarize(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.median_ns, 50);
        assert_eq!(s.p95_ns, 100);
        assert_eq!(s.min_ns, 10);
        let one = summarize(&[7]);
        assert_eq!((one.median_ns, one.p95_ns, one.min_ns), (7, 7, 7));
    }

    #[test]
    fn summarize_moments_match_sample() {
        let s = summarize(&[10, 20, 30, 40]);
        assert!((s.mean_ns - 25.0).abs() < 1e-12);
        // Unbiased sample std of {10,20,30,40} = sqrt(500/3).
        assert!((s.std_ns - (500.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert!((s.cv() - s.std_ns / 25.0).abs() < 1e-12);
    }

    #[test]
    fn bench_runs_warmup_plus_iters_times() {
        let mut g = Group::new("meta");
        g.sample_size(5);
        let mut calls = 0u32;
        let stats = g.bench_function("counter", || calls += 1);
        // 3 default warmups + 5 timed.
        assert_eq!(calls, 8);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.p95_ns);
    }

    #[test]
    fn pinned_counts_override_env() {
        // `pin` must ignore the env knobs entirely (the ratchet contract);
        // with warmup pinned to 0 and no minimum warmup time, the call
        // count is exactly the pinned iteration count.
        let mut g = Group::new("meta");
        g.pin(4, 0);
        let mut calls = 0u32;
        g.bench_function("pinned", || calls += 1);
        assert_eq!(calls, 4);
    }

    #[test]
    fn warmup_time_floor_is_enforced() {
        let mut g = Group::new("meta");
        g.pin(1, 1).warmup_time_ms(30);
        let mut calls = 0u32;
        let start = Instant::now();
        g.bench_function("warm", || {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        // At least ~30ms of warmup happened before the single timed
        // iteration; with a 2ms routine that means well over the 1-count
        // warmup minimum actually ran.
        assert!(start.elapsed().as_millis() >= 30);
        assert!(calls > 2, "expected time-based warmup to add calls, got {calls}");
    }
}

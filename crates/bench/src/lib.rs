#![warn(missing_docs)]
//! # paradyn-bench — the reproduction harness
//!
//! One module per group of paper artifacts; each `run_*` function
//! regenerates a table or figure and prints the series/rows the paper
//! reports, annotated with the paper's reference values where published.
//! The `repro` binary dispatches on artifact ids (`table1` … `fig31`,
//! `all`); the in-tree wall-clock benches under `benches/` (built on
//! [`timing`] — the build is hermetic, so no Criterion) measure the
//! performance of the simulator itself.

pub mod analytic_figs;
pub mod degrade_figs;
pub mod fault_figs;
pub mod fig8;
pub mod fmt;
pub mod json;
pub mod mpp_figs;
pub mod now_figs;
pub mod scale;
pub mod simhelp;
pub mod smp_figs;
pub mod tables;
pub mod testbed_figs;
pub mod timing;

pub use scale::Scale;

/// All artifact ids, in paper order.
pub const ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "fig8", "fig9", "fig10", "fig12", "fig13", "fig14", "fig15",
    "table4", "fig16", "fig17", "fig18", "fig19", "table5", "fig20", "fig21", "fig22", "fig23",
    "fig24", "table6", "fig25", "fig26", "fig27", "fig28", "fig30", "table7", "fig31", "table8",
    "faults", "degradation",
];

/// Run one artifact by id. Returns `false` for an unknown id.
pub fn run_artifact(id: &str, scale: &Scale) -> bool {
    match id {
        "table1" => tables::run_table1(scale),
        "table2" => tables::run_table2(scale),
        "table3" => tables::run_table3(scale),
        "fig8" => fig8::run_fig8(scale),
        "fig9" => analytic_figs::run_fig9(),
        "fig10" => analytic_figs::run_fig10(),
        "fig12" => analytic_figs::run_fig12(),
        "fig13" => analytic_figs::run_fig13(),
        "fig14" => analytic_figs::run_fig14(),
        "fig15" => analytic_figs::run_fig15(),
        "table4" => now_figs::run_table4(scale),
        "fig16" => now_figs::run_fig16(scale),
        "fig17" => now_figs::run_fig17(scale),
        "fig18" => now_figs::run_fig18(scale),
        "fig19" => now_figs::run_fig19(scale),
        "table5" => smp_figs::run_table5(scale),
        "fig20" => smp_figs::run_fig20(scale),
        "fig21" => smp_figs::run_fig21(scale),
        "fig22" => smp_figs::run_fig22(scale),
        "fig23" => smp_figs::run_fig23(scale),
        "fig24" => smp_figs::run_fig24(scale),
        "table6" => mpp_figs::run_table6(scale),
        "fig25" => mpp_figs::run_fig25(scale),
        "fig26" => mpp_figs::run_fig26(scale),
        "fig27" => mpp_figs::run_fig27(scale),
        "fig28" => mpp_figs::run_fig28(scale),
        "fig30" => testbed_figs::run_fig30(scale),
        "table7" => testbed_figs::run_table7(scale),
        "fig31" => testbed_figs::run_fig31(scale),
        "table8" => testbed_figs::run_table8(scale),
        "faults" => fault_figs::run_faults(scale),
        "degradation" => degrade_figs::run_degradation(scale),
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_list_is_complete_and_dispatchable() {
        assert_eq!(ARTIFACTS.len(), 32);
        assert!(!run_artifact("fig99", &Scale::quick()));
    }
}

//! Shared helpers for the simulation-based experiments: replicated sweeps
//! and 2^k·r factorial designs over [`SimConfig`]s.
//!
//! Every replication's seed is a pure function of `(scale.seed,
//! replication index)`, so the sweeps fan out over
//! [`paradyn_core::run_many`]'s scoped threads while staying bit-identical
//! to a serial execution.

use crate::scale::Scale;
use paradyn_core::{
    default_threads, replication_seed, run_forked, run_many, SimConfig, SimMetrics,
};
use paradyn_stats::Design2kr;

/// The `scale.reps` seed-derived configurations for one base configuration.
fn replica_cfgs(cfg: &SimConfig, scale: &Scale) -> Vec<SimConfig> {
    (0..scale.reps)
        .map(|r| {
            let mut c = cfg.clone();
            c.seed = replication_seed(scale.seed, r);
            c
        })
        .collect()
}

/// Run one configuration `scale.reps` times with derived seeds and return
/// the per-replication metrics (in replication order; runs in parallel).
pub fn replicate(cfg: &SimConfig, scale: &Scale) -> Vec<SimMetrics> {
    run_many(&replica_cfgs(cfg, scale), default_threads())
}

/// [`replicate`] via checkpoint forking: warm **one** simulation of `cfg`
/// (seeded from `scale.seed`) to `warmup_s`, snapshot it, and fork the
/// `scale.reps` replications from that snapshot with per-replication
/// stream perturbations — the warmup transient is simulated once instead
/// of once per replication. Each fork is bit-identical to
/// [`paradyn_core::run_perturbed_from_zero`] on the same configuration.
pub fn replicate_forked(cfg: &SimConfig, scale: &Scale, warmup_s: f64) -> Vec<SimMetrics> {
    let mut c = cfg.clone();
    c.seed = scale.seed;
    match run_forked(&c, warmup_s, scale.reps, default_threads()) {
        Ok(runs) => runs,
        Err(e) => panic!("forked replication failed: {e}"),
    }
}

/// Mean of a metric across replications (non-finite values dropped).
pub fn mean_of(runs: &[SimMetrics], f: impl Fn(&SimMetrics) -> f64) -> f64 {
    let vals: Vec<f64> = runs.iter().map(&f).filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Outcome of a 2^k·r factorial simulation experiment: one design per
/// response metric, plus the per-configuration mean responses for the
/// paper-style results table.
pub struct FactorialRun {
    /// Design over the overhead response (daemon/IS CPU time per node, s).
    pub overhead: Design2kr,
    /// Design over the latency response (ms per received sample).
    pub latency: Design2kr,
    /// `(config bits, mean overhead, mean latency)` per configuration.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Run a full 2^k factorial over `cfg_of(bits)` configurations.
///
/// `overhead_of` picks the overhead response (the paper uses Pd CPU time
/// per node for NOW/MPP and IS CPU time per node for SMP); latency is the
/// forwarding latency in milliseconds.
pub fn run_factorial(
    factor_names: Vec<&str>,
    cfg_of: impl Fn(usize) -> SimConfig,
    overhead_of: impl Fn(&SimMetrics) -> f64,
    scale: &Scale,
) -> FactorialRun {
    let k = factor_names.len();
    let mut overhead = Design2kr::new(factor_names.clone());
    let mut latency = Design2kr::new(factor_names);
    let mut rows = vec![];
    // Fan the whole (configuration × replication) grid out at once so the
    // sweep keeps every core busy even when `reps` is small.
    let all_cfgs: Vec<SimConfig> = (0..(1usize << k))
        .flat_map(|bits| replica_cfgs(&cfg_of(bits), scale))
        .collect();
    let all_runs = run_many(&all_cfgs, default_threads());
    for bits in 0..(1usize << k) {
        let runs = &all_runs[bits * scale.reps..(bits + 1) * scale.reps];
        record_cell(bits, runs, &overhead_of, &mut overhead, &mut latency, &mut rows);
    }
    FactorialRun {
        overhead,
        latency,
        rows,
    }
}

/// Fold one factorial cell's replication metrics into the designs and the
/// results table.
fn record_cell(
    bits: usize,
    runs: &[SimMetrics],
    overhead_of: &impl Fn(&SimMetrics) -> f64,
    overhead: &mut Design2kr,
    latency: &mut Design2kr,
    rows: &mut Vec<(usize, f64, f64)>,
) {
    let ov: Vec<f64> = runs.iter().map(overhead_of).collect();
    let lat: Vec<f64> = runs
        .iter()
        .map(|m| {
            let l = m.fwd_latency_mean_s * 1e3;
            if l.is_finite() {
                l
            } else {
                0.0
            }
        })
        .collect();
    rows.push((
        bits,
        ov.iter().sum::<f64>() / ov.len() as f64,
        lat.iter().sum::<f64>() / lat.len() as f64,
    ));
    overhead.set_responses(bits, ov);
    latency.set_responses(bits, lat);
}

/// [`run_factorial`] via checkpoint forking: every 2^k cell warms a single
/// simulation to `warmup_s` and forks its `scale.reps` replications from
/// that snapshot (see [`replicate_forked`]), so each cell's warmup
/// transient is simulated once instead of `reps` times.
pub fn run_factorial_forked(
    factor_names: Vec<&str>,
    cfg_of: impl Fn(usize) -> SimConfig,
    overhead_of: impl Fn(&SimMetrics) -> f64,
    scale: &Scale,
    warmup_s: f64,
) -> FactorialRun {
    let k = factor_names.len();
    let mut overhead = Design2kr::new(factor_names.clone());
    let mut latency = Design2kr::new(factor_names);
    let mut rows = vec![];
    for bits in 0..(1usize << k) {
        let runs = replicate_forked(&cfg_of(bits), scale, warmup_s);
        record_cell(bits, &runs, &overhead_of, &mut overhead, &mut latency, &mut rows);
    }
    FactorialRun {
        overhead,
        latency,
        rows,
    }
}

/// Print an allocation-of-variation block (the paper's Figures 16/20/25
/// bars) for a response.
pub fn print_variation(title: &str, design: &Design2kr) {
    let v = design.analyze();
    println!("{title}:");
    for term in v.terms.iter().take(6) {
        if term.pct >= 1.0 {
            println!("  {:<24} {:>6.1}%", design.describe_term(term.mask), term.pct);
        }
    }
    let rest: f64 = v.terms.iter().filter(|t| t.pct < 1.0).map(|t| t.pct).sum();
    println!("  {:<24} {:>6.1}%", "rest", rest + v.sse_pct);
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradyn_core::Arch;

    fn tiny() -> Scale {
        Scale {
            reps: 2,
            sim_s: 1.0,
            sim_big_s: 1.0,
            testbed: std::time::Duration::from_millis(100),
            trace_us: 1e6,
            seed: 1,
        }
    }

    #[test]
    fn replicate_uses_distinct_seeds() {
        let cfg = SimConfig {
            arch: Arch::Now { contention_free: true },
            nodes: 1,
            duration_s: 1.0,
            ..Default::default()
        };
        let runs = replicate(&cfg, &tiny());
        assert_eq!(runs.len(), 2);
        assert_ne!(runs[0].received_samples, runs[1].received_samples);
    }

    #[test]
    fn forked_replications_match_from_zero_oracle() {
        let scale = tiny();
        let cfg = SimConfig {
            arch: Arch::Now { contention_free: true },
            nodes: 1,
            duration_s: scale.sim_s,
            ..Default::default()
        };
        let warmup_s = 0.25;
        let forked = replicate_forked(&cfg, &scale, warmup_s);
        assert_eq!(forked.len(), scale.reps);
        assert_ne!(forked[0].received_samples, forked[1].received_samples);
        let mut base = cfg.clone();
        base.seed = scale.seed;
        for (rep, m) in forked.iter().enumerate() {
            let oracle = paradyn_core::run_perturbed_from_zero(&base, warmup_s, rep);
            assert_eq!(m.events, oracle.events, "rep {rep}");
            assert_eq!(m.received_samples, oracle.received_samples, "rep {rep}");
            assert_eq!(
                m.latency_mean_s.to_bits(),
                oracle.latency_mean_s.to_bits(),
                "rep {rep}"
            );
        }
    }

    #[test]
    fn forked_factorial_covers_all_cells() {
        let scale = tiny();
        let fr = run_factorial_forked(
            vec!["nodes"],
            |bits| SimConfig {
                arch: Arch::Now { contention_free: true },
                nodes: if bits & 1 != 0 { 2 } else { 1 },
                duration_s: scale.sim_s,
                ..Default::default()
            },
            |m| m.pd_cpu_per_node_s,
            &scale,
            0.25,
        );
        assert_eq!(fr.rows.len(), 2);
        assert!(fr.rows.iter().all(|&(_, ov, _)| ov.is_finite() && ov > 0.0));
    }

    #[test]
    fn factorial_runs_all_configs() {
        let scale = tiny();
        let fr = run_factorial(
            vec!["nodes", "period"],
            |bits| SimConfig {
                arch: Arch::Now { contention_free: true },
                nodes: if bits & 1 != 0 { 2 } else { 1 },
                sampling_period_us: if bits & 2 != 0 { 40_000.0 } else { 10_000.0 },
                duration_s: scale.sim_s,
                ..Default::default()
            },
            |m| m.pd_cpu_per_node_s,
            &scale,
        );
        assert_eq!(fr.rows.len(), 4);
        let v = fr.overhead.analyze();
        // Sampling period must explain a dominant share of overhead
        // variation even at tiny scale.
        assert!(v.pct_of("B").unwrap() > 20.0, "{:?}", v.terms);
    }
}

//! The NOW simulation experiments: Table 4 / Figure 16 (factorial +
//! allocation of variation) and Figures 17–19 (policy comparisons).

use crate::fmt::{fnum, heading, ms, pct, TextTable};
use crate::scale::Scale;
use crate::simhelp::{mean_of, print_variation, replicate, run_factorial, FactorialRun};
use paradyn_core::{Arch, SimConfig};
use paradyn_workload::{comm_intensive, compute_intensive};

/// Factor levels of the NOW 2^4 design (Table 4): A = nodes {5, 50},
/// B = sampling period {2, 32 ms}, C = batch {1, 128}, D = app type
/// {compute-, communication-intensive}.
fn now_factorial_cfg(bits: usize, scale: &Scale) -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: false,
        },
        nodes: if bits & 1 != 0 { 50 } else { 5 },
        sampling_period_us: if bits & 2 != 0 { 32_000.0 } else { 2_000.0 },
        batch: if bits & 4 != 0 { 128 } else { 1 },
        app: if bits & 8 != 0 {
            comm_intensive()
        } else {
            compute_intensive()
        },
        duration_s: scale.sim_s,
        seed: scale.seed,
        ..Default::default()
    }
}

/// Run the NOW factorial once (shared by Table 4 and Figure 16).
pub fn now_factorial(scale: &Scale) -> FactorialRun {
    run_factorial(
        vec!["number of nodes", "sampling period", "forwarding policy", "application type"],
        |bits| now_factorial_cfg(bits, scale),
        |m| m.pd_cpu_per_node_s,
        scale,
    )
}

/// Reproduce Table 4: the 2^4·r NOW simulation results.
pub fn run_table4(scale: &Scale) {
    heading("Table 4: 2^k r factorial simulation results — NOW");
    let fr = now_factorial(scale);
    let mut t = TextTable::new(vec![
        "period ms",
        "nodes",
        "batch",
        "app type",
        "Pd CPU/node (s)",
        "latency/sample (ms)",
    ]);
    for &(bits, ov, lat) in &fr.rows {
        t.row(vec![
            if bits & 2 != 0 { "32" } else { "2" }.to_string(),
            if bits & 1 != 0 { "50" } else { "5" }.to_string(),
            if bits & 4 != 0 { "128" } else { "1" }.to_string(),
            if bits & 8 != 0 { "comm" } else { "compute" }.to_string(),
            fnum(ov, 4),
            fnum(lat, 3),
        ]);
    }
    t.print();
    println!(
        "(duration {} s, {} replications; the paper ran 40-100 s x 50 reps)",
        scale.sim_s, scale.reps
    );
}

/// Reproduce Figure 16: allocation of variation for the NOW design.
pub fn run_fig16(scale: &Scale) {
    heading("Figure 16: allocation of variation — NOW");
    let fr = now_factorial(scale);
    print_variation("variation explained for Pd CPU time", &fr.overhead);
    print_variation("variation explained for monitoring latency", &fr.latency);
    println!("paper: Pd CPU time dominated by B (sampling period, 68%) then C (policy, 19%);");
    println!("       latency dominated by C (policy, 46%) then A (nodes, 21%)");
}

/// Reproduce Figure 17: local-level CPU time and throughput, CF vs BF(32),
/// on one node with multiple application processes.
pub fn run_fig17(scale: &Scale) {
    heading("Figure 17: local metrics, CF vs BF(32) (one node)");
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 1,
        duration_s: scale.sim_s,
        seed: scale.seed,
        ..Default::default()
    };
    println!("\n(a) 8 application processes, varying sampling period");
    let mut t = TextTable::new(vec![
        "period ms",
        "Pd CPU (s) CF",
        "Pd CPU (s) BF",
        "throughput/s CF",
        "throughput/s BF",
    ]);
    for &p in &[5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let cf = replicate(
            &SimConfig {
                apps_per_node: 8,
                sampling_period_us: p * 1e3,
                ..base.clone()
            },
            scale,
        );
        let bf = replicate(
            &SimConfig {
                apps_per_node: 8,
                sampling_period_us: p * 1e3,
                batch: 32,
                ..base.clone()
            },
            scale,
        );
        t.row(vec![
            fnum(p, 0),
            fnum(mean_of(&cf, |m| m.pd_cpu_per_node_s), 3),
            fnum(mean_of(&bf, |m| m.pd_cpu_per_node_s), 3),
            fnum(mean_of(&cf, |m| m.throughput_per_s), 0),
            fnum(mean_of(&bf, |m| m.throughput_per_s), 0),
        ]);
    }
    t.print();

    println!("\n(b) sampling period = 40 ms, varying application processes");
    let mut t = TextTable::new(vec![
        "apps",
        "Pd CPU (s) CF",
        "Pd CPU (s) BF",
        "throughput/s CF",
        "throughput/s BF",
    ]);
    for &apps in &[1usize, 2, 4, 8, 16, 32] {
        let cf = replicate(
            &SimConfig {
                apps_per_node: apps,
                ..base.clone()
            },
            scale,
        );
        let bf = replicate(
            &SimConfig {
                apps_per_node: apps,
                batch: 32,
                ..base.clone()
            },
            scale,
        );
        t.row(vec![
            apps.to_string(),
            fnum(mean_of(&cf, |m| m.pd_cpu_per_node_s), 3),
            fnum(mean_of(&bf, |m| m.pd_cpu_per_node_s), 3),
            fnum(mean_of(&cf, |m| m.throughput_per_s), 0),
            fnum(mean_of(&bf, |m| m.throughput_per_s), 0),
        ]);
    }
    t.print();
    println!("paper shape: BF daemon CPU far below CF, gap widening at short periods/many apps;");
    println!("             BF sustains higher forwarding throughput once CF saturates");
}

/// Reproduce Figure 18: global metrics vs nodes and vs sampling period,
/// CF vs BF(32) vs uninstrumented (contention-free network).
pub fn run_fig18(scale: &Scale) {
    heading("Figure 18: global metrics, CF vs BF(32), contention-free network");
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        duration_s: scale.sim_s,
        seed: scale.seed,
        ..Default::default()
    };
    let series = |cfg: &SimConfig| {
        let runs = replicate(cfg, scale);
        (
            mean_of(&runs, |m| m.pd_cpu_util_per_node),
            mean_of(&runs, |m| m.main_cpu_util),
            mean_of(&runs, |m| m.app_cpu_util_per_node),
            mean_of(&runs, |m| m.fwd_latency_mean_s),
        )
    };
    println!("\n(a) sampling period = 40 ms, varying nodes");
    let mut t = TextTable::new(vec![
        "nodes",
        "Pd CPU %/node CF",
        "Pd CPU %/node BF",
        "Paradyn CPU % CF",
        "Paradyn CPU % BF",
        "app CPU % CF",
        "app CPU % uninst",
        "latency ms CF",
        "latency ms BF",
    ]);
    for &n in &[2usize, 4, 8, 16, 32] {
        let cf = series(&SimConfig { nodes: n, ..base.clone() });
        let bf = series(&SimConfig { nodes: n, batch: 32, ..base.clone() });
        let un = series(&SimConfig {
            nodes: n,
            instrumented: false,
            ..base.clone()
        });
        t.row(vec![
            n.to_string(),
            pct(cf.0),
            pct(bf.0),
            pct(cf.1),
            pct(bf.1),
            pct(cf.2),
            pct(un.2),
            ms(cf.3),
            ms(bf.3),
        ]);
    }
    t.print();

    println!("\n(b) nodes = 8, varying sampling period");
    let mut t = TextTable::new(vec![
        "period ms",
        "Pd CPU %/node CF",
        "Pd CPU %/node BF",
        "Paradyn CPU % CF",
        "Paradyn CPU % BF",
        "app CPU % CF",
        "latency ms CF",
        "latency ms BF",
    ]);
    for &p in &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let cf = series(&SimConfig {
            nodes: 8,
            sampling_period_us: p * 1e3,
            ..base.clone()
        });
        let bf = series(&SimConfig {
            nodes: 8,
            sampling_period_us: p * 1e3,
            batch: 32,
            ..base.clone()
        });
        t.row(vec![
            fnum(p, 0),
            pct(cf.0),
            pct(bf.0),
            pct(cf.1),
            pct(bf.1),
            pct(cf.2),
            ms(cf.3),
            ms(bf.3),
        ]);
    }
    t.print();
}

/// Reproduce Figure 19: batch-size sweep showing the knee (8 nodes,
/// contention-free network).
pub fn run_fig19(scale: &Scale) {
    heading("Figure 19: batch-size sweep (8 nodes)");
    let base = SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        duration_s: scale.sim_s,
        seed: scale.seed,
        ..Default::default()
    };
    for &p in &[1.0, 40.0, 64.0] {
        println!("\nsampling period = {p} ms");
        let mut t = TextTable::new(vec![
            "batch",
            "Pd CPU %/node",
            "Paradyn CPU %",
            "app CPU %/node",
            "fwd latency ms",
            "full latency ms",
        ]);
        for &b in &[1usize, 2, 4, 8, 16, 32, 64] {
            let runs = replicate(
                &SimConfig {
                    sampling_period_us: p * 1e3,
                    batch: b,
                    ..base.clone()
                },
                scale,
            );
            t.row(vec![
                b.to_string(),
                pct(mean_of(&runs, |m| m.pd_cpu_util_per_node)),
                pct(mean_of(&runs, |m| m.main_cpu_util)),
                pct(mean_of(&runs, |m| m.app_cpu_util_per_node)),
                ms(mean_of(&runs, |m| m.fwd_latency_mean_s)),
                ms(mean_of(&runs, |m| m.latency_mean_s)),
            ]);
        }
        t.print();
    }
    println!("paper shape: sharp overhead drop just past batch=1, levelling off at large");
    println!("batches (the knee); full latency grows with batch (accumulation trade-off)");
}

//! Validate a `BENCH_des.json` emitted by the `des_engine` bench against
//! the `paradyn.bench.des.v1` schema. Exits nonzero (with a reason on
//! stderr) on any violation, so `scripts/verify.sh` can gate on it.

use paradyn_bench::json::Json;

fn fail(msg: String) -> ! {
    eprintln!("check_bench_json: {msg}");
    std::process::exit(1);
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> f64 {
    obj.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| fail(format!("{ctx}: missing or non-numeric `{key}`")))
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> &'a str {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(format!("{ctx}: missing or non-string `{key}`")))
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_des.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")));

    if require_str(&doc, "schema", &path) != "paradyn.bench.des.v1" {
        fail(format!("{path}: unknown schema"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(format!("{path}: missing `results` array")));
    if results.is_empty() {
        fail(format!("{path}: empty `results`"));
    }
    let mut names = vec![];
    for (i, r) in results.iter().enumerate() {
        let ctx = format!("{path} results[{i}]");
        let name = require_str(r, "name", &ctx).to_string();
        let cal = require_str(r, "calendar", &ctx);
        if cal != "heap" && cal != "wheel" {
            fail(format!("{ctx}: calendar must be heap|wheel, got `{cal}`"));
        }
        for key in ["events", "median_ns", "p95_ns", "min_ns"] {
            let v = require_num(r, key, &ctx);
            if !(v >= 0.0) {
                fail(format!("{ctx}: `{key}` must be >= 0"));
            }
        }
        let eps = require_num(r, "events_per_sec", &ctx);
        if !(eps > 0.0) {
            fail(format!("{ctx}: `events_per_sec` must be > 0"));
        }
        let npe = require_num(r, "ns_per_event", &ctx);
        if !(npe > 0.0) {
            fail(format!("{ctx}: `ns_per_event` must be > 0"));
        }
        let occ = r
            .get("occupancy")
            .unwrap_or_else(|| fail(format!("{ctx}: missing `occupancy`")));
        for key in ["live", "occupied_buckets", "slab_slots"] {
            require_num(occ, key, &format!("{ctx} occupancy"));
        }
        names.push(name);
    }
    let speedups = doc
        .get("speedups")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(format!("{path}: missing `speedups` array")));
    for (i, s) in speedups.iter().enumerate() {
        let ctx = format!("{path} speedups[{i}]");
        let name = require_str(s, "name", &ctx);
        if !names.iter().any(|n| n == name) {
            fail(format!("{ctx}: speedup for unknown case `{name}`"));
        }
        let ratio = require_num(s, "wheel_over_heap", &ctx);
        if !(ratio > 0.0) {
            fail(format!("{ctx}: `wheel_over_heap` must be > 0"));
        }
    }
    println!(
        "check_bench_json: {path} ok ({} results, {} speedups)",
        results.len(),
        speedups.len()
    );
}

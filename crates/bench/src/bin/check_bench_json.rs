//! Validate a `BENCH_des.json` emitted by the `des_engine` bench against
//! the `paradyn.bench.des.v1` schema, and — for non-smoke runs — enforce
//! the throughput ratchet in a sibling `BENCH_floor.json`
//! (`paradyn.bench.floor.v1`): any case below its floor fails the check,
//! and cases with sustained headroom print a suggestion to raise the
//! floor. Exits nonzero (with a reason on stderr) on any violation, so
//! `scripts/verify.sh` can gate on it.

use paradyn_bench::json::Json;

fn fail(msg: String) -> ! {
    eprintln!("check_bench_json: {msg}");
    std::process::exit(1);
}

fn require_num(obj: &Json, key: &str, ctx: &str) -> f64 {
    obj.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| fail(format!("{ctx}: missing or non-numeric `{key}`")))
}

fn require_str<'a>(obj: &'a Json, key: &str, ctx: &str) -> &'a str {
    obj.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail(format!("{ctx}: missing or non-string `{key}`")))
}

/// Enforce `BENCH_floor.json` (if present next to the bench file) against
/// the measured `(name, calendar, events_per_sec)` triples. Regressions
/// below a floor are fatal; headroom above `floor * ratchet_margin` only
/// prints a ratchet suggestion.
fn check_floors(bench_path: &str, results: &[(String, String, f64)]) {
    let floor_path = std::path::Path::new(bench_path)
        .with_file_name("BENCH_floor.json")
        .to_string_lossy()
        .into_owned();
    let Ok(text) = std::fs::read_to_string(&floor_path) else {
        println!("check_bench_json: no {floor_path}, skipping throughput ratchet");
        return;
    };
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(format!("{floor_path}: {e}")));
    if require_str(&doc, "schema", &floor_path) != "paradyn.bench.floor.v1" {
        fail(format!("{floor_path}: unknown schema"));
    }
    let margin = doc
        .get("ratchet_margin")
        .and_then(Json::as_num)
        .unwrap_or(1.5);
    if !(margin >= 1.0) {
        fail(format!("{floor_path}: `ratchet_margin` must be >= 1"));
    }
    let floors = doc
        .get("floors")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(format!("{floor_path}: missing `floors` array")));
    if floors.is_empty() {
        fail(format!("{floor_path}: empty `floors`"));
    }
    let mut regressions = vec![];
    let mut checked = 0usize;
    for (i, f) in floors.iter().enumerate() {
        let ctx = format!("{floor_path} floors[{i}]");
        let name = require_str(f, "name", &ctx);
        let cal = require_str(f, "calendar", &ctx);
        let floor = require_num(f, "min_events_per_sec", &ctx);
        if !(floor > 0.0) {
            fail(format!("{ctx}: `min_events_per_sec` must be > 0"));
        }
        let Some(&(_, _, eps)) = results
            .iter()
            .find(|(n, c, _)| n == name && c == cal)
        else {
            fail(format!(
                "{ctx}: floor for `{name}`/{cal} has no matching bench result"
            ));
        };
        checked += 1;
        if eps < floor {
            regressions.push(format!(
                "  {name}/{cal}: {eps:.0} events/s is below the floor of {floor:.0} \
                 ({:.1}% of floor)",
                100.0 * eps / floor
            ));
        } else if eps > floor * margin {
            println!(
                "check_bench_json: ratchet hint: {name}/{cal} at {eps:.0} events/s has \
                 {:.2}x headroom over its {floor:.0} floor — consider raising it",
                eps / floor
            );
        }
    }
    if !regressions.is_empty() {
        fail(format!(
            "throughput regression against {floor_path}:\n{}",
            regressions.join("\n")
        ));
    }
    println!("check_bench_json: {floor_path} ok ({checked} floors held)");
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_des.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")));

    if require_str(&doc, "schema", &path) != "paradyn.bench.des.v1" {
        fail(format!("{path}: unknown schema"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(format!("{path}: missing `results` array")));
    if results.is_empty() {
        fail(format!("{path}: empty `results`"));
    }
    let mut names = vec![];
    let mut measured: Vec<(String, String, f64)> = vec![];
    for (i, r) in results.iter().enumerate() {
        let ctx = format!("{path} results[{i}]");
        let name = require_str(r, "name", &ctx).to_string();
        let cal = require_str(r, "calendar", &ctx);
        if cal != "heap" && cal != "wheel" {
            fail(format!("{ctx}: calendar must be heap|wheel, got `{cal}`"));
        }
        for key in ["events", "median_ns", "p95_ns", "min_ns"] {
            let v = require_num(r, key, &ctx);
            if !(v >= 0.0) {
                fail(format!("{ctx}: `{key}` must be >= 0"));
            }
        }
        let eps = require_num(r, "events_per_sec", &ctx);
        if !(eps > 0.0) {
            fail(format!("{ctx}: `events_per_sec` must be > 0"));
        }
        let npe = require_num(r, "ns_per_event", &ctx);
        if !(npe > 0.0) {
            fail(format!("{ctx}: `ns_per_event` must be > 0"));
        }
        let occ = r
            .get("occupancy")
            .unwrap_or_else(|| fail(format!("{ctx}: missing `occupancy`")));
        for key in ["live", "occupied_buckets", "slab_slots"] {
            require_num(occ, key, &format!("{ctx} occupancy"));
        }
        measured.push((name.clone(), cal.to_string(), eps));
        names.push(name);
    }
    let speedups = doc
        .get("speedups")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(format!("{path}: missing `speedups` array")));
    for (i, s) in speedups.iter().enumerate() {
        let ctx = format!("{path} speedups[{i}]");
        let name = require_str(s, "name", &ctx);
        if !names.iter().any(|n| n == name) {
            fail(format!("{ctx}: speedup for unknown case `{name}`"));
        }
        let ratio = require_num(s, "wheel_over_heap", &ctx);
        if !(ratio > 0.0) {
            fail(format!("{ctx}: `wheel_over_heap` must be > 0"));
        }
    }
    // The `sharded` array (emitted by the `sharded_run` bench group) adds
    // a speedup-vs-serial column per shard count; every row must point at
    // a real result. Older bench files without the array still validate —
    // the sharded floors in BENCH_floor.json are what force the group to
    // actually run (a floor with no matching result is fatal above).
    let sharded = doc.get("sharded").and_then(Json::as_arr);
    if let Some(rows) = sharded {
        for (i, s) in rows.iter().enumerate() {
            let ctx = format!("{path} sharded[{i}]");
            let name = require_str(s, "name", &ctx);
            if !names.iter().any(|n| n == name) {
                fail(format!("{ctx}: sharded row for unknown case `{name}`"));
            }
            let shards = require_num(s, "shards", &ctx);
            if !(shards >= 0.0 && shards.fract() == 0.0) {
                fail(format!("{ctx}: `shards` must be a whole number >= 0"));
            }
            let eps = require_num(s, "events_per_sec", &ctx);
            if !(eps > 0.0) {
                fail(format!("{ctx}: `events_per_sec` must be > 0"));
            }
            let sp = require_num(s, "speedup_vs_serial", &ctx);
            if !(sp > 0.0) {
                fail(format!("{ctx}: `speedup_vs_serial` must be > 0"));
            }
        }
    }
    println!(
        "check_bench_json: {path} ok ({} results, {} speedups, {} sharded rows)",
        results.len(),
        speedups.len(),
        sharded.map_or(0, |r| r.len())
    );
    // The throughput ratchet only applies to full (non-smoke) runs; smoke
    // runs use a single unwarmed iteration and would trip any honest floor.
    if matches!(doc.get("smoke"), Some(Json::Bool(true))) {
        println!("check_bench_json: smoke run, skipping throughput ratchet");
    } else {
        check_floors(&path, &measured);
    }
}

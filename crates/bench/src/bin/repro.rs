//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale quick|standard|full] [--reps N] [--sim-secs S]
//!       [--seed N] [--csv DIR] <artifact> [<artifact> ...]
//! repro all        # every artifact in paper order
//! repro list       # show available artifact ids
//! ```
//!
//! With `--csv DIR`, every printed table is also written to
//! `DIR/<artifact>_<n>.csv` for plotting.

use paradyn_bench::{run_artifact, Scale, ARTIFACTS};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale quick|standard|full] [--reps N] [--sim-secs S] [--seed N] \
         [--csv DIR] <artifact>... | all | list"
    );
    eprintln!("artifacts: {}", ARTIFACTS.join(" "));
    ExitCode::FAILURE
}

/// Exit quietly (conventional 141 = 128+SIGPIPE) when stdout is a closed
/// pipe (`repro all | head`), instead of the default panic backtrace.
fn exit_cleanly_on_broken_pipe() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(141);
        }
        default_hook(info);
    }));
}

fn main() -> ExitCode {
    exit_cleanly_on_broken_pipe();
    let mut scale = Scale::standard();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut ids: Vec<String> = vec![];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(name) = args.next() else {
                    return usage();
                };
                match Scale::from_name(&name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {name:?}");
                        return usage();
                    }
                }
            }
            "--reps" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => scale.reps = n,
                _ => return usage(),
            },
            "--sim-secs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) if s > 0.0 => {
                    scale.sim_s = s;
                    scale.sim_big_s = s;
                }
                _ => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => scale.seed = s,
                _ => return usage(),
            },
            "--csv" => match args.next() {
                Some(dir) => {
                    let dir = std::path::PathBuf::from(dir);
                    if let Err(e) = std::fs::create_dir_all(&dir) {
                        eprintln!("cannot create {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                    csv_dir = Some(dir);
                }
                None => return usage(),
            },
            "list" => {
                for id in ARTIFACTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ARTIFACTS.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }
    println!(
        "# paradyn-isim reproduction | scale: reps={} sim={}s/{}s testbed={:?} seed={:#x}",
        scale.reps, scale.sim_s, scale.sim_big_s, scale.testbed, scale.seed
    );
    for id in &ids {
        let t0 = std::time::Instant::now();
        paradyn_bench::fmt::set_csv_output(csv_dir.clone(), id);
        let known = run_artifact(id, &scale);
        paradyn_bench::fmt::set_csv_output(None, "");
        if !known {
            eprintln!("unknown artifact {id:?} (try `repro list`)");
            return ExitCode::FAILURE;
        }
        println!("[{} completed in {:.1}s]", id, t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

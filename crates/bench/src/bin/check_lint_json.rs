//! Validate a `paradyn.lint.v1` report (as emitted by
//! `paradyn-lint --format json`) against the schema AND against the
//! compiled-in rule/marker registries: the embedded `rules`/`markers`
//! arrays must match `paradyn_lint::RULES`/`MARKERS` name-for-name, every
//! finding must cite a known rule (or an engine meta-rule), and the
//! structural fields must be present and well-typed. Exits nonzero with a
//! reason on stderr, so `scripts/verify.sh` and `tests/lint_clean.rs` can
//! gate on it.
//!
//! ```text
//! paradyn-lint --format json > lint.json
//! cargo run -p paradyn-bench --bin check_lint_json -- lint.json
//! ```

use paradyn_bench::json::Json;
use paradyn_lint::{MARKERS, RULES};

fn fail(msg: String) -> ! {
    eprintln!("check_lint_json: {msg}");
    std::process::exit(1);
}

/// Meta-rules the engine emits itself, outside the rule registry.
const META_RULES: &[&str] = &["suppression", "baseline"];

/// Validate one registry array (`rules` or `markers`) against its
/// compiled-in counterpart, name-for-name in order.
fn check_registry(doc: &Json, key: &str, expected: &[(&str, &str)]) {
    let arr = doc
        .get(key)
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(format!("missing `{key}` array")));
    if arr.len() != expected.len() {
        fail(format!(
            "`{key}` lists {} entries, registry has {} — report and binary disagree",
            arr.len(),
            expected.len()
        ));
    }
    for (i, (entry, (name, _))) in arr.iter().zip(expected).enumerate() {
        let ctx = format!("{key}[{i}]");
        let got = entry
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{ctx}: missing `name`")));
        if got != *name {
            fail(format!("{ctx}: name `{got}` != registry `{name}`"));
        }
        let desc = entry
            .get("description")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{ctx}: missing `description`")));
        if desc.is_empty() {
            fail(format!("{ctx}: empty description"));
        }
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| fail("usage: check_lint_json <lint.json>".into()));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")));

    match doc.get("schema").and_then(Json::as_str) {
        Some("paradyn.lint.v1") => {}
        other => fail(format!("unknown schema {other:?}")),
    }
    let files = doc
        .get("files_scanned")
        .and_then(Json::as_num)
        .unwrap_or_else(|| fail("missing `files_scanned`".into()));
    if files < 1.0 {
        fail("`files_scanned` is zero — lint walked nothing".into());
    }

    check_registry(&doc, "rules", RULES);
    check_registry(&doc, "markers", MARKERS);

    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("missing `findings` array".into()));
    for (i, f) in findings.iter().enumerate() {
        let ctx = format!("findings[{i}]");
        let rule = f
            .get("rule")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{ctx}: missing `rule`")));
        let known =
            RULES.iter().any(|(n, _)| *n == rule) || META_RULES.contains(&rule);
        if !known {
            fail(format!("{ctx}: unknown rule `{rule}`"));
        }
        for key in ["path", "message"] {
            if f.get(key).and_then(Json::as_str).is_none() {
                fail(format!("{ctx}: missing `{key}`"));
            }
        }
        for key in ["line", "col"] {
            if f.get(key).and_then(Json::as_num).is_none() {
                fail(format!("{ctx}: missing `{key}`"));
            }
        }
    }

    if doc.get("suppressed").and_then(Json::as_num).is_none() {
        fail("missing `suppressed`".into());
    }
    let baselined = doc
        .get("baselined")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("missing `baselined` array".into()));
    for (i, b) in baselined.iter().enumerate() {
        let ctx = format!("baselined[{i}]");
        if b.get("rule").and_then(Json::as_str).is_none()
            || b.get("path").and_then(Json::as_str).is_none()
            || b.get("allowed").and_then(Json::as_num).is_none()
        {
            fail(format!("{ctx}: needs rule/path/allowed"));
        }
    }
    if doc.get("stream_registry").and_then(Json::as_arr).is_none() {
        fail("missing `stream_registry` array".into());
    }
    let clean = match doc.get("clean") {
        Some(Json::Bool(b)) => *b,
        _ => fail("missing boolean `clean`".into()),
    };
    if clean != findings.is_empty() {
        fail(format!(
            "`clean` = {clean} contradicts {} finding(s)",
            findings.len()
        ));
    }

    println!(
        "check_lint_json: OK — {} rules, {} markers, {} finding(s), clean={clean}",
        RULES.len(),
        MARKERS.len(),
        findings.len()
    );
}

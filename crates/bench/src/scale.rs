//! Experiment scale presets: the paper's full 2^k·r = 50-replication,
//! 100-second runs are expensive; the harness defaults to a standard scale
//! that preserves every comparison and offers `--quick` / `--full`.

use std::time::Duration;

/// Scale knobs shared by all reproduction experiments.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Replications per simulated configuration (paper: 50).
    pub reps: usize,
    /// Simulated duration for small systems (paper: 50–100 s).
    pub sim_s: f64,
    /// Simulated duration for large (≥ 64-node) systems.
    pub sim_big_s: f64,
    /// Wall-clock duration per testbed measurement run.
    pub testbed: Duration,
    /// Synthetic-trace duration for the characterization experiments (µs).
    pub trace_us: f64,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Smoke-test scale: every experiment runs in seconds.
    pub fn quick() -> Scale {
        Scale {
            reps: 2,
            sim_s: 4.0,
            sim_big_s: 2.0,
            testbed: Duration::from_millis(800),
            trace_us: 10.0e6,
            seed: 0x5EED_CAFE,
        }
    }

    /// Default scale: full repro in minutes; CIs tight enough for every
    /// comparison.
    pub fn standard() -> Scale {
        Scale {
            reps: 5,
            sim_s: 20.0,
            sim_big_s: 10.0,
            testbed: Duration::from_secs(3),
            trace_us: 60.0e6,
            seed: 0x5EED_CAFE,
        }
    }

    /// Paper-fidelity scale (50 replications, long runs) — expect a long
    /// wall-clock time.
    pub fn full() -> Scale {
        Scale {
            reps: 50,
            sim_s: 100.0,
            sim_big_s: 50.0,
            testbed: Duration::from_secs(10),
            trace_us: 100.0e6,
            seed: 0x5EED_CAFE,
        }
    }

    /// Parse from CLI-ish arguments; `None` on unknown preset.
    pub fn from_name(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::quick()),
            "standard" => Some(Scale::standard()),
            "full" => Some(Scale::full()),
            _ => None,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let q = Scale::quick();
        let s = Scale::standard();
        let f = Scale::full();
        assert!(q.reps <= s.reps && s.reps <= f.reps);
        assert!(q.sim_s <= s.sim_s && s.sim_s <= f.sim_s);
        assert!(q.testbed <= s.testbed);
    }

    #[test]
    fn parse_by_name() {
        assert_eq!(Scale::from_name("quick").unwrap().reps, 2);
        assert_eq!(Scale::from_name("full").unwrap().reps, 50);
        assert!(Scale::from_name("warp").is_none());
    }
}

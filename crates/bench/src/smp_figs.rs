//! The SMP simulation experiments: Table 5 / Figure 20 (factorial) and
//! Figures 21–24 (daemon-count studies).

use crate::fmt::{fnum, heading, ms, pct, TextTable};
use crate::scale::Scale;
use crate::simhelp::{mean_of, print_variation, replicate, run_factorial, FactorialRun};
use paradyn_core::{Arch, SimConfig};
use paradyn_workload::{comm_intensive, compute_intensive};

/// Factor levels of the SMP 2^4 design (Table 5): A = nodes {5, 50}
/// (apps = nodes, per Section 4.3), B = period {1, 32 ms}, C = batch
/// {1, 128}, D = app type.
fn smp_factorial_cfg(bits: usize, scale: &Scale) -> SimConfig {
    let nodes = if bits & 1 != 0 { 50 } else { 5 };
    SimConfig {
        arch: Arch::Smp,
        nodes,
        apps_per_node: nodes,
        pds: 1,
        sampling_period_us: if bits & 2 != 0 { 32_000.0 } else { 1_000.0 },
        batch: if bits & 4 != 0 { 128 } else { 1 },
        app: if bits & 8 != 0 {
            comm_intensive()
        } else {
            compute_intensive()
        },
        duration_s: scale.sim_s,
        seed: scale.seed,
        ..Default::default()
    }
}

/// Run the SMP factorial (shared by Table 5 and Figure 20).
pub fn smp_factorial(scale: &Scale) -> FactorialRun {
    run_factorial(
        vec!["number of nodes", "sampling period", "forwarding policy", "application type"],
        |bits| smp_factorial_cfg(bits, scale),
        |m| m.is_cpu_util_per_node * m.duration_s, // IS CPU time per node
        scale,
    )
}

/// Reproduce Table 5.
pub fn run_table5(scale: &Scale) {
    heading("Table 5: 2^k r factorial simulation results — SMP (apps = nodes)");
    let fr = smp_factorial(scale);
    let mut t = TextTable::new(vec![
        "period ms",
        "nodes",
        "batch",
        "app type",
        "IS CPU/node (s)",
        "latency/sample (ms)",
    ]);
    for &(bits, ov, lat) in &fr.rows {
        t.row(vec![
            if bits & 2 != 0 { "32" } else { "1" }.to_string(),
            if bits & 1 != 0 { "50" } else { "5" }.to_string(),
            if bits & 4 != 0 { "128" } else { "1" }.to_string(),
            if bits & 8 != 0 { "comm" } else { "compute" }.to_string(),
            fnum(ov, 4),
            fnum(lat, 3),
        ]);
    }
    t.print();
}

/// Reproduce Figure 20: allocation of variation for the SMP design.
pub fn run_fig20(scale: &Scale) {
    heading("Figure 20: allocation of variation — SMP");
    let fr = smp_factorial(scale);
    print_variation("variation explained for IS CPU time", &fr.overhead);
    print_variation("variation explained for monitoring latency", &fr.latency);
    println!("paper: IS CPU time led by A (nodes, 33%) then B (period); latency led by");
    println!("       A and C (forwarding policy), 23% each");
}

fn smp_base(scale: &Scale) -> SimConfig {
    SimConfig {
        arch: Arch::Smp,
        nodes: 16,
        apps_per_node: 32,
        duration_s: scale.sim_s,
        seed: scale.seed,
        ..Default::default()
    }
}

/// Reproduce Figure 21: daemon data-forwarding throughput vs CPU count for
/// 1–4 daemons, CF vs BF(32) (each CPU runs one application process).
pub fn run_fig21(scale: &Scale) {
    heading("Figure 21: SMP daemon throughput vs CPUs, 1-4 Pds (40 ms)");
    for (label, batch) in [("CF", 1usize), ("BF(32)", 32)] {
        println!("\n{label}");
        let mut t = TextTable::new(vec![
            "CPUs",
            "tput/s 1 Pd",
            "tput/s 2 Pds",
            "tput/s 3 Pds",
            "tput/s 4 Pds",
        ]);
        for &cpus in &[2usize, 4, 8, 12, 16] {
            let mut cells = vec![cpus.to_string()];
            for pds in 1..=4usize {
                let cfg = SimConfig {
                    nodes: cpus,
                    apps_per_node: cpus,
                    pds: pds.min(cpus),
                    batch,
                    ..smp_base(scale)
                };
                let runs = replicate(&cfg, scale);
                cells.push(fnum(mean_of(&runs, |m| m.throughput_per_s), 0));
            }
            t.row(cells);
        }
        t.print();
    }
    println!("paper shape: under CF extra daemons raise throughput at high CPU counts;");
    println!("under BF one daemon suffices up to 16 CPUs");
}

/// Reproduce Figure 22: global metrics vs node (CPU) count for 1–4
/// daemons (40 ms, 32 apps).
pub fn run_fig22(scale: &Scale) {
    heading("Figure 22: SMP metrics vs nodes, 1-4 Pds (40 ms, 32 apps)");
    for (label, batch) in [("CF", 1usize), ("BF(32)", 32)] {
        println!("\n{label}");
        let mut t = TextTable::new(vec![
            "nodes",
            "IS CPU %/node 1Pd",
            "IS CPU %/node 4Pd",
            "latency ms 1Pd",
            "latency ms 4Pd",
            "app CPU %/node 1Pd",
            "app CPU % uninst",
        ]);
        for &n in &[2usize, 4, 8, 16, 24, 32] {
            let run_with = |pds: usize, instrumented: bool| {
                let cfg = SimConfig {
                    nodes: n,
                    pds,
                    batch,
                    instrumented,
                    ..smp_base(scale)
                };
                replicate(&cfg, scale)
            };
            let p1 = run_with(1, true);
            let p4 = run_with(4, true);
            let un = run_with(1, false);
            t.row(vec![
                n.to_string(),
                pct(mean_of(&p1, |m| m.is_cpu_util_per_node)),
                pct(mean_of(&p4, |m| m.is_cpu_util_per_node)),
                ms(mean_of(&p1, |m| m.fwd_latency_mean_s)),
                ms(mean_of(&p4, |m| m.fwd_latency_mean_s)),
                pct(mean_of(&p1, |m| m.app_cpu_util_per_node)),
                pct(mean_of(&un, |m| m.app_cpu_util_per_node)),
            ]);
        }
        t.print();
    }
    println!("paper shape: per-node IS overhead falls with more CPUs; the shared bus");
    println!("becomes the bottleneck at high CPU counts, depressing app CPU time");
}

/// Reproduce Figure 23: global metrics vs sampling period for 1–4 daemons
/// (16 nodes, 32 apps) — including the pipe-full blocking collapse at
/// small periods.
pub fn run_fig23(scale: &Scale) {
    heading("Figure 23: SMP metrics vs sampling period, 1-4 Pds (16 nodes, 32 apps)");
    for (label, batch) in [("CF", 1usize), ("BF(32)", 32)] {
        println!("\n{label}");
        let mut t = TextTable::new(vec![
            "period ms",
            "IS CPU %/node 1Pd",
            "IS CPU %/node 4Pd",
            "latency ms 1Pd",
            "app CPU % 1Pd",
            "app CPU % 4Pd",
            "blocked 1Pd",
        ]);
        for &p in &[2.0, 5.0, 10.0, 20.0, 40.0, 64.0] {
            let run_with = |pds: usize| {
                replicate(
                    &SimConfig {
                        sampling_period_us: p * 1e3,
                        pds,
                        batch,
                        ..smp_base(scale)
                    },
                    scale,
                )
            };
            let p1 = run_with(1);
            let p4 = run_with(4);
            t.row(vec![
                fnum(p, 0),
                pct(mean_of(&p1, |m| m.is_cpu_util_per_node)),
                pct(mean_of(&p4, |m| m.is_cpu_util_per_node)),
                ms(mean_of(&p1, |m| m.fwd_latency_mean_s)),
                pct(mean_of(&p1, |m| m.app_cpu_util_per_node)),
                pct(mean_of(&p4, |m| m.app_cpu_util_per_node)),
                fnum(mean_of(&p1, |m| m.blocked_deposits as f64), 0),
            ]);
        }
        t.print();
    }
    println!("paper shape: below ~10 ms the pipe fills and blocks the application —");
    println!("app CPU drops sharply with one daemon; extra daemons relieve it; BF beats CF");
}

/// Reproduce Figure 24: global metrics vs application-process count for
/// 1–4 daemons (40 ms, 16 nodes).
pub fn run_fig24(scale: &Scale) {
    heading("Figure 24: SMP metrics vs app processes, 1-4 Pds (40 ms, 16 nodes)");
    for (label, batch) in [("CF", 1usize), ("BF(32)", 32)] {
        println!("\n{label}");
        let mut t = TextTable::new(vec![
            "apps",
            "IS CPU %/node 1Pd",
            "IS CPU %/node 4Pd",
            "latency ms 1Pd",
            "app CPU % 1Pd",
        ]);
        for &apps in &[4usize, 8, 16, 32, 48, 64] {
            let run_with = |pds: usize| {
                replicate(
                    &SimConfig {
                        apps_per_node: apps,
                        pds,
                        batch,
                        ..smp_base(scale)
                    },
                    scale,
                )
            };
            let p1 = run_with(1);
            let p4 = run_with(4);
            t.row(vec![
                apps.to_string(),
                pct(mean_of(&p1, |m| m.is_cpu_util_per_node)),
                pct(mean_of(&p4, |m| m.is_cpu_util_per_node)),
                ms(mean_of(&p1, |m| m.fwd_latency_mean_s)),
                pct(mean_of(&p1, |m| m.app_cpu_util_per_node)),
            ]);
        }
        t.print();
    }
}

//! The Section 3 analytic figures: 9–10 (NOW), 12–13 (SMP), 14–15 (MPP).

use crate::fmt::{fnum, heading, pct, TextTable};
use paradyn_analytic::{
    mpp::{self, Forwarding},
    now, smp, Demands, Knobs,
};
use paradyn_workload::RoccParams;

fn demands(batch: usize) -> Demands {
    // The paper's analytic model charges one demand per batch regardless of
    // size (no marginals) — see inputs::Demands.
    Demands::from_params(&RoccParams::default(), batch, false)
}

/// Figure 9: analytic NOW metrics vs number of nodes (40 ms) and vs
/// sampling period (8 nodes), CF vs BF(128).
pub fn run_fig9() {
    heading("Figure 9: analytic NOW — CF vs BF");
    let nodes = [2usize, 4, 8, 16, 32];
    println!("\n(a) sampling period = 40 ms, varying nodes");
    let mut t = TextTable::new(vec![
        "nodes",
        "Pd CPU %/node CF",
        "Pd CPU %/node BF",
        "Paradyn CPU % CF",
        "Paradyn CPU % BF",
        "app CPU %/node CF",
        "latency ms CF",
        "latency ms BF",
    ]);
    for &n in &nodes {
        let kc = Knobs { nodes: n, ..Default::default() };
        let kb = Knobs { nodes: n, batch: 128, ..Default::default() };
        let mc = now::now_metrics(&kc, &demands(1));
        let mb = now::now_metrics(&kb, &demands(128));
        t.row(vec![
            n.to_string(),
            pct(mc.pd_cpu_util),
            pct(mb.pd_cpu_util),
            pct(mc.main_cpu_util),
            pct(mb.main_cpu_util),
            pct(mc.app_cpu_util),
            fnum(mc.latency_s * 1e3, 3),
            fnum(mb.latency_s * 1e3, 3),
        ]);
    }
    t.print();

    println!("\n(b) nodes = 8, varying sampling period");
    let periods = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let mut t = TextTable::new(vec![
        "period ms",
        "Pd CPU %/node CF",
        "Pd CPU %/node BF",
        "Paradyn CPU % CF",
        "Paradyn CPU % BF",
        "app CPU %/node CF",
        "latency ms CF",
    ]);
    for &ms in &periods {
        let kc = Knobs { sampling_period_s: ms * 1e-3, ..Default::default() };
        let kb = Knobs { sampling_period_s: ms * 1e-3, batch: 128, ..kc };
        let mc = now::now_metrics(&kc, &demands(1));
        let mb = now::now_metrics(&kb, &demands(128));
        t.row(vec![
            fnum(ms, 0),
            pct(mc.pd_cpu_util),
            pct(mb.pd_cpu_util),
            pct(mc.main_cpu_util),
            pct(mb.main_cpu_util),
            pct(mc.app_cpu_util),
            fnum(mc.latency_s * 1e3, 3),
        ]);
    }
    t.print();
}

/// Figure 10: analytic NOW metrics vs batch size at three sampling periods
/// (8 nodes).
pub fn run_fig10() {
    heading("Figure 10: analytic NOW — batch-size sweep (8 nodes)");
    let batches = [1usize, 2, 4, 8, 16, 32, 64, 128];
    for &ms in &[1.0, 40.0, 64.0] {
        println!("\nsampling period = {ms} ms");
        let mut t = TextTable::new(vec![
            "batch",
            "Pd CPU %/node",
            "Paradyn CPU %",
            "app CPU %/node",
            "latency ms",
        ]);
        for &b in &batches {
            let k = Knobs {
                sampling_period_s: ms * 1e-3,
                batch: b,
                ..Default::default()
            };
            let m = now::now_metrics(&k, &demands(b));
            t.row(vec![
                b.to_string(),
                pct(m.pd_cpu_util),
                pct(m.main_cpu_util),
                pct(m.app_cpu_util),
                fnum(m.latency_s * 1e3, 3),
            ]);
        }
        t.print();
    }
}

fn smp_base() -> Knobs {
    Knobs {
        nodes: 16,
        apps_per_node: 32,
        ..Default::default()
    }
}

/// Figure 12: analytic SMP metrics vs sampling period for 1–4 daemons,
/// CF vs BF(128).
pub fn run_fig12() {
    heading("Figure 12: analytic SMP — sampling sweep, 1-4 Pds (16 CPUs, 32 apps)");
    for (policy, batch) in [("CF", 1usize), ("BF(128)", 128)] {
        println!("\n{policy}");
        let mut t = TextTable::new(vec![
            "period ms",
            "IS CPU % (1 Pd)",
            "IS CPU % (2)",
            "IS CPU % (3)",
            "IS CPU % (4)",
            "latency ms (1 Pd)",
            "app CPU % (1 Pd)",
        ]);
        for &ms in &[1.0, 5.0, 10.0, 20.0, 40.0, 64.0] {
            let metric = |pds: usize| {
                smp::smp_metrics(
                    &Knobs {
                        sampling_period_s: ms * 1e-3,
                        batch,
                        pds,
                        ..smp_base()
                    },
                    &demands(batch),
                )
            };
            let m1 = metric(1);
            t.row(vec![
                fnum(ms, 0),
                pct(m1.is_cpu_util),
                pct(metric(2).is_cpu_util),
                pct(metric(3).is_cpu_util),
                pct(metric(4).is_cpu_util),
                fnum(m1.latency_s * 1e3, 4),
                pct(m1.app_cpu_util),
            ]);
        }
        t.print();
    }
}

/// Figure 13: analytic SMP metrics vs application-process count for 1–4
/// daemons (40 ms, 16 CPUs).
pub fn run_fig13() {
    heading("Figure 13: analytic SMP — app-count sweep, 1-4 Pds (40 ms, 16 CPUs)");
    for (policy, batch) in [("CF", 1usize), ("BF(128)", 128)] {
        println!("\n{policy}");
        let mut t = TextTable::new(vec![
            "apps",
            "IS CPU % (1 Pd)",
            "IS CPU % (4 Pds)",
            "latency ms (1 Pd)",
            "app CPU % (1 Pd)",
        ]);
        for &apps in &[1usize, 2, 3, 4, 5, 6] {
            let metric = |pds: usize| {
                smp::smp_metrics(
                    &Knobs {
                        apps_per_node: apps,
                        batch,
                        pds,
                        ..smp_base()
                    },
                    &demands(batch),
                )
            };
            let m1 = metric(1);
            t.row(vec![
                apps.to_string(),
                pct(m1.is_cpu_util),
                pct(metric(4).is_cpu_util),
                fnum(m1.latency_s * 1e3, 4),
                pct(m1.app_cpu_util),
            ]);
        }
        t.print();
    }
}

fn mpp_base() -> Knobs {
    Knobs {
        nodes: 256,
        batch: 32,
        ..Default::default()
    }
}

/// Figure 14: analytic MPP metrics vs sampling period, direct vs tree
/// (256 nodes, BF).
pub fn run_fig14() {
    heading("Figure 14: analytic MPP — sampling sweep, direct vs tree (256 nodes, BF 32)");
    let mut t = TextTable::new(vec![
        "period ms",
        "Pd CPU %/node direct",
        "Pd CPU %/node tree",
        "Paradyn CPU % direct",
        "Paradyn CPU % tree",
        "app CPU %/node direct",
        "latency ms direct",
        "latency ms tree",
    ]);
    for &ms in &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let k = Knobs {
            sampling_period_s: ms * 1e-3,
            ..mpp_base()
        };
        let d = mpp::mpp_metrics(&k, &demands(32), Forwarding::Direct);
        let tr = mpp::mpp_metrics(&k, &demands(32), Forwarding::BinaryTree);
        t.row(vec![
            fnum(ms, 0),
            pct(d.pd_cpu_util),
            pct(tr.pd_cpu_util),
            pct(d.main_cpu_util),
            pct(tr.main_cpu_util),
            pct(d.app_cpu_util),
            fnum(d.latency_s * 1e3, 3),
            fnum(tr.latency_s * 1e3, 3),
        ]);
    }
    t.print();
}

/// Figure 15: analytic MPP metrics vs node count, direct vs tree (40 ms, BF).
pub fn run_fig15() {
    heading("Figure 15: analytic MPP — node sweep, direct vs tree (40 ms, BF 32)");
    let mut t = TextTable::new(vec![
        "nodes",
        "Pd CPU %/node direct",
        "Pd CPU %/node tree",
        "Paradyn CPU % direct",
        "Paradyn CPU % tree",
        "app CPU %/node direct",
        "latency ms direct",
        "latency ms tree",
    ]);
    for &n in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
        let k = Knobs { nodes: n, ..mpp_base() };
        let d = mpp::mpp_metrics(&k, &demands(32), Forwarding::Direct);
        let tr = mpp::mpp_metrics(&k, &demands(32), Forwarding::BinaryTree);
        t.row(vec![
            n.to_string(),
            fnum(d.pd_cpu_util * 100.0, 4),
            fnum(tr.pd_cpu_util * 100.0, 4),
            pct(d.main_cpu_util),
            pct(tr.main_cpu_util),
            pct(d.app_cpu_util),
            fnum(d.latency_s * 1e3, 3),
            fnum(tr.latency_s * 1e3, 3),
        ]);
    }
    t.print();
}

//! The fault-injection sweep: CF vs BF under daemon-crash and lossy-link
//! faults, across every pipe overflow policy. This artifact goes beyond
//! the paper's fault-free measurements and quantifies the robustness cost
//! of batching: a BF daemon holds a larger in-memory batch, so each crash
//! loses more samples than under CF.

use crate::fmt::{fnum, heading, TextTable};
use crate::scale::Scale;
use crate::simhelp::{mean_of, replicate};
use paradyn_core::{
    Arch, DaemonCrashFaults, FaultPlan, LinkFaults, OverflowPolicy, SimConfig, SimMetrics,
};

/// The fault plan used throughout the sweep: ~1 crash per simulated two
/// seconds per daemon with a 100 ms recovery, plus a 5% per-forward link
/// failure with 3 bounded retries.
fn fault_plan(overflow: OverflowPolicy) -> FaultPlan {
    FaultPlan {
        overflow,
        daemon_crash: Some(DaemonCrashFaults {
            mtbf_us: 2_000_000.0,
            recovery_us: 100_000.0,
        }),
        link: Some(LinkFaults {
            fail_prob: 0.05,
            max_retries: 3,
            backoff_base_us: 5_000.0,
        }),
        stall: None,
    }
}

fn cfg(batch: usize, faults: FaultPlan, scale: &Scale) -> SimConfig {
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        batch,
        duration_s: scale.sim_s,
        seed: scale.seed,
        faults,
        ..Default::default()
    }
}

fn delivery_pct(runs: &[SimMetrics]) -> f64 {
    let recv = mean_of(runs, |m| m.received_samples as f64);
    let emitted = mean_of(runs, |m| m.emitted_samples as f64);
    if emitted > 0.0 {
        100.0 * recv / emitted
    } else {
        f64::NAN
    }
}

/// Run the fault sweep and print the robustness comparison table.
pub fn run_faults(scale: &Scale) {
    heading("Fault sweep: CF vs BF(32) under daemon-crash + lossy-link faults");
    let policies: [(&str, usize); 2] = [("CF", 1), ("BF(32)", 32)];
    let overflows = [
        ("block", OverflowPolicy::Block),
        ("drop-new", OverflowPolicy::DropNewest),
        ("drop-old", OverflowPolicy::DropOldest),
    ];
    let mut t = TextTable::new(vec![
        "policy",
        "overflow",
        "faults",
        "delivered %",
        "lost/crash",
        "lost link",
        "crashes",
        "downtime (s)",
        "retries",
        "writer block (s)",
    ]);
    let mut crash_loss_per_crash = [f64::NAN; 2];
    for (i, &(label, batch)) in policies.iter().enumerate() {
        // Fault-free baseline.
        let base = replicate(&cfg(batch, FaultPlan::default(), scale), scale);
        t.row(vec![
            label.to_string(),
            "block".into(),
            "off".into(),
            fnum(delivery_pct(&base), 2),
            "-".into(),
            "-".into(),
            "0".into(),
            "0".into(),
            "0".into(),
            fnum(mean_of(&base, |m| m.writer_block_time_s), 3),
        ]);
        for &(oname, ov) in &overflows {
            let runs = replicate(&cfg(batch, fault_plan(ov), scale), scale);
            let crashes = mean_of(&runs, |m| m.daemon_crashes as f64);
            let lost_crash = mean_of(&runs, |m| m.lost_daemon_crash as f64);
            if ov == OverflowPolicy::Block {
                crash_loss_per_crash[i] = if crashes > 0.0 {
                    lost_crash / crashes
                } else {
                    f64::NAN
                };
            }
            t.row(vec![
                label.to_string(),
                oname.to_string(),
                "on".into(),
                fnum(delivery_pct(&runs), 2),
                fnum(
                    if crashes > 0.0 {
                        lost_crash / crashes
                    } else {
                        f64::NAN
                    },
                    1,
                ),
                fnum(mean_of(&runs, |m| m.lost_link as f64), 1),
                fnum(crashes, 1),
                fnum(mean_of(&runs, |m| m.daemon_downtime_s), 2),
                fnum(mean_of(&runs, |m| m.forward_retries as f64), 1),
                fnum(mean_of(&runs, |m| m.writer_block_time_s), 3),
            ]);
        }
    }
    t.print();
    println!(
        "crash-loss asymmetry: CF loses {} samples/crash, BF(32) loses {} — larger in-daemon",
        fnum(crash_loss_per_crash[0], 1),
        fnum(crash_loss_per_crash[1], 1),
    );
    println!("batches mean more samples die with the daemon (robustness cost of batching)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_sees_crash_loss_asymmetry() {
        let scale = Scale {
            reps: 2,
            sim_s: 6.0,
            ..Scale::quick()
        };
        let cf = replicate(&cfg(1, fault_plan(OverflowPolicy::Block), &scale), &scale);
        let bf = replicate(&cfg(32, fault_plan(OverflowPolicy::Block), &scale), &scale);
        let per_crash = |runs: &[SimMetrics]| {
            mean_of(runs, |m| m.lost_daemon_crash as f64)
                / mean_of(runs, |m| m.daemon_crashes as f64).max(1.0)
        };
        assert!(mean_of(&cf, |m| m.daemon_crashes as f64) > 0.0);
        assert!(
            per_crash(&bf) > per_crash(&cf),
            "bf={} cf={}",
            per_crash(&bf),
            per_crash(&cf)
        );
    }
}

//! The graceful-degradation artifact: CF vs BF goodput under a 2× offered-
//! load ramp with the closed-loop overload controller active. The paper
//! stops at fault-free capacity measurements; this artifact quantifies what
//! the watermark/throttle/shed protocol buys when the offered load doubles
//! mid-run: batching daemons retain at least the contention-free goodput
//! while the controller sheds only the low-priority tiers.

use crate::fmt::{fnum, heading, TextTable};
use crate::scale::Scale;
use crate::simhelp::{mean_of, replicate};
use paradyn_core::{Arch, DegradationConfig, OverloadRamp, SimConfig, SimMetrics};

/// The controller used throughout: 4 priority tiers with the top 2
/// protected, and watermarks tight enough to engage once the ramp fires.
fn controller() -> DegradationConfig {
    DegradationConfig {
        tiers: 4,
        keep_tiers: 2,
        pipe_hi: 0.5,
        pipe_lo: 0.25,
        // Batch-granularity-friendly daemon watermarks: a single BF(8)
        // batch arrival must not trip the high watermark on its own.
        daemon_hi: 24,
        daemon_lo: 8,
        md_factor: 2.0,
        max_slowdown: 8.0,
        recover_step: 0.5,
        recover_period_us: 20_000.0,
        hysteresis_us: 50_000.0,
    }
}

/// Small pipes, fast sampling, and a 2× offered-load ramp a quarter of the
/// way into the run: the collection path saturates after the ramp.
fn cfg(batch: usize, degradation: Option<DegradationConfig>, scale: &Scale) -> SimConfig {
    let mut params = paradyn_workload::RoccParams::default();
    // One pipe size for both policies so the fill-fraction watermarks see
    // the same capacity; 32 slots keep a BF(8) deposit at 25% fill.
    params.pipe_capacity = 32;
    SimConfig {
        arch: Arch::Now {
            contention_free: true,
        },
        nodes: 4,
        apps_per_node: 4,
        sampling_period_us: 4_000.0,
        batch,
        duration_s: scale.sim_s,
        seed: scale.seed,
        params,
        degradation,
        overload: Some(OverloadRamp {
            at_s: scale.sim_s * 0.25,
            factor: 2.0,
        }),
        ..Default::default()
    }
}

/// Goodput: delivered samples per simulated second.
fn goodput(runs: &[SimMetrics], sim_s: f64) -> f64 {
    mean_of(runs, |m| m.received_samples as f64) / sim_s
}

/// Run the CF-vs-BF degradation comparison and print the goodput table.
pub fn run_degradation(scale: &Scale) {
    heading("Degradation: CF vs BF(8) goodput under a 2x offered-load ramp");
    let policies: [(&str, usize); 2] = [("CF", 1), ("BF(8)", 8)];
    let mut t = TextTable::new(vec![
        "policy",
        "controller",
        "goodput (samp/s)",
        "delivered %",
        "shed",
        "shed t0",
        "shed t1",
        "shed t2",
        "shed t3",
        "throttles",
        "lost",
    ]);
    let mut with_ctrl = [f64::NAN; 2];
    for (i, &(label, batch)) in policies.iter().enumerate() {
        for (cname, deg) in [("off", None), ("on", Some(controller()))] {
            let runs = replicate(&cfg(batch, deg, scale), scale);
            let recv = mean_of(&runs, |m| m.received_samples as f64);
            let emitted = mean_of(&runs, |m| m.emitted_samples as f64);
            if cname == "on" {
                with_ctrl[i] = goodput(&runs, scale.sim_s);
            }
            t.row(vec![
                label.to_string(),
                cname.to_string(),
                fnum(goodput(&runs, scale.sim_s), 0),
                fnum(100.0 * recv / emitted.max(1.0), 2),
                fnum(mean_of(&runs, |m| m.shed_samples as f64), 0),
                fnum(mean_of(&runs, |m| m.shed_by_tier[0] as f64), 0),
                fnum(mean_of(&runs, |m| m.shed_by_tier[1] as f64), 0),
                fnum(mean_of(&runs, |m| m.shed_by_tier[2] as f64), 0),
                fnum(mean_of(&runs, |m| m.shed_by_tier[3] as f64), 0),
                fnum(mean_of(&runs, |m| m.throttle_events as f64), 0),
                fnum(mean_of(&runs, |m| m.samples_lost as f64), 0),
            ]);
        }
    }
    t.print();
    println!(
        "controller on: BF(8) goodput {} vs CF {} samp/s — batching amortizes the",
        fnum(with_ctrl[1], 0),
        fnum(with_ctrl[0], 0),
    );
    println!("per-read daemon cost, so degraded BF retains >= CF goodput under the ramp");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance property of the artifact: under the 2x ramp with the
    /// controller on, BF retains at least CF's goodput and only the
    /// low-priority (sheddable) tiers are ever shed.
    #[test]
    fn bf_retains_cf_goodput_and_sheds_only_low_tiers() {
        let scale = Scale::quick();
        let cf = replicate(&cfg(1, Some(controller()), &scale), &scale);
        let bf = replicate(&cfg(8, Some(controller()), &scale), &scale);
        assert!(
            goodput(&bf, scale.sim_s) >= goodput(&cf, scale.sim_s),
            "bf={} cf={}",
            goodput(&bf, scale.sim_s),
            goodput(&cf, scale.sim_s)
        );
        let deg = controller();
        for runs in [&cf, &bf] {
            for m in runs.iter() {
                assert!(m.shed_samples > 0, "ramp never engaged the controller");
                for tier in 0..deg.keep_tiers {
                    assert_eq!(
                        m.shed_by_tier[tier], 0,
                        "protected tier {tier} shed: {:?}",
                        m.shed_by_tier
                    );
                }
                assert_eq!(
                    m.emitted_samples,
                    m.received_samples + m.samples_lost + m.shed_samples + m.samples_in_flight,
                    "conservation"
                );
            }
        }
    }
}

//! A minimal, hermetic JSON value type — emitter and parser — so the
//! benches can write machine-readable result files (`BENCH_des.json`)
//! without pulling `serde` into the workspace.
//!
//! Deliberately small: objects preserve insertion order (deterministic
//! emission), numbers are `f64` (integers round-trip exactly up to 2^53,
//! far beyond any event count we report), and strings are ASCII-escaped on
//! output. The parser accepts standard JSON and exists so
//! `check_bench_json` can validate emitted files offline.

use std::fmt::Write as _;

/// A JSON value. Objects keep key insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Look a key up in an object (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(xs) if xs.is_empty() => out.push_str("[]"),
            Json::Arr(xs) => {
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    out.push_str(&pad);
                    x.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < xs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(kvs) if kvs.is_empty() => out.push_str("{}"),
            Json::Obj(kvs) => {
                out.push_str("{\n");
                for (i, (k, v)) in kvs.iter().enumerate() {
                    out.push_str(&pad);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < kvs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut xs = vec![];
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(xs));
            }
            loop {
                xs.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(xs));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut kvs = vec![];
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(kvs));
            }
            loop {
                skip_ws(b, pos);
                let k = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                kvs.push((k, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(kvs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        *pos += 4;
                        // Surrogates are not expected in our own files.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape `\\{}`", esc as char)),
                }
            }
            c => {
                // Recover full UTF-8 sequences by re-slicing the source.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let mut end = *pos;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..end]).map_err(|_| "invalid UTF-8")?,
                    );
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_round_trip() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("des_engine")),
            ("events".into(), Json::num(100_000.0)),
            ("ratio".into(), Json::num(2.5)),
            ("ok".into(), Json::Bool(true)),
            ("note".into(), Json::Null),
            (
                "rows".into(),
                Json::Arr(vec![Json::num(1.0), Json::str("a\"b\n")]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        let mut s = String::new();
        write_num(&mut s, 100000.0);
        assert_eq!(s, "100000");
        s.clear();
        write_num(&mut s, 2.5);
        assert_eq!(s, "2.5");
        s.clear();
        write_num(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn get_walks_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2, 3]}, "s": "x"}"#).unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.get("b")).and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn insertion_order_is_preserved() {
        let doc = Json::Obj(vec![
            ("z".into(), Json::num(1.0)),
            ("a".into(), Json::num(2.0)),
        ]);
        let text = doc.pretty();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }
}

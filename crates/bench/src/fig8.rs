//! Figure 8: histograms, candidate pdfs, and Q-Q plots of the lengths of
//! CPU and network occupancy requests from the application process.

use crate::fmt::{fnum, heading, TextTable};
use crate::scale::Scale;
use crate::tables::fig8_samples;
use paradyn_stats::{best_fit, qq_correlation, qq_series, Histogram};

fn one_panel(name: &str, xs: &[f64], bins: usize) {
    println!("\n-- Figure 8{name}: application {name} occupancy --");
    let fits = best_fit(xs);
    println!("candidate fits (K-S ranked):");
    for f in &fits {
        println!(
            "  {:<28} K-S {:.4}  logL {:.0}  QQ-corr {:.5}",
            f.rv.describe(),
            f.ks,
            f.log_likelihood,
            qq_correlation(xs, &f.rv)
        );
    }
    let winner = &fits[0].rv;
    // Histogram vs winning pdf (the left panel).
    let cap = paradyn_stats::quantile(xs, 0.99);
    let trimmed: Vec<f64> = xs.iter().copied().filter(|&x| x <= cap).collect();
    let h = Histogram::from_samples(&trimmed, bins);
    let mut t = TextTable::new(vec!["bin center (us)", "density (empirical)", "pdf (fit)"]);
    for i in 0..h.bins() {
        let c = h.bin_center(i);
        t.row(vec![fnum(c, 0), format!("{:.3e}", h.density(i)), format!("{:.3e}", winner.pdf(c))]);
    }
    t.print();
    // Q-Q points (the right panel).
    let qq = qq_series(xs, winner, 12);
    let mut t = TextTable::new(vec!["theoretical quantile", "observed quantile"]);
    for (th, ob) in qq {
        t.row(vec![fnum(th, 1), fnum(ob, 1)]);
    }
    t.print();
}

/// Reproduce both panels of Figure 8.
pub fn run_fig8(scale: &Scale) {
    heading("Figure 8: app-process occupancy distributions (histogram + Q-Q)");
    let (cpu, net) = fig8_samples(scale);
    one_panel("a (CPU)", &cpu, 12);
    one_panel("b (network)", &net, 12);
    println!(
        "\npaper finding: lognormal best for CPU requests, exponential for network requests"
    );
}

//! The MPP simulation experiments: Table 6 / Figure 25 (factorial) and
//! Figures 26–28 (forwarding configuration and barrier studies).

use crate::fmt::{fnum, heading, ms, pct, TextTable};
use crate::scale::Scale;
use crate::simhelp::{mean_of, print_variation, replicate, run_factorial, FactorialRun};
use paradyn_core::{Arch, Forwarding, SimConfig};
use paradyn_workload::pvmbt;

/// Factor levels of the MPP 2^4 design (Table 6): A = nodes {2, 256},
/// B = period {5, 50 ms}, C = batch {1, 128}, D = network configuration
/// {direct, tree}. (The printed Table 6 header order is garbled in the
/// paper; node counts of 2 and 256 are the physically sensible reading for
/// an MPP — see DESIGN.md.)
fn mpp_factorial_cfg(bits: usize, scale: &Scale) -> SimConfig {
    SimConfig {
        arch: Arch::Mpp {
            forwarding: if bits & 8 != 0 {
                Forwarding::BinaryTree
            } else {
                Forwarding::Direct
            },
        },
        nodes: if bits & 1 != 0 { 256 } else { 2 },
        sampling_period_us: if bits & 2 != 0 { 50_000.0 } else { 5_000.0 },
        batch: if bits & 4 != 0 { 128 } else { 1 },
        duration_s: scale.sim_big_s,
        seed: scale.seed,
        ..Default::default()
    }
}

/// Run the MPP factorial (shared by Table 6 and Figure 25).
pub fn mpp_factorial(scale: &Scale) -> FactorialRun {
    run_factorial(
        vec![
            "number of nodes",
            "sampling period",
            "forwarding policy",
            "network configuration",
        ],
        |bits| mpp_factorial_cfg(bits, scale),
        |m| m.pd_cpu_per_node_s,
        scale,
    )
}

/// Reproduce Table 6.
pub fn run_table6(scale: &Scale) {
    heading("Table 6: 2^k r factorial simulation results — MPP");
    let fr = mpp_factorial(scale);
    let mut t = TextTable::new(vec![
        "nodes",
        "period ms",
        "batch",
        "config",
        "Pd CPU/node (s)",
        "latency/sample (ms)",
    ]);
    for &(bits, ov, lat) in &fr.rows {
        t.row(vec![
            if bits & 1 != 0 { "256" } else { "2" }.to_string(),
            if bits & 2 != 0 { "50" } else { "5" }.to_string(),
            if bits & 4 != 0 { "128" } else { "1" }.to_string(),
            if bits & 8 != 0 { "tree" } else { "direct" }.to_string(),
            fnum(ov, 4),
            fnum(lat, 3),
        ]);
    }
    t.print();
}

/// Reproduce Figure 25: allocation of variation for the MPP design.
pub fn run_fig25(scale: &Scale) {
    heading("Figure 25: allocation of variation — MPP");
    let fr = mpp_factorial(scale);
    print_variation("variation explained for Pd CPU time", &fr.overhead);
    print_variation("variation explained for monitoring latency", &fr.latency);
    println!("paper: Pd CPU time led by B (period, 21%) and C (policy, 19%);");
    println!("       latency led by C (47%) then A (nodes)");
}

fn mpp_base(scale: &Scale, forwarding: Forwarding) -> SimConfig {
    SimConfig {
        arch: Arch::Mpp { forwarding },
        nodes: 256,
        batch: 32,
        duration_s: scale.sim_big_s,
        seed: scale.seed,
        ..Default::default()
    }
}

/// Reproduce Figure 26: metrics vs sampling period at 256 nodes — CF vs
/// BF under direct forwarding, plus BF under tree forwarding.
pub fn run_fig26(scale: &Scale) {
    heading("Figure 26: MPP metrics vs sampling period (256 nodes)");
    let mut t = TextTable::new(vec![
        "period ms",
        "Pd CPU %/node CF-direct",
        "Pd CPU %/node BF-direct",
        "Pd CPU %/node BF-tree",
        "Paradyn CPU % BF-direct",
        "app CPU % BF-direct",
        "latency ms CF-direct",
        "latency ms BF-direct",
    ]);
    for &p in &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let cf = replicate(
            &SimConfig {
                sampling_period_us: p * 1e3,
                batch: 1,
                ..mpp_base(scale, Forwarding::Direct)
            },
            scale,
        );
        let bf = replicate(
            &SimConfig {
                sampling_period_us: p * 1e3,
                ..mpp_base(scale, Forwarding::Direct)
            },
            scale,
        );
        let tr = replicate(
            &SimConfig {
                sampling_period_us: p * 1e3,
                ..mpp_base(scale, Forwarding::BinaryTree)
            },
            scale,
        );
        t.row(vec![
            fnum(p, 0),
            pct(mean_of(&cf, |m| m.pd_cpu_util_per_node)),
            pct(mean_of(&bf, |m| m.pd_cpu_util_per_node)),
            pct(mean_of(&tr, |m| m.pd_cpu_util_per_node)),
            pct(mean_of(&bf, |m| m.main_cpu_util)),
            pct(mean_of(&bf, |m| m.app_cpu_util_per_node)),
            ms(mean_of(&cf, |m| m.latency_mean_s)),
            ms(mean_of(&bf, |m| m.latency_mean_s)),
        ]);
    }
    t.print();
    println!("paper: BF overhead below CF, especially at small periods; BF full latency");
    println!("higher (accumulation) — the overhead/latency trade-off of Section 4.4.2");
}

/// Reproduce Figure 27: metrics vs node count, direct vs tree (40 ms, BF).
pub fn run_fig27(scale: &Scale) {
    heading("Figure 27: MPP metrics vs nodes, direct vs tree (40 ms, BF 32)");
    let mut t = TextTable::new(vec![
        "nodes",
        "Pd CPU %/node direct",
        "Pd CPU %/node tree",
        "Paradyn CPU % direct",
        "Paradyn CPU % tree",
        "app CPU % direct",
        "latency ms direct",
        "latency ms tree",
    ]);
    for &n in &[2usize, 8, 32, 128, 256] {
        let d = replicate(
            &SimConfig {
                nodes: n,
                ..mpp_base(scale, Forwarding::Direct)
            },
            scale,
        );
        let tr = replicate(
            &SimConfig {
                nodes: n,
                ..mpp_base(scale, Forwarding::BinaryTree)
            },
            scale,
        );
        t.row(vec![
            n.to_string(),
            fnum(mean_of(&d, |m| m.pd_cpu_util_per_node) * 100.0, 4),
            fnum(mean_of(&tr, |m| m.pd_cpu_util_per_node) * 100.0, 4),
            pct(mean_of(&d, |m| m.main_cpu_util)),
            pct(mean_of(&tr, |m| m.main_cpu_util)),
            pct(mean_of(&d, |m| m.app_cpu_util_per_node)),
            ms(mean_of(&d, |m| m.latency_mean_s)),
            ms(mean_of(&tr, |m| m.latency_mean_s)),
        ]);
    }
    t.print();
    println!("paper: tree forwarding raises per-node Pd overhead (merge work) without");
    println!("helping latency; latency grows with nodes (main-process queueing)");
}

/// Reproduce Figure 28: metrics vs barrier period (256 nodes, 40 ms, BF).
pub fn run_fig28(scale: &Scale) {
    heading("Figure 28: MPP metrics vs barrier period (256 nodes, 40 ms, BF 32)");
    let mut t = TextTable::new(vec![
        "barrier period ms",
        "Pd CPU %/node",
        "Paradyn CPU %",
        "app CPU %/node",
        "latency ms",
        "barrier ops",
    ]);
    for &bp_ms in &[0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0] {
        let mut cfg = mpp_base(scale, Forwarding::Direct);
        cfg.app = pvmbt().with_barriers(bp_ms * 1e3);
        let runs = replicate(&cfg, scale);
        t.row(vec![
            fnum(bp_ms, 2),
            fnum(mean_of(&runs, |m| m.pd_cpu_util_per_node) * 100.0, 4),
            pct(mean_of(&runs, |m| m.main_cpu_util)),
            pct(mean_of(&runs, |m| m.app_cpu_util_per_node)),
            ms(mean_of(&runs, |m| m.fwd_latency_mean_s)),
            fnum(mean_of(&runs, |m| m.barrier_ops as f64), 0),
        ]);
    }
    t.print();
    println!("paper: frequent barriers depress application CPU occupancy and raise the");
    println!("Pd share (event samples + an idle CPU to run on); latency unaffected");
}

//! Tables 1–3: workload characterization and model validation.

use crate::fmt::{fnum, heading, TextTable};
use crate::scale::Scale;
use paradyn_core::validate::validate;
use paradyn_stats::SplitMix64;
use paradyn_workload::{
    characterize, table1, Characterization, ProcessClass, Resource, SynthConfig, Trace,
};

/// Generate the characterization trace used by Tables 1–2 and Figure 8.
pub fn characterization_trace(scale: &Scale) -> Trace {
    let cfg = SynthConfig {
        duration_us: scale.trace_us,
        ..Default::default()
    };
    paradyn_workload::synthesize(&cfg, &mut SplitMix64(scale.seed))
}

/// Paper Table 1 reference (mean, std) per class for CPU occupancy.
const TABLE1_PAPER_CPU: [(&str, f64, f64); 5] = [
    ("Application process", 2213.0, 3034.0),
    ("Paradyn daemon", 267.0, 197.0),
    ("PVM daemon", 294.0, 206.0),
    ("Other processes", 367.0, 819.0),
    ("Main Paradyn process", 3208.0, 3287.0),
];

/// Reproduce Table 1: summary statistics of CPU and network occupancy by
/// process class, printed next to the paper's values.
pub fn run_table1(scale: &Scale) {
    heading("Table 1: occupancy statistics of pvmbt on the (synthetic) SP-2");
    let trace = characterization_trace(scale);
    let rows = table1(&trace);
    let mut t = TextTable::new(vec![
        "Process type",
        "CPU mean",
        "CPU std",
        "CPU min",
        "CPU max",
        "Net mean",
        "Net std",
        "paper CPU mean",
        "paper CPU std",
    ]);
    for (row, paper) in rows.iter().zip(TABLE1_PAPER_CPU) {
        let c = row.cpu.as_ref();
        let n = row.net.as_ref();
        t.row(vec![
            row.class.label().to_string(),
            c.map_or("-".into(), |s| fnum(s.mean, 0)),
            c.map_or("-".into(), |s| fnum(s.std_dev, 0)),
            c.map_or("-".into(), |s| fnum(s.min, 0)),
            c.map_or("-".into(), |s| fnum(s.max, 0)),
            n.map_or("-".into(), |s| fnum(s.mean, 0)),
            n.map_or("-".into(), |s| fnum(s.std_dev, 0)),
            fnum(paper.1, 0),
            fnum(paper.2, 0),
        ]);
    }
    t.print();
    println!("({} trace records analysed)", trace.len());
}

/// Reproduce Table 2: fitted distributions per class, printed next to the
/// paper's choices.
pub fn run_table2(scale: &Scale) {
    heading("Table 2: fitted ROCC parameters");
    let trace = characterization_trace(scale);
    let ch: Characterization = characterize(&trace);
    let paper: [(&str, &str, &str); 5] = [
        ("Application process", "lognormal(2213, 3034)", "exponential(223)"),
        ("Paradyn daemon", "exponential(267)", "exponential(71)"),
        ("PVM daemon", "lognormal(294, 206)", "exponential(58)"),
        ("Other processes", "lognormal(367, 819)", "exponential(92)"),
        ("Main Paradyn process", "lognormal(3208, 3287)", "lognormal(214, 451)"),
    ];
    let mut t = TextTable::new(vec![
        "Process type",
        "CPU fit (ours)",
        "CPU fit (paper)",
        "Net fit (ours)",
        "Net fit (paper)",
        "Interarrival (ours)",
    ]);
    for (class, p) in ProcessClass::ALL.iter().zip(paper) {
        let c = ch.class(*class);
        t.row(vec![
            class.label().to_string(),
            c.best_cpu().map_or("-".into(), |rv| rv.describe()),
            p.1.to_string(),
            c.best_net().map_or("-".into(), |rv| rv.describe()),
            p.2.to_string(),
            c.cpu_interarrival
                .as_ref()
                .map_or("-".into(), |rv| rv.describe()),
        ]);
    }
    t.print();
    let app = ch.class(ProcessClass::Application);
    println!(
        "K-S of winning app CPU fit: {:.4} (competitors: {})",
        app.cpu_fits[0].ks,
        app.cpu_fits[1..]
            .iter()
            .map(|f| format!("{} {:.4}", f.rv.family(), f.ks))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// Reproduce Table 3: measurement vs simulation validation.
pub fn run_table3(_scale: &Scale) {
    heading("Table 3: measurement vs simulation (pvmbt, CF, 40 ms, 100 s)");
    let v = validate();
    let mut t = TextTable::new(vec![
        "Type of experiment",
        "Application CPU time (s)",
        "Pd CPU time (s)",
    ]);
    t.row(vec![
        "Measurement based (paper)".to_string(),
        fnum(v.reference.measured_app_cpu_s, 2),
        fnum(v.reference.measured_pd_cpu_s, 2),
    ]);
    t.row(vec![
        "Simulation (paper)".to_string(),
        fnum(v.reference.paper_sim_app_cpu_s, 2),
        fnum(v.reference.paper_sim_pd_cpu_s, 2),
    ]);
    t.row(vec![
        "Simulation (this reproduction)".to_string(),
        fnum(v.app_cpu_s, 2),
        fnum(v.pd_cpu_s, 2),
    ]);
    t.print();
    println!(
        "relative error vs measurement: app {:.1}%, Pd {:.1}%",
        v.app_rel_err() * 100.0,
        v.pd_rel_err() * 100.0
    );
}

/// Trace used by Figure 8 (application-process occupancy samples).
pub fn fig8_samples(scale: &Scale) -> (Vec<f64>, Vec<f64>) {
    let trace = characterization_trace(scale);
    (
        trace.occupancies(ProcessClass::Application, Resource::Cpu),
        trace.occupancies(ProcessClass::Application, Resource::Network),
    )
}

//! Plain-text table and series formatting for the reproduction reports,
//! with an optional CSV sink so every printed table is also captured as a
//! machine-readable series (one file per table, named after the artifact).

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

struct CsvSink {
    dir: PathBuf,
    artifact: String,
    counter: u32,
}

static CSV_SINK: Mutex<Option<CsvSink>> = Mutex::new(None);

/// Route subsequent [`TextTable::print`] calls to CSV files
/// `<dir>/<artifact>_<n>.csv` in addition to stdout. Pass `None` to stop.
pub fn set_csv_output(dir: Option<PathBuf>, artifact: &str) {
    let mut sink = CSV_SINK.lock().expect("csv sink poisoned");
    *sink = dir.map(|dir| CsvSink {
        dir,
        artifact: artifact.to_string(),
        counter: 0,
    });
}

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: vec![],
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..widths[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Print to stdout, and to the CSV sink if one is configured.
    pub fn print(&self) {
        print!("{}", self.render());
        let mut sink = CSV_SINK.lock().expect("csv sink poisoned");
        if let Some(s) = sink.as_mut() {
            s.counter += 1;
            let path = s.dir.join(format!("{}_{}.csv", s.artifact, s.counter));
            if let Err(e) = fs::write(&path, self.render_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Format a float with the given precision, using engineering-friendly
/// fallbacks for non-finite values.
pub fn fnum(x: f64, prec: usize) -> String {
    if x.is_nan() {
        "n/a".into()
    } else if x.is_infinite() {
        "inf".into()
    } else {
        format!("{x:.prec$}")
    }
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    fnum(100.0 * x, 2)
}

/// Format seconds as milliseconds.
pub fn ms(x_s: f64) -> String {
    fnum(1e3 * x_s, 3)
}

/// Print a section heading.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]).row(vec!["b", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn ragged_row_rejected() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(f64::NAN, 2), "n/a");
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(ms(0.0015), "1.500");
    }
}

//! Section 5 measurement experiments on the real threaded mini-IS:
//! Figure 30 / Table 7 (policy vs sampling period) and Figure 31 / Table 8
//! (policy vs application program).

use crate::fmt::{fnum, heading, pct, TextTable};
use crate::scale::Scale;
use paradyn_stats::Design2kr;
use paradyn_testbed::{run, KernelKind, Measurement, Policy, TestbedConfig};
use std::time::Duration;

fn measure(policy: Policy, period: Duration, kernel: KernelKind, scale: &Scale) -> Measurement {
    run(&TestbedConfig {
        policy,
        sampling_period: period,
        kernel,
        nodes: 2,
        duration: scale.testbed,
        seed: scale.seed,
        ..Default::default()
    })
    .expect("testbed run failed")
}

/// The Figure 30 measurement grid: {CF, BF(32)} × {10 ms, 30 ms}.
pub fn fig30_grid(scale: &Scale) -> Vec<(Policy, u64, Measurement)> {
    let mut out = vec![];
    for &period_ms in &[10u64, 30] {
        for policy in [Policy::Cf, Policy::Bf { batch: 32 }] {
            let m = measure(
                policy,
                Duration::from_millis(period_ms),
                KernelKind::Bt,
                scale,
            );
            out.push((policy, period_ms, m));
        }
    }
    out
}

/// Reproduce Figure 30: measured daemon and main-process CPU time under CF
/// vs BF at two sampling periods.
pub fn run_fig30(scale: &Scale) {
    heading("Figure 30: measured CPU overhead, CF vs BF(32) (bt_like kernel)");
    let grid = fig30_grid(scale);
    let mut t = TextTable::new(vec![
        "sampling period",
        "policy",
        "Pd CPU (ms)",
        "main CPU (ms)",
        "app CPU (s)",
        "samples",
        "forward ops",
    ]);
    for (policy, period, m) in &grid {
        t.row(vec![
            format!("{period} ms"),
            policy.label(),
            fnum(m.pd_cpu.as_secs_f64() * 1e3, 2),
            fnum(m.main_cpu.as_secs_f64() * 1e3, 2),
            fnum(m.app_cpu.as_secs_f64(), 2),
            m.samples_received.to_string(),
            m.forward_ops.to_string(),
        ]);
    }
    t.print();
    for period in [10u64, 30] {
        let cf = grid
            .iter()
            .find(|(p, pr, _)| *p == Policy::Cf && *pr == period)
            .expect("grid complete");
        let bf = grid
            .iter()
            .find(|(p, pr, _)| matches!(p, Policy::Bf { .. }) && *pr == period)
            .expect("grid complete");
        println!(
            "{period} ms: Pd CPU reduction {:.0}%  main CPU reduction {:.0}%",
            100.0 * (1.0 - bf.2.pd_cpu.as_secs_f64() / cf.2.pd_cpu.as_secs_f64()),
            100.0 * (1.0 - bf.2.main_cpu.as_secs_f64() / cf.2.main_cpu.as_secs_f64()),
        );
    }
    println!("paper: >60% daemon and ~80% main-process reduction under BF");
    println!(
        "(cpu accounting source: {:?})",
        grid[0].2.cpu_source
    );
}

/// Reproduce Table 7: allocation of variation of scheduling policy vs
/// sampling period, for daemon and main CPU times.
pub fn run_table7(scale: &Scale) {
    heading("Table 7: variation explained — policy (A) vs sampling period (B)");
    let grid = fig30_grid(scale);
    let mut pd = Design2kr::new(vec!["scheduling policy", "sampling period"]);
    let mut main = Design2kr::new(vec!["scheduling policy", "sampling period"]);
    for (policy, period, m) in &grid {
        let a = matches!(policy, Policy::Bf { .. }) as usize;
        let b = (*period == 30) as usize;
        let bits = a | (b << 1);
        pd.set_responses(bits, vec![m.pd_cpu.as_secs_f64()]);
        main.set_responses(bits, vec![m.main_cpu.as_secs_f64()]);
    }
    let vp = pd.analyze();
    let vm = main.analyze();
    let mut t = TextTable::new(vec![
        "factor",
        "Pd CPU variation %",
        "main CPU variation %",
        "paper Pd %",
        "paper main %",
    ]);
    for (label, paper_pd, paper_main) in [("A", 47.6, 52.9), ("B", 35.9, 26.5), ("AB", 16.5, 20.7)]
    {
        t.row(vec![
            label.to_string(),
            fnum(vp.pct_of(label).expect("term exists"), 1),
            fnum(vm.pct_of(label).expect("term exists"), 1),
            fnum(paper_pd, 1),
            fnum(paper_main, 1),
        ]);
    }
    t.print();
    println!("paper conclusion: the scheduling policy dominates the IS overhead variation");
}

/// The Figure 31 measurement grid: {CF, BF(32)} × {pvmbt, pvmis}.
pub fn fig31_grid(scale: &Scale) -> Vec<(Policy, KernelKind, Measurement)> {
    let mut out = vec![];
    for kernel in [KernelKind::Bt, KernelKind::Is] {
        for policy in [Policy::Cf, Policy::Bf { batch: 32 }] {
            let m = measure(policy, Duration::from_millis(10), kernel, scale);
            out.push((policy, kernel, m));
        }
    }
    out
}

/// Reproduce Figure 31: normalized CPU occupancy per process, CF vs BF,
/// for the two applications.
pub fn run_fig31(scale: &Scale) {
    heading("Figure 31: normalized CPU occupancy, CF vs BF(32), 10 ms sampling");
    let grid = fig31_grid(scale);
    let mut t = TextTable::new(vec![
        "application",
        "policy",
        "Pd normalized %",
        "main normalized %",
        "app CPU (s)",
    ]);
    for (policy, kernel, m) in &grid {
        t.row(vec![
            kernel.label().to_string(),
            policy.label(),
            pct(m.pd_normalized()),
            pct(m.main_normalized()),
            fnum(m.app_cpu.as_secs_f64(), 2),
        ]);
    }
    t.print();
    println!("paper: the BF reduction is not significantly affected by the application");
}

/// Reproduce Table 8: allocation of variation of scheduling policy vs
/// application program.
pub fn run_table8(scale: &Scale) {
    heading("Table 8: variation explained — policy (A) vs application (B)");
    let grid = fig31_grid(scale);
    let mut pd = Design2kr::new(vec!["scheduling policy", "application program"]);
    let mut main = Design2kr::new(vec!["scheduling policy", "application program"]);
    for (policy, kernel, m) in &grid {
        let a = matches!(policy, Policy::Bf { .. }) as usize;
        let b = (*kernel == KernelKind::Is) as usize;
        let bits = a | (b << 1);
        pd.set_responses(bits, vec![m.pd_normalized()]);
        main.set_responses(bits, vec![m.main_normalized()]);
    }
    let vp = pd.analyze();
    let vm = main.analyze();
    let mut t = TextTable::new(vec![
        "factor",
        "Pd norm variation %",
        "main norm variation %",
        "paper Pd %",
        "paper main %",
    ]);
    for (label, paper_pd, paper_main) in [("A", 98.5, 86.8), ("B", 0.3, 6.8), ("AB", 1.2, 6.4)] {
        t.row(vec![
            label.to_string(),
            fnum(vp.pct_of(label).expect("term exists"), 1),
            fnum(vm.pct_of(label).expect("term exists"), 1),
            fnum(paper_pd, 1),
            fnum(paper_main, 1),
        ]);
    }
    t.print();
    println!("paper conclusion: the effect of the application program is negligible");
}

//! Compute kernels standing in for the NAS benchmarks of Section 5.
//!
//! * [`BtLike`] — repeated solves of block-tridiagonal systems with 5×5
//!   blocks, the core operation of NAS BT ("benchmark pvmbt solves three
//!   sets of uncoupled systems of equations ... block tridiagonal with 5×5
//!   blocks"). Compute-bound, floating-point heavy.
//! * [`IsLike`] — bucket sort of pseudo-random integers, the core of NAS IS
//!   ("an integer sort kernel"). Memory-traffic heavy, integer only.
//!
//! Both expose the same `step()` interface: one step is one unit of work
//! whose result is checked (so the optimizer cannot delete it and a broken
//! kernel fails loudly), and a progress counter that the instrumentation
//! samples — the testbed's equivalent of a Paradyn metric counter.

// Indexed loops are the natural idiom for the fixed-size matrix math here.
#![allow(clippy::needless_range_loop)]

/// Block size of the BT-like solver (NAS BT uses 5×5 blocks).
const B: usize = 5;
/// Number of block rows per system.
const NROWS: usize = 24;

/// A workload kernel: repeatedly perform a verifiable unit of work.
pub trait Kernel {
    /// Perform one unit of work.
    ///
    /// # Panics
    /// Panics if the unit's self-check fails (a wrong solve/sort).
    fn step(&mut self);

    /// Monotone progress counter (units of work completed) — the sampled
    /// instrumentation metric.
    fn counter(&self) -> u64;

    /// Kernel name (for reports).
    fn name(&self) -> &'static str;
}

/// Block-tridiagonal solver kernel (pvmbt stand-in).
pub struct BtLike {
    steps: u64,
    rng: u64,
}

impl BtLike {
    /// New kernel with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        BtLike {
            steps: 0,
            rng: seed | 1,
        }
    }

    fn next_f(&mut self) -> f64 {
        // SplitMix64 to a float in [0.1, 1.1) — keeps matrices well away
        // from singular.
        self.rng = self.rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        0.1 + (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

type Block = [[f64; B]; B];

fn block_identity() -> Block {
    let mut m = [[0.0; B]; B];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn block_mat_vec(m: &Block, v: &[f64; B]) -> [f64; B] {
    let mut out = [0.0; B];
    for i in 0..B {
        for j in 0..B {
            out[i] += m[i][j] * v[j];
        }
    }
    out
}

fn block_mat_mat(a: &Block, b: &Block) -> Block {
    let mut out = [[0.0; B]; B];
    for i in 0..B {
        for k in 0..B {
            let aik = a[i][k];
            for j in 0..B {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

/// Solve `m x = rhs` for a single 5×5 block by Gaussian elimination with
/// partial pivoting. Returns the solution.
fn block_solve(m: &Block, rhs: &[f64; B]) -> [f64; B] {
    let mut a = *m;
    let mut b = *rhs;
    for col in 0..B {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..B {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        assert!(d.abs() > 1e-12, "singular block");
        for r in (col + 1)..B {
            let f = a[r][col] / d;
            for c in col..B {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = [0.0; B];
    for row in (0..B).rev() {
        let mut s = b[row];
        for c in (row + 1)..B {
            s -= a[row][c] * x[c];
        }
        x[row] = s / a[row][row];
    }
    x
}

/// Invert a block via `block_solve` against identity columns.
fn block_inverse(m: &Block) -> Block {
    let mut inv = [[0.0; B]; B];
    let ident = block_identity();
    for col in 0..B {
        let mut e = [0.0; B];
        e.copy_from_slice(&ident[col]);
        let x = block_solve(m, &e);
        for row in 0..B {
            inv[row][col] = x[row];
        }
    }
    inv
}

impl Kernel for BtLike {
    fn step(&mut self) {
        // Build a diagonally dominant block-tridiagonal system
        // (C_i x_{i-1} + A_i x_i + B_i x_{i+1} = f_i), pick a known
        // solution, compute the matching right-hand side, solve by block
        // Thomas elimination, and verify.
        let mut sub = [[[0.0; B]; B]; NROWS]; // C_i
        let mut diag = [[[0.0; B]; B]; NROWS]; // A_i
        let mut sup = [[[0.0; B]; B]; NROWS]; // B_i
        let mut truth = [[0.0; B]; NROWS];
        for i in 0..NROWS {
            for r in 0..B {
                for c in 0..B {
                    sub[i][r][c] = 0.05 * self.next_f();
                    sup[i][r][c] = 0.05 * self.next_f();
                    diag[i][r][c] = 0.1 * self.next_f();
                }
                // Diagonal dominance.
                diag[i][r][r] += 2.0;
                truth[i][r] = self.next_f();
            }
        }
        // rhs_i = C_i t_{i-1} + A_i t_i + B_i t_{i+1}.
        let mut rhs = [[0.0; B]; NROWS];
        for i in 0..NROWS {
            let mut acc = block_mat_vec(&diag[i], &truth[i]);
            if i > 0 {
                let lo = block_mat_vec(&sub[i], &truth[i - 1]);
                for k in 0..B {
                    acc[k] += lo[k];
                }
            }
            if i + 1 < NROWS {
                let hi = block_mat_vec(&sup[i], &truth[i + 1]);
                for k in 0..B {
                    acc[k] += hi[k];
                }
            }
            rhs[i] = acc;
        }
        // Block Thomas: forward elimination.
        let mut dprime = diag;
        let mut rprime = rhs;
        for i in 1..NROWS {
            // factor = C_i * inv(D'_{i-1})
            let inv = block_inverse(&dprime[i - 1]);
            let factor = block_mat_mat(&sub[i], &inv);
            // D'_i = A_i - factor * B_{i-1}
            let fb = block_mat_mat(&factor, &sup[i - 1]);
            for r in 0..B {
                for c in 0..B {
                    dprime[i][r][c] -= fb[r][c];
                }
            }
            let fr = block_mat_vec(&factor, &rprime[i - 1]);
            for r in 0..B {
                rprime[i][r] -= fr[r];
            }
        }
        // Back substitution.
        let mut x = [[0.0; B]; NROWS];
        x[NROWS - 1] = block_solve(&dprime[NROWS - 1], &rprime[NROWS - 1]);
        for i in (0..NROWS - 1).rev() {
            let bx = block_mat_vec(&sup[i], &x[i + 1]);
            let mut r = rprime[i];
            for k in 0..B {
                r[k] -= bx[k];
            }
            x[i] = block_solve(&dprime[i], &r);
        }
        // Verify against the known solution.
        for i in 0..NROWS {
            for k in 0..B {
                let err = (x[i][k] - truth[i][k]).abs();
                assert!(err < 1e-6, "BT solve error {err} at ({i},{k})");
            }
        }
        self.steps += 1;
    }

    fn counter(&self) -> u64 {
        self.steps
    }

    fn name(&self) -> &'static str {
        "bt_like"
    }
}

/// Integer-sort kernel (pvmis stand-in).
pub struct IsLike {
    steps: u64,
    rng: u64,
    keys: Vec<u32>,
}

/// Number of keys sorted per step.
const IS_KEYS: usize = 16 * 1024;
/// Key range (bucketed).
const IS_RANGE: u32 = 1 << 14;

impl IsLike {
    /// New kernel with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        IsLike {
            steps: 0,
            rng: seed | 1,
            keys: vec![0; IS_KEYS],
        }
    }

    fn next_u32(&mut self) -> u32 {
        self.rng = self.rng.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as u32
    }
}

impl Kernel for IsLike {
    fn step(&mut self) {
        // Generate keys, bucket-sort (counting sort), verify order and a
        // permutation checksum.
        let mut sum_before = 0u64;
        for k in self.keys.iter_mut() {
            *k = 0;
        }
        for i in 0..IS_KEYS {
            let v = self.next_u32() % IS_RANGE;
            self.keys[i] = v;
            sum_before += v as u64;
        }
        let mut counts = vec![0u32; IS_RANGE as usize];
        for &k in &self.keys {
            counts[k as usize] += 1;
        }
        let mut out = 0usize;
        for (v, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                self.keys[out] = v as u32;
                out += 1;
            }
        }
        assert_eq!(out, IS_KEYS, "IS lost keys");
        let mut sum_after = 0u64;
        for w in self.keys.windows(2) {
            assert!(w[0] <= w[1], "IS output not sorted");
        }
        for &k in &self.keys {
            sum_after += k as u64;
        }
        assert_eq!(sum_before, sum_after, "IS checksum mismatch");
        self.steps += 1;
    }

    fn counter(&self) -> u64 {
        self.steps
    }

    fn name(&self) -> &'static str {
        "is_like"
    }
}

/// Which kernel an experiment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// The BT-like solver (pvmbt stand-in).
    Bt,
    /// The integer-sort kernel (pvmis stand-in).
    Is,
}

impl KernelKind {
    /// Instantiate the kernel.
    pub fn build(self, seed: u64) -> Box<dyn Kernel + Send> {
        match self {
            KernelKind::Bt => Box::new(BtLike::new(seed)),
            KernelKind::Is => Box::new(IsLike::new(seed)),
        }
    }

    /// Benchmark label, matching the paper's Figure 31.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Bt => "pvmbt",
            KernelKind::Is => "pvmis",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_steps_verify_and_count() {
        let mut k = BtLike::new(7);
        for _ in 0..3 {
            k.step();
        }
        assert_eq!(k.counter(), 3);
        assert_eq!(k.name(), "bt_like");
    }

    #[test]
    fn is_steps_verify_and_count() {
        let mut k = IsLike::new(11);
        for _ in 0..3 {
            k.step();
        }
        assert_eq!(k.counter(), 3);
    }

    #[test]
    fn kernels_are_deterministic_per_seed_but_vary() {
        // Two BtLike kernels with the same seed draw identical matrices;
        // different seeds draw different ones. We probe via the RNG.
        let mut a = BtLike::new(5);
        let mut b = BtLike::new(5);
        let mut c = BtLike::new(6);
        assert_eq!(a.next_f(), b.next_f());
        assert_ne!(a.next_f(), c.next_f());
    }

    #[test]
    fn block_solve_known_system() {
        // Identity system: x == rhs.
        let m = block_identity();
        let rhs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(block_solve(&m, &rhs), rhs);
        // Diagonal system.
        let mut d = block_identity();
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = (i + 1) as f64;
        }
        let x = block_solve(&d, &rhs);
        for (i, v) in x.iter().enumerate() {
            assert!((v - 1.0).abs() < 1e-12, "x[{i}]={v}");
        }
    }

    #[test]
    fn block_inverse_times_matrix_is_identity() {
        let mut k = BtLike::new(3);
        let mut m = [[0.0; B]; B];
        for r in 0..B {
            for c in 0..B {
                m[r][c] = 0.2 * k.next_f();
            }
            m[r][r] += 2.0;
        }
        let inv = block_inverse(&m);
        let prod = block_mat_mat(&inv, &m);
        for r in 0..B {
            for c in 0..B {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((prod[r][c] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kernel_kind_builds_both() {
        let mut b = KernelKind::Bt.build(1);
        let mut i = KernelKind::Is.build(1);
        b.step();
        i.step();
        assert_eq!(b.counter(), 1);
        assert_eq!(i.counter(), 1);
        assert_eq!(KernelKind::Bt.label(), "pvmbt");
        assert_eq!(KernelKind::Is.label(), "pvmis");
    }
}

//! Per-thread CPU-time measurement — the testbed's stand-in for the AIX
//! tracing facility's per-process CPU accounting.
//!
//! The primary source is `/proc/thread-self/schedstat` (nanosecond
//! granularity); if the kernel lacks schedstats, we fall back to
//! `/proc/thread-self/stat` utime+stime ticks (typically 10 ms
//! granularity). Either way the reading is for the *calling* thread, so a
//! measured thread samples itself at section boundaries.

use std::fs;
use std::time::Duration;

/// Which accounting source produced a reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuTimeSource {
    /// `/proc/thread-self/schedstat` (nanoseconds).
    SchedStat,
    /// `/proc/thread-self/stat` utime+stime (clock ticks).
    StatTicks,
    /// No procfs available; readings are zero.
    Unavailable,
}

/// A point-in-time CPU usage reading of the current thread.
#[derive(Clone, Copy, Debug)]
pub struct ThreadCpu {
    cpu: Duration,
    /// Where the reading came from.
    pub source: CpuTimeSource,
}

impl ThreadCpu {
    /// Sample the calling thread's cumulative CPU time.
    pub fn now() -> ThreadCpu {
        if let Some(ns) = read_schedstat_ns() {
            return ThreadCpu {
                cpu: Duration::from_nanos(ns),
                source: CpuTimeSource::SchedStat,
            };
        }
        if let Some(ticks) = read_stat_ticks() {
            // USER_HZ is 100 on every Linux ABI we target.
            return ThreadCpu {
                cpu: Duration::from_millis(ticks * 10),
                source: CpuTimeSource::StatTicks,
            };
        }
        ThreadCpu {
            cpu: Duration::ZERO,
            source: CpuTimeSource::Unavailable,
        }
    }

    /// Cumulative CPU time at this reading.
    pub fn total(&self) -> Duration {
        self.cpu
    }

    /// CPU time consumed since an earlier reading of the same thread.
    pub fn since(&self, earlier: &ThreadCpu) -> Duration {
        self.cpu.saturating_sub(earlier.cpu)
    }
}

fn read_schedstat_ns() -> Option<u64> {
    let s = fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    let first: u64 = s.split_ascii_whitespace().next()?.parse().ok()?;
    // A kernel without CONFIG_SCHEDSTATS reports 0 forever; treat a zero
    // reading as usable only if it parses (callers diff two readings, and
    // an always-zero source is detected by the harness self-check).
    Some(first)
}

fn read_stat_ticks() -> Option<u64> {
    let s = fs::read_to_string("/proc/thread-self/stat").ok()?;
    // Fields after the parenthesised comm (which may contain spaces).
    let rest = s.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
    // utime is field 14, stime 15 (1-based, counting from pid); after ')'
    // we are past fields 1-2, so indices 11 and 12.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// Self-check: verify the CPU-time source actually advances under load.
/// Returns the measured CPU time of a short busy loop.
pub fn self_check() -> (CpuTimeSource, Duration) {
    let start = ThreadCpu::now();
    let t0 = std::time::Instant::now();
    let mut acc = 0u64;
    while t0.elapsed() < Duration::from_millis(50) {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    std::hint::black_box(acc);
    let end = ThreadCpu::now();
    (start.source, end.since(&start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_loop_consumes_cpu() {
        let (source, used) = self_check();
        match source {
            CpuTimeSource::SchedStat => {
                // 50ms of spinning should register at least 20ms.
                assert!(used >= Duration::from_millis(20), "used={used:?}");
            }
            CpuTimeSource::StatTicks => {
                // Tick granularity: allow >= 1 tick over a longer spin.
                assert!(used <= Duration::from_secs(1));
            }
            CpuTimeSource::Unavailable => {
                // Nothing to assert off-Linux.
            }
        }
    }

    #[test]
    fn readings_are_monotone() {
        let a = ThreadCpu::now();
        let mut x = 1u64;
        for i in 0..100_000u64 {
            x = x.wrapping_mul(i | 1);
        }
        std::hint::black_box(x);
        let b = ThreadCpu::now();
        assert!(b.total() >= a.total());
        assert_eq!(b.since(&a), b.total() - a.total());
    }

    #[test]
    fn idle_thread_uses_less_than_busy_thread() {
        let (src, _) = self_check();
        if src != CpuTimeSource::SchedStat {
            return; // Too coarse to compare reliably.
        }
        let idle = {
            let a = ThreadCpu::now();
            std::thread::sleep(Duration::from_millis(60));
            ThreadCpu::now().since(&a)
        };
        let (_, busy) = self_check();
        assert!(busy > idle, "busy={busy:?} idle={idle:?}");
    }
}

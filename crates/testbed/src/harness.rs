//! The measurement harness: spin up application / daemon / collector
//! threads connected by real OS pipes, run for a fixed duration, and
//! report per-role CPU times — the testbed equivalent of the paper's
//! Figure 29 experimental setup.
//!
//! Topology per "node": one application thread running a compute kernel
//! and emitting instrumentation samples into its pipe, and one Paradyn
//! daemon thread collecting that pipe and forwarding to the collector
//! ("main Paradyn process") thread over a shared pipe, under the CF or BF
//! policy.

use crate::cputime::{CpuTimeSource, ThreadCpu};
use crate::kernels::KernelKind;
use crate::pipes::{sample_pipe, BulkReader, SampleRecord};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Data-forwarding policy of the daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Collect-and-forward: one forward operation (write syscall +
    /// protocol work) per sample.
    Cf,
    /// Batch-and-forward with the given batch size.
    Bf {
        /// Samples per forward operation.
        batch: usize,
    },
}

impl Policy {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Policy::Cf => "CF".into(),
            Policy::Bf { batch } => format!("BF({batch})"),
        }
    }
}

/// An injected daemon failure: the daemon "dies" (drops its in-memory
/// batch) once `kill_after` has elapsed, and either restarts after a
/// recovery delay or stays dead — in which case the application's next
/// write sees `BrokenPipe` and instrumentation degrades gracefully.
#[derive(Clone, Copy, Debug)]
pub struct DaemonFault {
    /// Wall-clock time into the run at which each daemon is killed (and,
    /// when restarting, re-killed this long after each recovery).
    pub kill_after: Duration,
    /// Recovery delay before the daemon resumes draining its pipe;
    /// `None` = the daemon stays dead for the rest of the run.
    pub restart_after: Option<Duration>,
}

/// Number of priority tiers the testbed accounts shed samples under
/// (mirrors the simulator's `MAX_TIERS`).
pub const MAX_TIERS: usize = 4;

/// The testbed mirror of the simulator's graceful-degradation protocol:
/// the daemon watches its pipe backlog (samples written minus samples
/// drained) against high/low watermarks; above the high mark it raises a
/// shared pressure flag and sheds low-priority samples (tier =
/// `seq % tiers`, tiers `>= keep_tiers` sheddable), and the application
/// reacts to the flag by multiplicatively slowing its sampling, recovering
/// additively once pressure has stayed clear for the hysteresis window.
#[derive(Clone, Copy, Debug)]
pub struct TestbedDegradation {
    /// Priority tiers (at most [`MAX_TIERS`]); a sample's tier is
    /// `seq % tiers`.
    pub tiers: usize,
    /// Tiers `0..keep_tiers` are never shed.
    pub keep_tiers: usize,
    /// Backlog (outstanding samples) at which the daemon starts shedding
    /// and raises pressure.
    pub hi: u64,
    /// Backlog at which shedding stops and pressure clears.
    pub lo: u64,
    /// Multiplicative sampling-period slowdown applied on each rising
    /// pressure edge the application observes.
    pub md_factor: f64,
    /// Upper bound on the accumulated slowdown multiplier.
    pub max_slowdown: f64,
    /// Additive multiplier decrement per recovery step.
    pub recover_step: f64,
    /// Interval between recovery steps.
    pub recover_period: Duration,
    /// Pressure must stay clear this long before recovery begins.
    pub hysteresis: Duration,
}

impl Default for TestbedDegradation {
    fn default() -> Self {
        TestbedDegradation {
            tiers: 2,
            keep_tiers: 1,
            hi: 64,
            lo: 16,
            md_factor: 2.0,
            max_slowdown: 8.0,
            recover_step: 0.25,
            recover_period: Duration::from_millis(50),
            hysteresis: Duration::from_millis(100),
        }
    }
}

/// Configuration of one measurement run.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Forwarding policy.
    pub policy: Policy,
    /// Sampling period of the application instrumentation.
    pub sampling_period: Duration,
    /// Which compute kernel the application runs.
    pub kernel: KernelKind,
    /// Number of application/daemon pairs.
    pub nodes: usize,
    /// Wall-clock run duration.
    pub duration: Duration,
    /// Seed for the kernels.
    pub seed: u64,
    /// Spin units of per-forward-operation protocol work in the daemon,
    /// standing in for Paradyn's per-message marshalling/timestamping. The
    /// default is calibrated so the CF→BF daemon-CPU reduction lands in
    /// the paper's measured band (Section 5: >60%).
    pub forward_work_units: u32,
    /// Injected daemon failure, applied to every daemon; `None` = fault
    /// free.
    pub daemon_fault: Option<DaemonFault>,
    /// Per-operation timeout on the collector's record receive. When set,
    /// records are pulled through a bounded channel and every receive that
    /// exceeds the timeout is counted (stall detection); `None` keeps the
    /// direct blocking-read path.
    pub op_timeout: Option<Duration>,
    /// Watermark-driven overload control; `None` = the pipeline runs
    /// exactly as before (no atomics consulted on the data path).
    pub degradation: Option<TestbedDegradation>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            policy: Policy::Cf,
            sampling_period: Duration::from_millis(10),
            kernel: KernelKind::Bt,
            nodes: 1,
            duration: Duration::from_secs(3),
            seed: 1,
            forward_work_units: 25_000,
            daemon_fault: None,
            op_timeout: None,
            degradation: None,
        }
    }
}

/// Results of one run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Total application-thread CPU time (all nodes).
    pub app_cpu: Duration,
    /// Total daemon-thread CPU time (all nodes) — the direct IS overhead.
    pub pd_cpu: Duration,
    /// Collector ("main Paradyn process") CPU time.
    pub main_cpu: Duration,
    /// Samples generated by application instrumentation.
    pub samples_generated: u64,
    /// Samples received by the collector.
    pub samples_received: u64,
    /// Forward operations (write syscalls) issued by daemons.
    pub forward_ops: u64,
    /// `read` syscalls issued by the collector.
    pub collector_reads: u64,
    /// Mean generation-to-receipt latency.
    pub latency_mean: Duration,
    /// Kernel work units completed (all nodes).
    pub kernel_steps: u64,
    /// Actual wall-clock duration.
    pub wall: Duration,
    /// CPU accounting source in effect.
    pub cpu_source: CpuTimeSource,
    /// Injected daemon kills that fired.
    pub daemon_crashes: u64,
    /// Samples written but never delivered
    /// (`samples_generated - samples_received`): in-daemon batches dropped
    /// at a kill plus pipe backlog abandoned by a permanently dead daemon.
    pub samples_lost: u64,
    /// The in-daemon-buffer portion of `samples_lost` (batches dropped at
    /// kill time); under CF this is always 0 — the BF-vs-CF crash-loss
    /// asymmetry.
    pub daemon_lost: u64,
    /// Sample emissions the application dropped after its daemon died
    /// (`BrokenPipe` on write — graceful degradation, not a crash).
    pub app_write_failures: u64,
    /// Collector receives that exceeded `op_timeout`.
    pub op_timeouts: u64,
    /// Total daemon downtime spent in recovery sleeps (all nodes).
    pub daemon_downtime: Duration,
    /// Samples shed by daemons under backlog pressure (all nodes).
    pub samples_shed: u64,
    /// Shed samples broken down by priority tier.
    pub shed_by_tier: [u64; MAX_TIERS],
    /// Rising pressure edges the applications reacted to by throttling.
    pub throttle_events: u64,
}

impl Measurement {
    /// Daemon CPU normalized by that node class's total (app + daemon) —
    /// the paper's Figure 31(a) quantity.
    pub fn pd_normalized(&self) -> f64 {
        let total = self.app_cpu.as_secs_f64() + self.pd_cpu.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.pd_cpu.as_secs_f64() / total
        }
    }

    /// Main-process CPU as a fraction of all measured CPU — the
    /// Figure 31(b) quantity under our normalization (see EXPERIMENTS.md).
    pub fn main_normalized(&self) -> f64 {
        let total = self.app_cpu.as_secs_f64()
            + self.pd_cpu.as_secs_f64()
            + self.main_cpu.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.main_cpu.as_secs_f64() / total
        }
    }
}

/// Deterministic spin standing in for per-message protocol work.
#[inline]
fn protocol_work(units: u32, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..units {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    std::hint::black_box(x)
}

/// Run one measurement experiment.
///
/// # Errors
/// Propagates pipe-creation and I/O failures.
pub fn run(cfg: &TestbedConfig) -> io::Result<Measurement> {
    assert!(cfg.nodes >= 1);
    if let Policy::Bf { batch } = cfg.policy {
        assert!(batch >= 2, "BF batch must be >= 2 (1 is CF)");
        assert!(batch <= 128, "batch > 128 breaks pipe write atomicity");
    }
    if let Some(deg) = cfg.degradation {
        assert!(deg.tiers >= 1 && deg.tiers <= MAX_TIERS, "tiers out of range");
        assert!(deg.keep_tiers <= deg.tiers, "keep_tiers > tiers");
        assert!(deg.lo < deg.hi, "low watermark must sit below high");
    }
    let epoch = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));

    // Collector pipe shared by all daemons.
    let (collector_w, collector_r) = sample_pipe()?;

    // Collector thread.
    let op_timeout = cfg.op_timeout;
    let collector = thread::spawn(move || -> io::Result<CollectorResult> {
        let cpu0 = ThreadCpu::now();
        let mut br = BulkReader::new(collector_r);
        let mut received = 0u64;
        let mut latency_sum_ns = 0u128;
        let mut timeouts = 0u64;
        let reads;
        let mut reader_cpu = Duration::ZERO;
        let consume = |rec: SampleRecord, latency_sum_ns: &mut u128, received: &mut u64| {
            let now_ns = epoch.elapsed().as_nanos() as u64;
            *latency_sum_ns += now_ns.saturating_sub(rec.gen_ns) as u128;
            *received += 1;
            // Per-sample bookkeeping (metric aggregation), equal under
            // both policies.
            protocol_work(64, rec.value);
        };
        match op_timeout {
            None => {
                while let Some(rec) = br.next_record()? {
                    consume(rec, &mut latency_sum_ns, &mut received);
                }
                reads = br.read_syscalls();
            }
            Some(timeout) => {
                // Pull records through a bounded channel so each receive
                // can be bounded in time: a stalled pipeline (dead daemon,
                // wedged writer) shows up as counted timeouts instead of
                // an indefinite block.
                let (tx, rx) = mpsc::sync_channel::<io::Result<SampleRecord>>(1024);
                let reader = thread::spawn(move || {
                    let rcpu0 = ThreadCpu::now();
                    loop {
                        match br.next_record() {
                            Ok(Some(rec)) => {
                                if tx.send(Ok(rec)).is_err() {
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                break;
                            }
                        }
                    }
                    let rcpu = ThreadCpu::now();
                    (br.read_syscalls(), rcpu.since(&rcpu0))
                });
                let io_err = loop {
                    match rx.recv_timeout(timeout) {
                        Ok(Ok(rec)) => consume(rec, &mut latency_sum_ns, &mut received),
                        Ok(Err(e)) => break Some(e),
                        Err(mpsc::RecvTimeoutError::Timeout) => timeouts += 1,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                    }
                };
                // lint:allow(panic-path): a panicked child has no result to salvage; re-raise
                let (r, rc) = reader.join().expect("collector reader panicked");
                if let Some(e) = io_err {
                    return Err(e);
                }
                reads = r;
                reader_cpu = rc;
            }
        }
        let cpu = ThreadCpu::now();
        Ok(CollectorResult {
            cpu: cpu.since(&cpu0) + reader_cpu,
            received,
            latency_sum_ns,
            reads,
            timeouts,
            source: cpu.source,
        })
    });

    // Per-node app + daemon threads.
    let mut app_handles = Vec::with_capacity(cfg.nodes);
    let mut pd_handles = Vec::with_capacity(cfg.nodes);
    for node in 0..cfg.nodes {
        let (app_w, app_r) = sample_pipe()?;
        let out = collector_w.try_clone()?;
        let policy = cfg.policy;
        let fwd_units = cfg.forward_work_units;
        let fault = cfg.daemon_fault;
        let deg = cfg.degradation;
        // Shared backlog accounting for the watermark protocol: the app
        // counts samples written, the daemon counts samples drained, and
        // their difference is the node's outstanding backlog. The pressure
        // flag is the daemon's level signal back to the app.
        let written = Arc::new(AtomicU64::new(0));
        let pressure = Arc::new(AtomicBool::new(false));
        let written_pd = written.clone();
        let pressure_pd = pressure.clone();

        pd_handles.push(thread::spawn(move || -> io::Result<DaemonResult> {
            let cpu0 = ThreadCpu::now();
            let mut out = out;
            let mut app_r = app_r;
            let mut buffer: Vec<SampleRecord> = Vec::new();
            let mut forwards = 0u64;
            let mut crashes = 0u64;
            let mut lost = 0u64;
            let mut downtime = Duration::ZERO;
            let mut next_kill = fault.map(|f| f.kill_after);
            let mut drained = 0u64;
            let mut shedding = false;
            let mut shed = 0u64;
            let mut shed_by_tier = [0u64; MAX_TIERS];
            loop {
                // Supervision: fire the injected kill once its time has
                // come. The in-memory batch dies with the daemon — under
                // CF that batch is empty, under BF it holds up to
                // `batch - 1` samples, the crash-loss asymmetry the model
                // predicts.
                if let (Some(f), Some(kill_at)) = (fault, next_kill) {
                    if epoch.elapsed() >= kill_at {
                        crashes += 1;
                        lost += buffer.len() as u64;
                        buffer.clear();
                        match f.restart_after {
                            Some(delay) => {
                                // Down: the pipe backlog survives in the
                                // OS buffer and the writer blocks when it
                                // fills — no loss beyond the dropped
                                // batch.
                                thread::sleep(delay);
                                downtime += delay;
                                next_kill = Some(epoch.elapsed() + f.kill_after);
                            }
                            None => {
                                // Permanent death: dropping the reader
                                // abandons the pipe backlog and makes the
                                // application's next write fail with
                                // BrokenPipe.
                                let cpu = ThreadCpu::now();
                                return Ok(DaemonResult {
                                    cpu: cpu.since(&cpu0),
                                    forwards,
                                    crashes,
                                    lost,
                                    downtime,
                                    shed,
                                    shed_by_tier,
                                });
                            }
                        }
                    }
                }
                match app_r.read_record()? {
                    Some(rec) => {
                        drained += 1;
                        if let Some(deg) = deg {
                            // Watermark protocol, same shape as the
                            // simulator: hysteresis between hi and lo on
                            // the outstanding backlog, level-signalled
                            // pressure, shed only sheddable tiers.
                            let outstanding =
                                written_pd.load(Ordering::Relaxed).saturating_sub(drained);
                            if !shedding && outstanding >= deg.hi {
                                shedding = true;
                                pressure_pd.store(true, Ordering::Relaxed);
                            } else if shedding && outstanding <= deg.lo {
                                shedding = false;
                                pressure_pd.store(false, Ordering::Relaxed);
                            }
                            let tier = (rec.seq % deg.tiers as u64) as usize;
                            if shedding && tier >= deg.keep_tiers {
                                shed += 1;
                                shed_by_tier[tier] += 1;
                                continue;
                            }
                        }
                        match policy {
                            Policy::Cf => {
                                protocol_work(fwd_units, rec.seq);
                                out.write_record(&rec)?;
                                forwards += 1;
                            }
                            Policy::Bf { batch } => {
                                buffer.push(rec);
                                if buffer.len() >= batch {
                                    protocol_work(fwd_units, buffer[0].seq);
                                    out.write_batch(&buffer)?;
                                    buffer.clear();
                                    forwards += 1;
                                }
                            }
                        }
                    }
                    None => {
                        // Application exited: flush the partial batch.
                        if !buffer.is_empty() {
                            protocol_work(fwd_units, buffer[0].seq);
                            out.write_batch(&buffer)?;
                            forwards += 1;
                        }
                        let cpu = ThreadCpu::now();
                        return Ok(DaemonResult {
                            cpu: cpu.since(&cpu0),
                            forwards,
                            crashes,
                            lost,
                            downtime,
                            shed,
                            shed_by_tier,
                        });
                    }
                }
            }
        }));

        let stop = stop.clone();
        let kernel_kind = cfg.kernel;
        let seed = cfg.seed.wrapping_add(node as u64);
        let period = cfg.sampling_period;
        app_handles.push(thread::spawn(move || -> io::Result<AppResult> {
            let cpu0 = ThreadCpu::now();
            let mut app_w = app_w;
            let mut kernel = kernel_kind.build(seed);
            let mut seq = 0u64;
            let mut write_failures = 0u64;
            let mut next_sample = period;
            // Adaptive sampling-rate controller (multiplicative decrease
            // on each rising pressure edge, additive recovery after the
            // hysteresis window) — at mult 1.0 with no degradation config
            // the loop below is byte-for-byte the original behavior.
            let mut mult = 1.0f64;
            let mut was_pressured = false;
            let mut cleared_at: Option<Instant> = None;
            let mut last_recover = Instant::now();
            let mut throttle_events = 0u64;
            while !stop.load(Ordering::Relaxed) {
                kernel.step();
                // Instrumentation embedded in the application: emit a
                // sample when the period has elapsed (possibly several if
                // a long step spanned periods). Re-check `stop` here too:
                // under saturating overload the catch-up loop may never
                // drain, and only this check lets the run terminate.
                while !stop.load(Ordering::Relaxed) && epoch.elapsed() >= next_sample {
                    if let Some(deg) = deg {
                        let p = pressure.load(Ordering::Relaxed);
                        if p && !was_pressured {
                            mult = (mult * deg.md_factor).min(deg.max_slowdown);
                            throttle_events += 1;
                            cleared_at = None;
                        } else if !p && was_pressured {
                            cleared_at = Some(Instant::now());
                        }
                        was_pressured = p;
                        if !p && mult > 1.0 {
                            if let Some(t) = cleared_at {
                                if t.elapsed() >= deg.hysteresis
                                    && last_recover.elapsed() >= deg.recover_period
                                {
                                    mult = (mult - deg.recover_step).max(1.0);
                                    last_recover = Instant::now();
                                }
                            }
                        }
                    }
                    let rec = SampleRecord {
                        seq,
                        gen_ns: epoch.elapsed().as_nanos() as u64,
                        value: kernel.counter(),
                    };
                    // Blocks when the pipe is full — the paper's writer
                    // blocking semantics.
                    match app_w.write_record(&rec) {
                        Ok(()) => {
                            seq += 1;
                            written.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {
                            // The daemon died for good: drop the sample
                            // and keep computing uninstrumented instead of
                            // taking the application down with it.
                            write_failures += 1;
                        }
                        Err(e) => return Err(e),
                    }
                    next_sample += period.mul_f64(mult);
                }
            }
            let cpu = ThreadCpu::now();
            Ok(AppResult {
                cpu: cpu.since(&cpu0),
                generated: seq,
                write_failures,
                steps: kernel.counter(),
                throttle_events,
            })
        }));
    }
    // The harness keeps no collector writer: daemons own the only clones.
    drop(collector_w);

    thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);

    let mut app_cpu = Duration::ZERO;
    let mut generated = 0u64;
    let mut write_failures = 0u64;
    let mut steps = 0u64;
    let mut throttle_events = 0u64;
    for h in app_handles {
        // lint:allow(panic-path): a panicked child has no result to salvage; re-raise
        let r = h.join().expect("app thread panicked")?;
        app_cpu += r.cpu;
        generated += r.generated;
        write_failures += r.write_failures;
        steps += r.steps;
        throttle_events += r.throttle_events;
    }
    let mut pd_cpu = Duration::ZERO;
    let mut forwards = 0u64;
    let mut crashes = 0u64;
    let mut daemon_lost = 0u64;
    let mut downtime = Duration::ZERO;
    let mut shed = 0u64;
    let mut shed_by_tier = [0u64; MAX_TIERS];
    for h in pd_handles {
        // lint:allow(panic-path): a panicked child has no result to salvage; re-raise
        let r = h.join().expect("daemon thread panicked")?;
        pd_cpu += r.cpu;
        forwards += r.forwards;
        crashes += r.crashes;
        daemon_lost += r.lost;
        downtime += r.downtime;
        shed += r.shed;
        for (t, n) in shed_by_tier.iter_mut().zip(r.shed_by_tier) {
            *t += n;
        }
    }
    // lint:allow(panic-path): a panicked child has no result to salvage; re-raise
    let c = collector.join().expect("collector thread panicked")?;
    let wall = epoch.elapsed();
    Ok(Measurement {
        app_cpu,
        pd_cpu,
        main_cpu: c.cpu,
        samples_generated: generated,
        samples_received: c.received,
        forward_ops: forwards,
        collector_reads: c.reads,
        latency_mean: if c.received > 0 {
            Duration::from_nanos((c.latency_sum_ns / c.received as u128) as u64)
        } else {
            Duration::ZERO
        },
        kernel_steps: steps,
        wall,
        cpu_source: c.source,
        daemon_crashes: crashes,
        samples_lost: generated.saturating_sub(c.received + shed),
        daemon_lost,
        app_write_failures: write_failures,
        op_timeouts: c.timeouts,
        daemon_downtime: downtime,
        samples_shed: shed,
        shed_by_tier,
        throttle_events,
    })
}

struct CollectorResult {
    cpu: Duration,
    received: u64,
    latency_sum_ns: u128,
    reads: u64,
    timeouts: u64,
    source: CpuTimeSource,
}

struct DaemonResult {
    cpu: Duration,
    forwards: u64,
    crashes: u64,
    lost: u64,
    downtime: Duration,
    shed: u64,
    shed_by_tier: [u64; MAX_TIERS],
}

struct AppResult {
    cpu: Duration,
    generated: u64,
    write_failures: u64,
    steps: u64,
    throttle_events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: Policy, ms: u64) -> io::Result<Measurement> {
        run(&TestbedConfig {
            policy,
            sampling_period: Duration::from_millis(1),
            duration: Duration::from_millis(ms),
            ..Default::default()
        })
    }

    #[test]
    fn samples_flow_end_to_end() -> io::Result<()> {
        let m = quick(Policy::Cf, 400)?;
        assert!(m.samples_generated > 100, "gen={}", m.samples_generated);
        assert_eq!(m.samples_generated, m.samples_received);
        assert_eq!(m.forward_ops, m.samples_generated);
        assert!(m.kernel_steps > 0);
        assert!(m.latency_mean < Duration::from_millis(100));
        Ok(())
    }

    #[test]
    fn bf_issues_fewer_forward_ops() -> io::Result<()> {
        let m = quick(Policy::Bf { batch: 16 }, 400)?;
        assert_eq!(m.samples_generated, m.samples_received);
        // Forward ops ~ samples/16 (+1 for the final flush).
        assert!(
            m.forward_ops <= m.samples_generated / 16 + 1,
            "ops={} gen={}",
            m.forward_ops,
            m.samples_generated
        );
        // The collector needed far fewer reads than samples.
        assert!(m.collector_reads < m.samples_received);
        Ok(())
    }

    #[test]
    fn bf_daemon_cpu_below_cf() -> io::Result<()> {
        // The headline Section 5 result, at reduced scale. Only meaningful
        // with fine-grained CPU accounting.
        let cf = quick(Policy::Cf, 800)?;
        if cf.cpu_source != CpuTimeSource::SchedStat {
            return Ok(());
        }
        let bf = quick(Policy::Bf { batch: 32 }, 800)?;
        assert!(
            bf.pd_cpu < cf.pd_cpu,
            "bf={:?} cf={:?}",
            bf.pd_cpu,
            cf.pd_cpu
        );
        Ok(())
    }

    #[test]
    fn multi_node_runs_and_aggregates() -> io::Result<()> {
        let m = run(&TestbedConfig {
            policy: Policy::Cf,
            sampling_period: Duration::from_millis(2),
            nodes: 3,
            duration: Duration::from_millis(300),
            ..Default::default()
        })?;
        assert_eq!(m.samples_generated, m.samples_received);
        assert!(m.samples_generated > 50);
        Ok(())
    }

    #[test]
    fn normalized_fractions_are_sane() -> io::Result<()> {
        let m = quick(Policy::Cf, 300)?;
        assert!((0.0..=1.0).contains(&m.pd_normalized()));
        assert!((0.0..=1.0).contains(&m.main_normalized()));
        Ok(())
    }

    #[test]
    #[should_panic(expected = "BF batch")]
    fn bf_batch_of_one_rejected() {
        let _ = run(&TestbedConfig {
            policy: Policy::Bf { batch: 1 },
            ..Default::default()
        });
    }

    #[test]
    fn fault_free_runs_report_no_faults() -> io::Result<()> {
        let m = quick(Policy::Cf, 200)?;
        assert_eq!(m.daemon_crashes, 0);
        assert_eq!(m.samples_lost, 0);
        assert_eq!(m.daemon_lost, 0);
        assert_eq!(m.app_write_failures, 0);
        assert_eq!(m.op_timeouts, 0);
        assert_eq!(m.daemon_downtime, Duration::ZERO);
        assert_eq!(m.samples_shed, 0);
        assert_eq!(m.shed_by_tier, [0; MAX_TIERS]);
        assert_eq!(m.throttle_events, 0);
        Ok(())
    }

    #[test]
    fn overload_engages_watermark_protocol() -> io::Result<()> {
        // Fast sampling against a daemon paying heavy per-forward protocol
        // work: the backlog crosses the high watermark, the daemon sheds
        // the sheddable tiers and pressures the app into throttling, and
        // the extended conservation identity still balances.
        let m = run(&TestbedConfig {
            policy: Policy::Cf,
            sampling_period: Duration::from_micros(100),
            duration: Duration::from_millis(800),
            forward_work_units: 200_000,
            degradation: Some(TestbedDegradation {
                tiers: 4,
                keep_tiers: 2,
                hi: 32,
                lo: 8,
                hysteresis: Duration::from_millis(50),
                recover_period: Duration::from_millis(25),
                ..Default::default()
            }),
            ..Default::default()
        })?;
        assert!(m.samples_shed > 0, "never shed: {m:?}");
        assert!(m.throttle_events > 0, "app never throttled: {m:?}");
        for tier in 0..2 {
            assert_eq!(
                m.shed_by_tier[tier], 0,
                "protected tier {tier} shed: {:?}",
                m.shed_by_tier
            );
        }
        assert_eq!(
            m.samples_generated,
            m.samples_received + m.samples_lost + m.samples_shed,
            "conservation: {m:?}"
        );
        assert!(m.samples_received > 0, "goodput collapsed");
        Ok(())
    }

    #[test]
    fn lax_watermarks_stay_inert() -> io::Result<()> {
        // A configured controller whose watermarks are never crossed must
        // not shed, throttle, or lose anything.
        let m = run(&TestbedConfig {
            policy: Policy::Cf,
            sampling_period: Duration::from_millis(1),
            duration: Duration::from_millis(300),
            degradation: Some(TestbedDegradation {
                hi: u64::MAX / 2,
                lo: 1_000_000,
                ..Default::default()
            }),
            ..Default::default()
        })?;
        assert_eq!(m.samples_shed, 0);
        assert_eq!(m.throttle_events, 0);
        assert_eq!(m.samples_generated, m.samples_received);
        Ok(())
    }

    #[test]
    fn kill_and_restart_conserves_samples() -> io::Result<()> {
        // BF daemon killed twice mid-run: every generated sample is either
        // delivered or accounted as lost, and the only loss channel with a
        // restarting daemon is the dropped in-memory batch.
        let m = run(&TestbedConfig {
            policy: Policy::Bf { batch: 8 },
            sampling_period: Duration::from_millis(1),
            duration: Duration::from_millis(500),
            daemon_fault: Some(DaemonFault {
                kill_after: Duration::from_millis(120),
                restart_after: Some(Duration::from_millis(60)),
            }),
            ..Default::default()
        })?;
        assert!(m.daemon_crashes >= 1, "crashes={}", m.daemon_crashes);
        assert!(m.daemon_downtime >= Duration::from_millis(60));
        assert_eq!(
            m.samples_generated,
            m.samples_received + m.samples_lost,
            "gen={} recv={} lost={}",
            m.samples_generated,
            m.samples_received,
            m.samples_lost
        );
        assert_eq!(m.samples_lost, m.daemon_lost);
        assert_eq!(m.app_write_failures, 0);
        Ok(())
    }

    #[test]
    fn cf_daemon_loses_nothing_in_buffer_on_crash() -> io::Result<()> {
        // CF never holds a batch, so a kill+restart drops zero buffered
        // samples — the testbed side of the model's crash-loss asymmetry.
        let m = run(&TestbedConfig {
            policy: Policy::Cf,
            sampling_period: Duration::from_millis(1),
            duration: Duration::from_millis(400),
            daemon_fault: Some(DaemonFault {
                kill_after: Duration::from_millis(100),
                restart_after: Some(Duration::from_millis(50)),
            }),
            ..Default::default()
        })?;
        assert!(m.daemon_crashes >= 1);
        assert_eq!(m.daemon_lost, 0);
        assert_eq!(m.samples_generated, m.samples_received);
        Ok(())
    }

    #[test]
    fn permanently_dead_daemon_degrades_app_gracefully() -> io::Result<()> {
        // The daemon dies and never comes back: the application keeps
        // running (BrokenPipe is absorbed, kernel steps continue) and the
        // run still terminates cleanly.
        let m = run(&TestbedConfig {
            policy: Policy::Cf,
            sampling_period: Duration::from_millis(1),
            duration: Duration::from_millis(400),
            daemon_fault: Some(DaemonFault {
                kill_after: Duration::from_millis(100),
                restart_after: None,
            }),
            ..Default::default()
        })?;
        assert_eq!(m.daemon_crashes, 1);
        assert!(
            m.app_write_failures > 0,
            "app never saw the dead daemon (failures=0)"
        );
        assert!(m.samples_received <= m.samples_generated);
        // The abandoned pipe backlog is part of the loss accounting.
        assert!(m.samples_lost >= m.daemon_lost);
        assert!(m.kernel_steps > 0);
        Ok(())
    }

    #[test]
    fn op_timeout_detects_daemon_downtime() -> io::Result<()> {
        // A 200 ms outage with a 40 ms receive timeout must fire at least
        // one timeout at the collector.
        let m = run(&TestbedConfig {
            policy: Policy::Cf,
            sampling_period: Duration::from_millis(1),
            duration: Duration::from_millis(450),
            daemon_fault: Some(DaemonFault {
                kill_after: Duration::from_millis(100),
                restart_after: Some(Duration::from_millis(200)),
            }),
            op_timeout: Some(Duration::from_millis(40)),
            ..Default::default()
        })?;
        assert!(m.op_timeouts >= 1, "timeouts={}", m.op_timeouts);
        assert_eq!(m.samples_generated, m.samples_received + m.samples_lost);
        Ok(())
    }

    #[test]
    fn op_timeout_path_preserves_healthy_delivery() -> io::Result<()> {
        let m = run(&TestbedConfig {
            policy: Policy::Bf { batch: 8 },
            sampling_period: Duration::from_millis(1),
            duration: Duration::from_millis(300),
            op_timeout: Some(Duration::from_millis(500)),
            ..Default::default()
        })?;
        assert_eq!(m.samples_generated, m.samples_received);
        assert_eq!(m.op_timeouts, 0);
        assert_eq!(m.samples_lost, 0);
        Ok(())
    }
}

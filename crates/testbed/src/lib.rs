#![warn(missing_docs)]
//! # paradyn-testbed — a real multithreaded mini-IS for measurement-based
//! validation (paper Section 5)
//!
//! The paper validates its simulation findings by implementing the BF
//! policy in the real Paradyn IS and measuring CPU overheads with AIX
//! kernel tracing on an SP-2. This crate is the documented substitute:
//! a genuinely concurrent instrumentation system in which
//!
//! * application threads run verifiable compute kernels
//!   ([`kernels::BtLike`] / [`kernels::IsLike`] for NAS pvmbt / pvmis);
//! * instrumentation embedded in the application emits periodic samples
//!   into **real OS pipes** (`pipe(2)`, blocking when full);
//! * daemon threads collect the pipes and forward to a collector under
//!   the CF or BF policy — CF pays one `write` system call plus protocol
//!   work per sample, BF amortizes them over a batch;
//! * per-thread CPU time is measured from `/proc` ([`cputime`]), standing
//!   in for the AIX tracing facility.
//!
//! The mechanism under test (per-forward system-call + marshalling cost)
//! is the same one the paper credits for its >60% measured overhead
//! reduction, so the comparison — not the absolute numbers — carries over.

pub mod cputime;
pub mod harness;
pub mod kernels;
pub mod pipes;

pub use cputime::{self_check, CpuTimeSource, ThreadCpu};
pub use harness::{
    run, DaemonFault, Measurement, Policy, TestbedConfig, TestbedDegradation, MAX_TIERS,
};
pub use kernels::{BtLike, IsLike, Kernel, KernelKind};
pub use pipes::{
    sample_pipe, BulkReader, SampleReader, SampleRecord, SampleWriter, TruncatedRecord,
};

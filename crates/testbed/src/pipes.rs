//! Real OS pipes carrying fixed-size sample records.
//!
//! This is the testbed's load-bearing fidelity point: the application →
//! daemon and daemon → collector channels are genuine `pipe(2)` objects, so
//! a CF forward costs a real `write` system call per sample while a BF
//! forward amortizes one call over a whole batch — the exact mechanism the
//! paper credits for the >60% overhead reduction ("a system call is
//! necessary to forward each data sample, whereas in the BF policy, a
//! number of samples are forwarded per system call").

use std::io::{self, PipeReader, PipeWriter, Read, Write};

/// Size of one encoded sample record in bytes.
pub const RECORD_BYTES: usize = 24;

/// One instrumentation sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleRecord {
    /// Sequence number within the producing application process.
    pub seq: u64,
    /// Generation time, nanoseconds since the experiment epoch.
    pub gen_ns: u64,
    /// The sampled metric value (e.g. the kernel's progress counter).
    pub value: u64,
}

/// A decode was attempted on fewer bytes than one wire record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TruncatedRecord {
    /// Bytes available.
    pub got: usize,
}

impl std::fmt::Display for TruncatedRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "truncated sample record: got {} of {RECORD_BYTES} bytes",
            self.got
        )
    }
}

impl std::error::Error for TruncatedRecord {}

impl From<TruncatedRecord> for io::Error {
    fn from(e: TruncatedRecord) -> io::Error {
        io::Error::new(io::ErrorKind::UnexpectedEof, e)
    }
}

impl SampleRecord {
    /// Encode into the wire format (little-endian triple).
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&self.seq.to_le_bytes());
        buf[8..16].copy_from_slice(&self.gen_ns.to_le_bytes());
        buf[16..24].copy_from_slice(&self.value.to_le_bytes());
        buf
    }

    /// Decode from the wire format.
    pub fn decode(buf: &[u8; RECORD_BYTES]) -> SampleRecord {
        let mut word = [0u8; 8];
        let mut field = |range: std::ops::Range<usize>| {
            word.copy_from_slice(&buf[range]);
            u64::from_le_bytes(word)
        };
        SampleRecord {
            seq: field(0..8),
            gen_ns: field(8..16),
            value: field(16..24),
        }
    }

    /// Decode from an arbitrary byte slice, rejecting short input instead
    /// of panicking — the safe entry point for parsers that may be handed
    /// a truncated tail (partial read, killed writer).
    pub fn try_decode(buf: &[u8]) -> Result<SampleRecord, TruncatedRecord> {
        if buf.len() < RECORD_BYTES {
            return Err(TruncatedRecord { got: buf.len() });
        }
        let mut fixed = [0u8; RECORD_BYTES];
        fixed.copy_from_slice(&buf[..RECORD_BYTES]);
        Ok(SampleRecord::decode(&fixed))
    }
}

/// Writing half of a sample pipe.
pub struct SampleWriter {
    w: PipeWriter,
}

/// Reading half of a sample pipe.
pub struct SampleReader {
    r: PipeReader,
}

/// Create a connected sample pipe (an anonymous OS pipe).
pub fn sample_pipe() -> io::Result<(SampleWriter, SampleReader)> {
    let (r, w) = io::pipe()?;
    Ok((SampleWriter { w }, SampleReader { r }))
}

impl SampleWriter {
    /// Write one record — one `write` system call (the CF forward, and the
    /// application's sample deposit). Blocks when the pipe is full, exactly
    /// like the instrumented application in the paper's Section 4.3.3.
    pub fn write_record(&mut self, rec: &SampleRecord) -> io::Result<()> {
        self.w.write_all(&rec.encode())
    }

    /// Write a whole batch in one `write` system call (the BF forward).
    pub fn write_batch(&mut self, recs: &[SampleRecord]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(recs.len() * RECORD_BYTES);
        for r in recs {
            buf.extend_from_slice(&r.encode());
        }
        self.w.write_all(&buf)
    }

    /// Duplicate the writer (e.g. several daemons feeding one collector
    /// pipe; writes of < PIPE_BUF bytes are atomic).
    pub fn try_clone(&self) -> io::Result<SampleWriter> {
        Ok(SampleWriter {
            w: self.w.try_clone()?,
        })
    }
}

impl SampleReader {
    /// Read exactly one record. Returns `Ok(None)` at end-of-stream (all
    /// writers closed).
    pub fn read_record(&mut self) -> io::Result<Option<SampleRecord>> {
        let mut buf = [0u8; RECORD_BYTES];
        let mut filled = 0;
        while filled < RECORD_BYTES {
            match self.r.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(None);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "pipe closed mid-record",
                    ));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(Some(SampleRecord::decode(&buf)))
    }
}

/// Chunked reading half: refills a large buffer with one `read` call and
/// parses records out of it. Used by the collector (main Paradyn process):
/// under CF each refill typically nets one record, under BF a whole batch —
/// so the collector's system-call rate drops with batching exactly as the
/// paper measured (~80% main-process overhead reduction).
pub struct BulkReader {
    r: PipeReader,
    buf: Vec<u8>,
    filled: usize,
    pos: usize,
    refills: u64,
}

impl BulkReader {
    /// Wrap the reading half of a pipe.
    pub fn new(r: SampleReader) -> BulkReader {
        BulkReader {
            r: r.r,
            buf: vec![0; 4096],
            filled: 0,
            pos: 0,
            refills: 0,
        }
    }

    /// Next record, or `None` at end-of-stream.
    pub fn next_record(&mut self) -> io::Result<Option<SampleRecord>> {
        while self.filled - self.pos < RECORD_BYTES {
            // Compact any partial record to the front.
            self.buf.copy_within(self.pos..self.filled, 0);
            self.filled -= self.pos;
            self.pos = 0;
            match self.r.read(&mut self.buf[self.filled..]) {
                Ok(0) => {
                    if self.filled == 0 {
                        return Ok(None);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "pipe closed mid-record",
                    ));
                }
                Ok(n) => {
                    self.filled += n;
                    self.refills += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let rec = SampleRecord::try_decode(&self.buf[self.pos..self.filled])?;
        self.pos += RECORD_BYTES;
        Ok(Some(rec))
    }

    /// Number of `read` system calls issued so far.
    pub fn read_syscalls(&self) -> u64 {
        self.refills
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Propagate a worker thread's result; a panicked worker surfaces as
    /// an I/O error on the joining side instead of a cascading abort that
    /// would mask the original failure.
    fn join_io<T>(h: thread::JoinHandle<io::Result<T>>) -> io::Result<T> {
        h.join()
            .map_err(|_| io::Error::new(io::ErrorKind::Other, "worker thread panicked"))?
    }

    #[test]
    fn record_codec_round_trips() {
        let r = SampleRecord {
            seq: 42,
            gen_ns: 123_456_789_012,
            value: u64::MAX,
        };
        assert_eq!(SampleRecord::decode(&r.encode()), r);
    }

    #[test]
    fn try_decode_rejects_short_input() {
        let rec = SampleRecord {
            seq: 7,
            gen_ns: 8,
            value: 9,
        };
        let wire = rec.encode();
        assert_eq!(SampleRecord::try_decode(&wire), Ok(rec));
        // Extra trailing bytes are fine — only the first record is read.
        let mut long = wire.to_vec();
        long.extend_from_slice(&wire);
        assert_eq!(SampleRecord::try_decode(&long), Ok(rec));
        for cut in 0..RECORD_BYTES {
            assert_eq!(
                SampleRecord::try_decode(&wire[..cut]),
                Err(TruncatedRecord { got: cut }),
                "cut={cut}"
            );
        }
        let io_err: io::Error = TruncatedRecord { got: 3 }.into();
        assert_eq!(io_err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_record_is_an_error_not_a_panic() -> io::Result<()> {
        // A writer killed mid-record leaves a partial record in the pipe;
        // both readers must surface UnexpectedEof rather than panic.
        let (w, mut r) = sample_pipe()?;
        let mut raw = w.w;
        raw.write_all(&[0xAB; RECORD_BYTES - 5])?;
        drop(raw);
        let err = r.read_record().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let (w, r) = sample_pipe()?;
        let mut raw = w.w;
        let rec = SampleRecord {
            seq: 1,
            gen_ns: 2,
            value: 3,
        };
        raw.write_all(&rec.encode())?;
        raw.write_all(&[0xCD; 7])?;
        drop(raw);
        let mut br = BulkReader::new(r);
        assert_eq!(br.next_record()?, Some(rec));
        let err = br.next_record().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        Ok(())
    }

    #[test]
    fn single_records_cross_the_pipe() -> io::Result<()> {
        let (mut w, mut r) = sample_pipe()?;
        for i in 0..10 {
            w.write_record(&SampleRecord {
                seq: i,
                gen_ns: i * 100,
                value: i * 7,
            })?;
        }
        for i in 0..10 {
            // The writer wrote 10 records and is still open, so the stream
            // cannot be at EOF here; surface a premature EOF as the error
            // it is rather than aborting the harness.
            let rec = r.read_record()?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "EOF with writer open")
            })?;
            assert_eq!(rec.seq, i);
            assert_eq!(rec.value, i * 7);
        }
        Ok(())
    }

    #[test]
    fn batch_write_is_read_as_individual_records() -> io::Result<()> {
        let (mut w, mut r) = sample_pipe()?;
        let batch: Vec<SampleRecord> = (0..32)
            .map(|i| SampleRecord {
                seq: i,
                gen_ns: i,
                value: i,
            })
            .collect();
        w.write_batch(&batch)?;
        drop(w);
        let mut n = 0;
        while let Some(rec) = r.read_record()? {
            assert_eq!(rec.seq, n);
            n += 1;
        }
        assert_eq!(n, 32);
        Ok(())
    }

    #[test]
    fn eof_after_all_writers_closed() -> io::Result<()> {
        let (w, mut r) = sample_pipe()?;
        let w2 = w.try_clone()?;
        drop(w);
        let mut w2 = w2;
        w2.write_record(&SampleRecord {
            seq: 1,
            gen_ns: 2,
            value: 3,
        })?;
        drop(w2);
        assert!(r.read_record()?.is_some());
        assert!(r.read_record()?.is_none());
        Ok(())
    }

    #[test]
    fn cross_thread_streaming() -> io::Result<()> {
        let (mut w, mut r) = sample_pipe()?;
        let producer = thread::spawn(move || -> io::Result<()> {
            for i in 0..5_000u64 {
                w.write_record(&SampleRecord {
                    seq: i,
                    gen_ns: i,
                    value: i * i,
                })?;
            }
            Ok(())
        });
        let mut expected = 0u64;
        while let Some(rec) = r.read_record()? {
            assert_eq!(rec.seq, expected);
            expected += 1;
        }
        join_io(producer)?;
        assert_eq!(expected, 5_000);
        Ok(())
    }

    #[test]
    fn bulk_reader_parses_batches_with_few_syscalls() -> io::Result<()> {
        let (mut w, r) = sample_pipe()?;
        let batch: Vec<SampleRecord> = (0..64)
            .map(|i| SampleRecord {
                seq: i,
                gen_ns: 2 * i,
                value: 3 * i,
            })
            .collect();
        w.write_batch(&batch)?;
        drop(w);
        let mut br = BulkReader::new(r);
        let mut n = 0u64;
        while let Some(rec) = br.next_record()? {
            assert_eq!(rec.seq, n);
            n += 1;
        }
        assert_eq!(n, 64);
        // The whole batch arrived in one or two read calls, not 64.
        assert!(br.read_syscalls() <= 2, "refills={}", br.read_syscalls());
        Ok(())
    }

    #[test]
    fn bulk_reader_handles_record_straddling_buffer_boundary() -> io::Result<()> {
        // 4096 / 24 is not an integer, so with >170 records a record will
        // straddle the refill boundary.
        let (mut w, r) = sample_pipe()?;
        let writer = thread::spawn(move || -> io::Result<()> {
            for i in 0..500u64 {
                w.write_record(&SampleRecord {
                    seq: i,
                    gen_ns: i,
                    value: i,
                })?;
            }
            Ok(())
        });
        let mut br = BulkReader::new(r);
        let mut n = 0u64;
        while let Some(rec) = br.next_record()? {
            assert_eq!(rec.seq, n);
            n += 1;
        }
        join_io(writer)?;
        assert_eq!(n, 500);
        Ok(())
    }

    #[test]
    fn full_pipe_blocks_writer_until_drained() -> io::Result<()> {
        // A Linux pipe holds 64 KiB; fill it and verify the writer blocks
        // until the reader drains.
        let (mut w, mut r) = sample_pipe()?;
        let writer = thread::spawn(move || -> io::Result<u64> {
            let n = (64 * 1024 / RECORD_BYTES) as u64 + 100;
            for i in 0..n {
                w.write_record(&SampleRecord {
                    seq: i,
                    gen_ns: 0,
                    value: 0,
                })?;
            }
            Ok(n)
        });
        // Give the writer time to hit the full pipe.
        thread::sleep(std::time::Duration::from_millis(50));
        let mut read = 0u64;
        while let Some(_rec) = r.read_record()? {
            read += 1;
        }
        let written = join_io(writer)?;
        assert_eq!(read, written);
        Ok(())
    }
}

//! Experiment execution: single runs and replicated runs with confidence
//! intervals (the paper derives means "within 90% confidence intervals from
//! a sample of fifty values", Section 4.1).
//!
//! Replications are embarrassingly parallel: each draws its seed from its
//! own [`paradyn_des::Streams`] stream (one stream id per replication
//! index), so a replication's randomness is a pure function of
//! `(master seed, index)` and never of execution order. [`run_many`]
//! exploits that with `std::thread::scope`, statically partitioning the
//! index space across worker threads — the results are **bit-identical**
//! to the serial path at any thread count, which `tests/` asserts.

use crate::config::SimConfig;
use crate::metrics::SimMetrics;
use crate::model::snapshot::warm_snapshot;
use crate::model::{build, RoccModel};
use paradyn_des::{CalendarKind, Sim, SimTime, SnapError, Streams};
use paradyn_stats::{mean_ci, MeanCi};

/// Run one simulation to its configured horizon.
///
/// When `PARADYN_SHARDS` is set above 1 and the configuration is
/// [`crate::shard::shardable`], the run executes on the sharded driver
/// ([`crate::shard::run_sharded`]) with `PARADYN_SHARD_THREADS` OS
/// threads (default 1) — the metrics are bit-identical to the serial
/// engine either way.
///
/// # Panics
/// Panics on an invalid configuration.
pub fn run(cfg: &SimConfig) -> SimMetrics {
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    let shards = default_shards();
    let sim = if shards > 1 && crate::shard::shardable(cfg) {
        crate::shard::run_sharded(
            cfg,
            CalendarKind::default_from_env(),
            shards,
            default_shard_threads(),
        )
    } else {
        let mut sim = build(cfg);
        sim.run_until(horizon);
        sim
    };
    let events = sim.executed_events();
    sim.model.metrics(horizon - SimTime::ZERO, events)
}

/// Shard count for [`run`]: `PARADYN_SHARDS` if set, else 1 (serial).
pub fn default_shards() -> u16 {
    std::env::var("PARADYN_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &u16| n >= 1)
        .unwrap_or(1)
}

/// OS threads driving a sharded [`run`]: `PARADYN_SHARD_THREADS` if set,
/// else 1 (the window protocol runs the shards round-robin on the calling
/// thread — bit-identical to any other thread count).
pub fn default_shard_threads() -> usize {
    std::env::var("PARADYN_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(1)
}

/// Metrics of a replicated experiment: per-replication values plus the
/// derived confidence intervals for the headline quantities.
#[derive(Clone, Debug)]
pub struct Replicated {
    /// Per-replication metrics, in seed order.
    pub runs: Vec<SimMetrics>,
    /// CI for the daemon CPU time per node (s).
    pub pd_cpu_per_node_s: MeanCi,
    /// CI for the daemon CPU utilization per node.
    pub pd_cpu_util_per_node: MeanCi,
    /// CI for the main-process CPU utilization.
    pub main_cpu_util: MeanCi,
    /// CI for the IS CPU utilization per node.
    pub is_cpu_util_per_node: MeanCi,
    /// CI for the application CPU utilization per node.
    pub app_cpu_util_per_node: MeanCi,
    /// CI for mean monitoring latency (s); replications with no received
    /// samples are excluded.
    pub latency_s: MeanCi,
    /// CI for received-sample throughput (per s).
    pub throughput_per_s: MeanCi,
    /// CI for samples lost to faults/lossy pipes per replication.
    pub samples_lost: MeanCi,
    /// CI for total daemon downtime per replication (s).
    pub daemon_downtime_s: MeanCi,
}

/// Seed of replication `rep` under master seed `master`: the first output
/// of the replication's own derived stream. A replication's randomness is
/// a pure function of `(master, rep)`, independent of which thread runs it.
pub fn replication_seed(master: u64, rep: usize) -> u64 {
    Streams::new(master).stream(rep as u64).next_u64()
}

/// Worker-thread count: `PARADYN_THREADS` if set, else the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    std::env::var("PARADYN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run many independent configurations across `threads` scoped threads,
/// returning metrics in input order. Each run's outcome depends only on
/// its own configuration, so the output is bit-identical to running the
/// slice serially, at any thread count.
pub fn run_many(cfgs: &[SimConfig], threads: usize) -> Vec<SimMetrics> {
    let threads = threads.max(1).min(cfgs.len().max(1));
    if threads == 1 {
        return cfgs.iter().map(run).collect();
    }
    let mut out: Vec<Option<SimMetrics>> = vec![None; cfgs.len()];
    let chunk = cfgs.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (cfg_chunk, out_chunk) in cfgs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (c, slot) in cfg_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(run(c));
                }
            });
        }
    });
    out.into_iter()
        .map(|m| m.expect("scoped worker completed"))
        .collect()
}

/// Run `reps` forked replications of `cfg`: warm one simulation to
/// `warmup_s`, snapshot it, then restore the snapshot once per replication
/// and perturb each copy's random streams with
/// [`replication_seed`]`(cfg.seed, rep)` before continuing to the horizon.
///
/// The warmup transient is simulated **once** instead of once per
/// replication; each fork's metrics are bit-identical to
/// [`run_perturbed_from_zero`] with the same warmup and replication index,
/// at any `threads` value (asserted by `tests/snapshot_equivalence.rs`).
///
/// # Panics
/// Panics on an invalid configuration.
pub fn run_forked(
    cfg: &SimConfig,
    warmup_s: f64,
    reps: usize,
    threads: usize,
) -> Result<Vec<SimMetrics>, SnapError> {
    let kind = CalendarKind::default_from_env();
    let snap = warm_snapshot(cfg, SimTime::from_secs_f64(warmup_s), kind)?;
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    let salts: Vec<u64> = (0..reps).map(|r| replication_seed(cfg.seed, r)).collect();
    let work = |salt: u64| -> Result<SimMetrics, SnapError> {
        let mut sim = Sim::restore(RoccModel::new(cfg.clone()), kind, &snap)?;
        sim.model.perturb_streams(salt);
        sim.run_until(horizon);
        let events = sim.executed_events();
        Ok(sim.model.metrics(horizon - SimTime::ZERO, events))
    };
    let threads = threads.max(1).min(reps.max(1));
    if threads == 1 {
        return salts.iter().map(|&s| work(s)).collect();
    }
    let mut out: Vec<Option<Result<SimMetrics, SnapError>>> = (0..reps).map(|_| None).collect();
    let chunk = reps.div_ceil(threads);
    let work = &work;
    std::thread::scope(|s| {
        for (salt_chunk, out_chunk) in salts.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (&salt, slot) in salt_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(work(salt));
                }
            });
        }
    });
    out.into_iter()
        .map(|m| m.expect("scoped worker completed"))
        .collect()
}

/// Reference oracle for [`run_forked`]: build `cfg` from zero, run to the
/// warmup point, apply the same stream perturbation as replication `rep` of
/// the forked path, and continue to the horizon — no snapshot involved.
///
/// # Panics
/// Panics on an invalid configuration.
pub fn run_perturbed_from_zero(cfg: &SimConfig, warmup_s: f64, rep: usize) -> SimMetrics {
    let mut sim = build(cfg);
    sim.run_until(SimTime::from_secs_f64(warmup_s));
    sim.model.perturb_streams(replication_seed(cfg.seed, rep));
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    sim.run_until(horizon);
    let events = sim.executed_events();
    sim.model.metrics(horizon - SimTime::ZERO, events)
}

/// Run `reps` replications with distinct seeds derived from `cfg.seed`,
/// reporting means at the given confidence (the paper uses 0.90).
/// Replications run in parallel on [`default_threads`] threads; use
/// [`run_replicated_threads`] to pin the thread count.
pub fn run_replicated(cfg: &SimConfig, reps: usize, confidence: f64) -> Replicated {
    run_replicated_threads(cfg, reps, confidence, default_threads())
}

/// [`run_replicated`] with an explicit thread count (`1` = serial path).
/// The metrics are bit-identical for every `threads` value.
pub fn run_replicated_threads(
    cfg: &SimConfig,
    reps: usize,
    confidence: f64,
    threads: usize,
) -> Replicated {
    assert!(reps >= 1);
    let cfgs: Vec<SimConfig> = (0..reps)
        .map(|r| {
            let mut c = cfg.clone();
            c.seed = replication_seed(cfg.seed, r);
            c
        })
        .collect();
    let runs = run_many(&cfgs, threads);
    let col = |f: &dyn Fn(&SimMetrics) -> f64| -> Vec<f64> {
        runs.iter().map(f).filter(|v| v.is_finite()).collect()
    };
    let ci = |xs: Vec<f64>| {
        if xs.is_empty() {
            MeanCi {
                mean: f64::NAN,
                half_width: f64::NAN,
                confidence,
            }
        } else {
            mean_ci(&xs, confidence)
        }
    };
    Replicated {
        pd_cpu_per_node_s: ci(col(&|m| m.pd_cpu_per_node_s)),
        pd_cpu_util_per_node: ci(col(&|m| m.pd_cpu_util_per_node)),
        main_cpu_util: ci(col(&|m| m.main_cpu_util)),
        is_cpu_util_per_node: ci(col(&|m| m.is_cpu_util_per_node)),
        app_cpu_util_per_node: ci(col(&|m| m.app_cpu_util_per_node)),
        latency_s: ci(col(&|m| m.latency_mean_s)),
        throughput_per_s: ci(col(&|m| m.throughput_per_s)),
        samples_lost: ci(col(&|m| m.samples_lost as f64)),
        daemon_downtime_s: ci(col(&|m| m.daemon_downtime_s)),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Arch, SimConfig};

    fn quick_cfg() -> SimConfig {
        SimConfig {
            arch: Arch::Now {
                contention_free: true,
            },
            nodes: 2,
            duration_s: 5.0,
            ..Default::default()
        }
    }

    #[test]
    fn single_run_produces_activity() {
        let m = run(&quick_cfg());
        assert!(m.events > 1000, "events={}", m.events);
        assert!(m.generated_samples > 0);
        assert!(m.received_samples > 0);
        assert!(m.received_samples <= m.generated_samples);
        assert!(m.pd_cpu_util_per_node > 0.0);
        assert!(m.app_cpu_util_per_node > 0.5);
        assert!(m.latency_mean_s > 0.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(&quick_cfg());
        let b = run(&quick_cfg());
        assert_eq!(a.events, b.events);
        assert_eq!(a.received_samples, b.received_samples);
        assert_eq!(a.latency_mean_s, b.latency_mean_s);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&quick_cfg());
        let b = run(&SimConfig {
            seed: 999,
            ..quick_cfg()
        });
        assert_ne!(a.received_samples, b.received_samples);
    }

    #[test]
    fn replication_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|r| replication_seed(42, r)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        assert_eq!(replication_seed(42, 7), seeds[7]);
    }

    #[test]
    fn run_many_preserves_input_order() {
        let cfgs: Vec<SimConfig> = (0..5)
            .map(|i| SimConfig {
                seed: 1000 + i,
                ..quick_cfg()
            })
            .collect();
        let serial = run_many(&cfgs, 1);
        let parallel = run_many(&cfgs, 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.events, b.events);
            assert_eq!(a.received_samples, b.received_samples);
        }
    }

    #[test]
    fn replication_gives_tighter_answer_than_one_run() {
        let r = run_replicated(&quick_cfg(), 5, 0.90);
        assert_eq!(r.runs.len(), 5);
        assert!(r.pd_cpu_util_per_node.mean > 0.0);
        assert!(r.pd_cpu_util_per_node.half_width >= 0.0);
        // The CI half width should be small relative to the mean for this
        // well-behaved metric.
        assert!(
            r.app_cpu_util_per_node.relative_precision() < 0.2,
            "rp={}",
            r.app_cpu_util_per_node.relative_precision()
        );
    }
}

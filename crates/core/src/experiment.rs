//! Experiment execution: single runs and replicated runs with confidence
//! intervals (the paper derives means "within 90% confidence intervals from
//! a sample of fifty values", Section 4.1).

use crate::config::SimConfig;
use crate::metrics::SimMetrics;
use crate::model::build;
use paradyn_des::SimTime;
use paradyn_stats::{mean_ci, MeanCi};

/// Run one simulation to its configured horizon.
///
/// # Panics
/// Panics on an invalid configuration.
pub fn run(cfg: &SimConfig) -> SimMetrics {
    let mut sim = build(cfg);
    let horizon = SimTime::from_secs_f64(cfg.duration_s);
    sim.run_until(horizon);
    let events = sim.executed_events();
    sim.model.metrics(horizon - SimTime::ZERO, events)
}

/// Metrics of a replicated experiment: per-replication values plus the
/// derived confidence intervals for the headline quantities.
#[derive(Clone, Debug)]
pub struct Replicated {
    /// Per-replication metrics, in seed order.
    pub runs: Vec<SimMetrics>,
    /// CI for the daemon CPU time per node (s).
    pub pd_cpu_per_node_s: MeanCi,
    /// CI for the daemon CPU utilization per node.
    pub pd_cpu_util_per_node: MeanCi,
    /// CI for the main-process CPU utilization.
    pub main_cpu_util: MeanCi,
    /// CI for the IS CPU utilization per node.
    pub is_cpu_util_per_node: MeanCi,
    /// CI for the application CPU utilization per node.
    pub app_cpu_util_per_node: MeanCi,
    /// CI for mean monitoring latency (s); replications with no received
    /// samples are excluded.
    pub latency_s: MeanCi,
    /// CI for received-sample throughput (per s).
    pub throughput_per_s: MeanCi,
}

/// Run `reps` replications with distinct seeds derived from `cfg.seed`,
/// reporting means at the given confidence (the paper uses 0.90).
pub fn run_replicated(cfg: &SimConfig, reps: usize, confidence: f64) -> Replicated {
    assert!(reps >= 1);
    let runs: Vec<SimMetrics> = (0..reps)
        .map(|r| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r as u64 + 1));
            run(&c)
        })
        .collect();
    let col = |f: &dyn Fn(&SimMetrics) -> f64| -> Vec<f64> {
        runs.iter().map(f).filter(|v| v.is_finite()).collect()
    };
    let ci = |xs: Vec<f64>| {
        if xs.is_empty() {
            MeanCi {
                mean: f64::NAN,
                half_width: f64::NAN,
                confidence,
            }
        } else {
            mean_ci(&xs, confidence)
        }
    };
    Replicated {
        pd_cpu_per_node_s: ci(col(&|m| m.pd_cpu_per_node_s)),
        pd_cpu_util_per_node: ci(col(&|m| m.pd_cpu_util_per_node)),
        main_cpu_util: ci(col(&|m| m.main_cpu_util)),
        is_cpu_util_per_node: ci(col(&|m| m.is_cpu_util_per_node)),
        app_cpu_util_per_node: ci(col(&|m| m.app_cpu_util_per_node)),
        latency_s: ci(col(&|m| m.latency_mean_s)),
        throughput_per_s: ci(col(&|m| m.throughput_per_s)),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Arch, SimConfig};

    fn quick_cfg() -> SimConfig {
        SimConfig {
            arch: Arch::Now {
                contention_free: true,
            },
            nodes: 2,
            duration_s: 5.0,
            ..Default::default()
        }
    }

    #[test]
    fn single_run_produces_activity() {
        let m = run(&quick_cfg());
        assert!(m.events > 1000, "events={}", m.events);
        assert!(m.generated_samples > 0);
        assert!(m.received_samples > 0);
        assert!(m.received_samples <= m.generated_samples);
        assert!(m.pd_cpu_util_per_node > 0.0);
        assert!(m.app_cpu_util_per_node > 0.5);
        assert!(m.latency_mean_s > 0.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(&quick_cfg());
        let b = run(&quick_cfg());
        assert_eq!(a.events, b.events);
        assert_eq!(a.received_samples, b.received_samples);
        assert_eq!(a.latency_mean_s, b.latency_mean_s);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&quick_cfg());
        let b = run(&SimConfig {
            seed: 999,
            ..quick_cfg()
        });
        assert_ne!(a.received_samples, b.received_samples);
    }

    #[test]
    fn replication_gives_tighter_answer_than_one_run() {
        let r = run_replicated(&quick_cfg(), 5, 0.90);
        assert_eq!(r.runs.len(), 5);
        assert!(r.pd_cpu_util_per_node.mean > 0.0);
        assert!(r.pd_cpu_util_per_node.half_width >= 0.0);
        // The CI half width should be small relative to the mean for this
        // well-behaved metric.
        assert!(
            r.app_cpu_util_per_node.relative_precision() < 0.2,
            "rp={}",
            r.app_cpu_util_per_node.relative_precision()
        );
    }
}

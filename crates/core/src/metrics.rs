//! End-of-run metrics, matching the paper's global- and local-level metric
//! set (Section 2.1): direct IS overhead (daemon/main CPU time and
//! utilization), monitoring latency, data-forwarding throughput, and
//! application CPU utilization.

use crate::config::Arch;
use crate::model::types::class_idx;
use crate::model::RoccModel;
use paradyn_des::SimDur;
use paradyn_workload::ProcessClass;

/// Aggregated results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimMetrics {
    /// Simulated duration (s).
    pub duration_s: f64,
    /// Node count (SMP: CPU count).
    pub nodes: usize,
    /// Total CPU time by process class (s), summed over all CPUs
    /// (indexable via [`SimMetrics::cpu_time_s`]).
    cpu_time_by_class_s: [f64; 5],
    /// Total network occupancy by class (s).
    net_time_by_class_s: [f64; 5],
    /// Paradyn daemon CPU time per node (s) — the paper's "direct
    /// overhead" (includes tree-merge work).
    pub pd_cpu_per_node_s: f64,
    /// Paradyn daemon CPU utilization per node (fraction).
    pub pd_cpu_util_per_node: f64,
    /// Main Paradyn process CPU utilization (fraction of its host CPU;
    /// SMP: of the pool).
    pub main_cpu_util: f64,
    /// IS (daemons + main) CPU utilization per node (fraction) — the
    /// paper's SMP metric.
    pub is_cpu_util_per_node: f64,
    /// Application CPU utilization per node (fraction).
    pub app_cpu_util_per_node: f64,
    /// Mean monitoring latency per received sample (s), generation to
    /// receipt, *including* batch-accumulation time; `NaN` when nothing was
    /// received.
    pub latency_mean_s: f64,
    /// Mean forwarding latency per received message (s), batch-ready to
    /// receipt — the paper's effective NOW/SMP latency metric.
    pub fwd_latency_mean_s: f64,
    /// Samples received by the main process.
    pub received_samples: u64,
    /// Messages received by the main process.
    pub received_msgs: u64,
    /// Samples deposited into pipes.
    pub generated_samples: u64,
    /// Received samples per second (the throughput metric).
    pub throughput_per_s: f64,
    /// Network utilization (shared medium: busy fraction; contention-free:
    /// mean per-node link occupancy).
    pub net_util: f64,
    /// Deposits that blocked on a full pipe.
    pub blocked_deposits: u64,
    /// Barrier release operations.
    pub barrier_ops: u64,
    /// Batches forwarded by daemons.
    pub forwarded_batches: u64,
    /// Samples forwarded by daemons.
    pub forwarded_samples: u64,
    /// Mean of the daemons' batch thresholds at end of run (equals the
    /// configured batch unless adaptive regulation is active).
    pub mean_daemon_batch: f64,
    /// Total adaptive batch adjustments across daemons.
    pub batch_adjustments: u64,
    /// Events executed by the simulator.
    pub events: u64,
}

impl SimMetrics {
    /// Total CPU time of one class across all CPUs (s).
    pub fn cpu_time_s(&self, class: ProcessClass) -> f64 {
        self.cpu_time_by_class_s[class_idx(class)]
    }

    /// Total network occupancy of one class (s).
    pub fn net_time_s(&self, class: ProcessClass) -> f64 {
        self.net_time_by_class_s[class_idx(class)]
    }

    /// Build from a finished model.
    pub(crate) fn from_model(m: &RoccModel, horizon: SimDur, events: u64) -> SimMetrics {
        let dur = horizon.as_secs_f64();
        let nodes = m.cfg.nodes;
        let n = nodes as f64;
        let mut cpu = [0.0; 5];
        let mut net = [0.0; 5];
        for i in 0..5 {
            cpu[i] = m.acc.cpu_busy_us[i] * 1e-6;
            net[i] = m.acc.net_busy_us[i] * 1e-6;
        }
        let pd = cpu[class_idx(ProcessClass::ParadynDaemon)];
        let main = cpu[class_idx(ProcessClass::MainParadyn)];
        let app = cpu[class_idx(ProcessClass::Application)];
        let (main_util, pd_divisor) = match m.cfg.arch {
            // SMP: everything shares the pool of `nodes` CPUs (eq. 7–8).
            Arch::Smp => (main / (n * dur), n),
            // NOW/MPP: the main process lives on node 0's CPU; the daemon
            // overhead is averaged per node.
            _ => (main / dur, n),
        };
        let net_total: f64 = net.iter().sum();
        let net_util = if m.shared_net.is_some() {
            net_total / dur
        } else {
            net_total / (n * dur)
        };
        let received = m.acc.received_samples;
        let (fw_batches, fw_samples) = m.total_forwarded();
        SimMetrics {
            duration_s: dur,
            nodes,
            cpu_time_by_class_s: cpu,
            net_time_by_class_s: net,
            pd_cpu_per_node_s: pd / pd_divisor,
            pd_cpu_util_per_node: pd / (pd_divisor * dur),
            main_cpu_util: main_util,
            is_cpu_util_per_node: (pd + main) / (n * dur),
            app_cpu_util_per_node: app / (n * dur),
            latency_mean_s: if received > 0 {
                m.acc.latency_sum_s / received as f64
            } else {
                f64::NAN
            },
            fwd_latency_mean_s: if m.acc.received_msgs > 0 {
                m.acc.fwd_latency_sum_s / m.acc.received_msgs as f64
            } else {
                f64::NAN
            },
            received_samples: received,
            received_msgs: m.acc.received_msgs,
            generated_samples: m.acc.generated_samples,
            throughput_per_s: if dur > 0.0 {
                received as f64 / dur
            } else {
                0.0
            },
            net_util,
            blocked_deposits: m.total_blocked_deposits(),
            barrier_ops: m.acc.barrier_ops,
            forwarded_batches: fw_batches,
            forwarded_samples: fw_samples,
            mean_daemon_batch: m.mean_daemon_batch(),
            batch_adjustments: m.total_batch_adjustments(),
            events,
        }
    }
}

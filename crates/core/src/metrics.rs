//! End-of-run metrics, matching the paper's global- and local-level metric
//! set (Section 2.1): direct IS overhead (daemon/main CPU time and
//! utilization), monitoring latency, data-forwarding throughput, and
//! application CPU utilization.

use crate::config::Arch;
use crate::model::types::class_idx;
use crate::model::RoccModel;
use paradyn_des::{SimDur, SimTime};
use paradyn_workload::ProcessClass;

/// Maximum number of priority tiers the degradation controller supports
/// (fixed so per-tier counters are plain arrays with a stable snapshot
/// layout).
pub const MAX_TIERS: usize = 4;

/// Aggregated results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimMetrics {
    /// Simulated duration (s).
    pub duration_s: f64,
    /// Node count (SMP: CPU count).
    pub nodes: usize,
    /// Total CPU time by process class (s), summed over all CPUs
    /// (indexable via [`SimMetrics::cpu_time_s`]).
    cpu_time_by_class_s: [f64; 5],
    /// Total network occupancy by class (s).
    net_time_by_class_s: [f64; 5],
    /// Paradyn daemon CPU time per node (s) — the paper's "direct
    /// overhead" (includes tree-merge work).
    pub pd_cpu_per_node_s: f64,
    /// Paradyn daemon CPU utilization per node (fraction).
    pub pd_cpu_util_per_node: f64,
    /// Main Paradyn process CPU utilization (fraction of its host CPU;
    /// SMP: of the pool).
    pub main_cpu_util: f64,
    /// IS (daemons + main) CPU utilization per node (fraction) — the
    /// paper's SMP metric.
    pub is_cpu_util_per_node: f64,
    /// Application CPU utilization per node (fraction).
    pub app_cpu_util_per_node: f64,
    /// Mean monitoring latency per received sample (s), generation to
    /// receipt, *including* batch-accumulation time; `NaN` when nothing was
    /// received.
    pub latency_mean_s: f64,
    /// Mean forwarding latency per received message (s), batch-ready to
    /// receipt — the paper's effective NOW/SMP latency metric.
    pub fwd_latency_mean_s: f64,
    /// Samples received by the main process.
    pub received_samples: u64,
    /// Messages received by the main process.
    pub received_msgs: u64,
    /// Samples deposited into pipes.
    pub generated_samples: u64,
    /// Received samples per second (the throughput metric).
    pub throughput_per_s: f64,
    /// Network utilization (shared medium: busy fraction; contention-free:
    /// mean per-node link occupancy).
    pub net_util: f64,
    /// Deposits that blocked on a full pipe.
    pub blocked_deposits: u64,
    /// Barrier release operations.
    pub barrier_ops: u64,
    /// Batches forwarded by daemons.
    pub forwarded_batches: u64,
    /// Samples forwarded by daemons.
    pub forwarded_samples: u64,
    /// Mean of the daemons' batch thresholds at end of run (equals the
    /// configured batch unless adaptive regulation is active).
    pub mean_daemon_batch: f64,
    /// Total adaptive batch adjustments across daemons.
    pub batch_adjustments: u64,
    /// Sample-emission attempts, including ones lost before entering a
    /// pipe. Conservation: `emitted == received + lost + in-flight`.
    pub emitted_samples: u64,
    /// Samples lost to all causes combined.
    pub samples_lost: u64,
    /// Samples dropped by a lossy pipe overflow policy.
    pub lost_overflow: u64,
    /// Sample emissions lost because the writer was blocked in an earlier
    /// write.
    pub lost_while_blocked: u64,
    /// Samples lost to daemon crashes (pipe backlog + in-flight batches).
    pub lost_daemon_crash: u64,
    /// Samples lost to exhausted forwarding-link retries.
    pub lost_link: u64,
    /// Samples deliberately shed by the degradation controller (buffered
    /// low-priority samples discarded under backpressure). Not part of
    /// `samples_lost`: conservation is
    /// `emitted == received + lost + shed + in-flight`.
    pub shed_samples: u64,
    /// Shed samples broken down by priority tier (tier 0 highest; unused
    /// tiers stay zero).
    pub shed_by_tier: [u64; MAX_TIERS],
    /// Pressure rising edges seen by application throttle controllers
    /// (multiplicative-decrease applications).
    pub throttle_events: u64,
    /// Backpressure edges propagated down the forwarding tree.
    pub backpressure_events: u64,
    /// Samples still in flight at the horizon (parked, buffered, or in an
    /// unconsumed batch).
    pub samples_in_flight: u64,
    /// Deposits rejected because the writer was already blocked (always 0
    /// unless the model regresses; see `Deposit::AlreadyBlocked`).
    pub rejected_deposits: u64,
    /// Total time application writers spent blocked on full pipes (s),
    /// including blocks still open at the horizon.
    pub writer_block_time_s: f64,
    /// Injected daemon crashes.
    pub daemon_crashes: u64,
    /// Total daemon downtime (s), including outages still open at the
    /// horizon.
    pub daemon_downtime_s: f64,
    /// Forward retries caused by injected link failures.
    pub forward_retries: u64,
    /// Mean daemon recovery latency per crash (s); `NaN` with no crashes.
    pub recovery_latency_mean_s: f64,
    /// CPU time injected by consumer-stall faults (s).
    pub consumer_stall_time_s: f64,
    /// Events executed by the simulator.
    pub events: u64,
}

impl SimMetrics {
    /// Total CPU time of one class across all CPUs (s).
    pub fn cpu_time_s(&self, class: ProcessClass) -> f64 {
        self.cpu_time_by_class_s[class_idx(class)]
    }

    /// Total network occupancy of one class (s).
    pub fn net_time_s(&self, class: ProcessClass) -> f64 {
        self.net_time_by_class_s[class_idx(class)]
    }

    /// Build from a finished model.
    pub(crate) fn from_model(m: &RoccModel, horizon: SimDur, events: u64) -> SimMetrics {
        let dur = horizon.as_secs_f64();
        let acc = m.acc_total();
        let nodes = m.cfg.nodes;
        let n = nodes as f64;
        let mut cpu = [0.0; 5];
        let mut net = [0.0; 5];
        for i in 0..5 {
            cpu[i] = acc.cpu_busy_us[i] * 1e-6;
            net[i] = acc.net_busy_us[i] * 1e-6;
        }
        let pd = cpu[class_idx(ProcessClass::ParadynDaemon)];
        let main = cpu[class_idx(ProcessClass::MainParadyn)];
        let app = cpu[class_idx(ProcessClass::Application)];
        let (main_util, pd_divisor) = match m.cfg.arch {
            // SMP: everything shares the pool of `nodes` CPUs (eq. 7–8).
            Arch::Smp => (main / (n * dur), n),
            // NOW/MPP: the main process lives on node 0's CPU; the daemon
            // overhead is averaged per node.
            _ => (main / dur, n),
        };
        let net_total: f64 = net.iter().sum();
        let net_util = if m.shared_net.is_some() {
            net_total / dur
        } else {
            net_total / (n * dur)
        };
        let received = acc.received_samples;
        let (fw_batches, fw_samples) = m.total_forwarded();
        // Runs start at time zero, so the horizon is also the end instant.
        let end = SimTime::ZERO + horizon;
        let open_block_us: f64 = m
            .apps
            .cold
            .iter()
            .filter_map(|c| c.blocked_since)
            .map(|since| (end - since).as_micros_f64())
            .sum();
        let lost_overflow = m.total_overflow_lost();
        let samples_lost =
            lost_overflow + acc.lost_blocked + acc.lost_crash + acc.lost_link;
        let crashes = m.total_crashes();
        let downtime_s = m.total_downtime_at(end).as_secs_f64();
        SimMetrics {
            duration_s: dur,
            nodes,
            cpu_time_by_class_s: cpu,
            net_time_by_class_s: net,
            pd_cpu_per_node_s: pd / pd_divisor,
            pd_cpu_util_per_node: pd / (pd_divisor * dur),
            main_cpu_util: main_util,
            is_cpu_util_per_node: (pd + main) / (n * dur),
            app_cpu_util_per_node: app / (n * dur),
            latency_mean_s: if received > 0 {
                acc.latency_sum_s / received as f64
            } else {
                f64::NAN
            },
            fwd_latency_mean_s: if acc.received_msgs > 0 {
                acc.fwd_latency_sum_s / acc.received_msgs as f64
            } else {
                f64::NAN
            },
            received_samples: received,
            received_msgs: acc.received_msgs,
            generated_samples: acc.generated_samples,
            throughput_per_s: if dur > 0.0 {
                received as f64 / dur
            } else {
                0.0
            },
            net_util,
            blocked_deposits: m.total_blocked_deposits(),
            barrier_ops: acc.barrier_ops,
            forwarded_batches: fw_batches,
            forwarded_samples: fw_samples,
            mean_daemon_batch: m.mean_daemon_batch(),
            batch_adjustments: m.total_batch_adjustments(),
            emitted_samples: acc.emitted_samples,
            samples_lost,
            lost_overflow,
            lost_while_blocked: acc.lost_blocked,
            lost_daemon_crash: acc.lost_crash,
            lost_link: acc.lost_link,
            shed_samples: acc.shed_by_tier.iter().sum(),
            shed_by_tier: acc.shed_by_tier,
            throttle_events: acc.throttle_events,
            backpressure_events: acc.backpressure_events,
            samples_in_flight: m.samples_in_flight(),
            rejected_deposits: m.total_rejected_deposits(),
            writer_block_time_s: (acc.writer_block_us + open_block_us) * 1e-6,
            daemon_crashes: crashes,
            daemon_downtime_s: downtime_s,
            forward_retries: m.total_retries(),
            recovery_latency_mean_s: if crashes > 0 {
                downtime_s / crashes as f64
            } else {
                f64::NAN
            },
            consumer_stall_time_s: acc.stall_injected_us * 1e-6,
            events,
        }
    }
}

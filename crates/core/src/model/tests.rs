//! White-box behavioural tests of the model internals: daemon collection,
//! pipe draining, tree routing, SMP daemon assignment, and event plumbing.

use super::*;
use crate::config::{Arch, Forwarding, SimConfig};

fn quick(arch: Arch, nodes: usize) -> SimConfig {
    SimConfig {
        arch,
        nodes,
        duration_s: 2.0,
        background: false,
        ..Default::default()
    }
}

fn run_model(cfg: SimConfig) -> (RoccModel, u64) {
    let mut sim = build(&cfg);
    sim.run_until(SimTime::from_secs_f64(cfg.duration_s));
    let events = sim.executed_events();
    (sim.model, events)
}

#[test]
fn apps_are_assigned_to_their_node_daemon_on_now() {
    let cfg = SimConfig {
        apps_per_node: 3,
        ..quick(Arch::Now { contention_free: true }, 4)
    };
    let model = RoccModel::new(cfg);
    for (gi, app) in model.apps.hot.iter().enumerate() {
        assert_eq!(app.node, (gi / 3) as u32);
        assert_eq!(app.pd, app.node, "daemon co-located with its apps");
    }
    assert_eq!(model.daemons.len(), 4);
    assert_eq!(model.banks.len(), 4);
}

#[test]
fn smp_pools_cpus_and_round_robins_apps_over_daemons() {
    let cfg = SimConfig {
        arch: Arch::Smp,
        nodes: 8,
        apps_per_node: 6,
        pds: 2,
        ..quick(Arch::Smp, 8)
    };
    let model = RoccModel::new(cfg);
    assert_eq!(model.banks.len(), 1);
    assert_eq!(model.banks[0].cpus(), 8);
    assert_eq!(model.daemons.len(), 2);
    let pds: Vec<u32> = model.apps.hot.iter().map(|a| a.pd).collect();
    assert_eq!(pds, vec![0, 1, 0, 1, 0, 1]);
    // All SMP daemons run on the pooled bank.
    assert!(model.daemons.hot.iter().all(|d| d.node == 0));
}

#[test]
fn tokens_do_not_leak() {
    // Every allocated batch token must be consumed by the main process;
    // at most a handful remain in flight at the horizon.
    for arch in [
        Arch::Now { contention_free: true },
        Arch::Mpp {
            forwarding: Forwarding::BinaryTree,
        },
    ] {
        let (model, _) = run_model(SimConfig {
            batch: 4,
            ..quick(arch, 8)
        });
        let in_flight = model.tokens.len();
        assert!(
            in_flight <= 2 * model.daemons.len(),
            "{arch:?}: {in_flight} tokens still live"
        );
    }
}

#[test]
fn daemon_fifo_drains_to_batch_remainder() {
    let (model, _) = run_model(SimConfig {
        batch: 8,
        ..quick(Arch::Now { contention_free: true }, 2)
    });
    for (d, fifo) in model.daemons.hot.iter().zip(&model.daemons.fifo) {
        assert!(
            fifo.len() < 8,
            "daemon buffered {} >= batch 8 at idle horizon",
            fifo.len()
        );
        assert!(!d.collecting || fifo.len() < 8);
    }
}

#[test]
fn conservation_generated_equals_buffered_plus_forwarded() {
    let (model, _) = run_model(quick(Arch::Now { contention_free: true }, 4));
    let buffered: usize = model.daemons.fifo.iter().map(|f| f.len()).sum();
    let (_, forwarded) = model.total_forwarded();
    // Tokens still carrying drain lists are mid-collection (popped from the
    // FIFO, not yet counted as forwarded); drained tokens are in the
    // network or awaiting main-process handling.
    let collecting: u64 = model
        .tokens
        .values()
        .filter(|b| !b.drain_apps.is_empty())
        .map(|b| b.count as u64)
        .sum();
    let post_forward: u64 = model
        .tokens
        .values()
        .filter(|b| b.drain_apps.is_empty())
        .map(|b| b.count as u64)
        .sum();
    assert_eq!(
        model.acc_total().generated_samples,
        forwarded + buffered as u64 + collecting,
        "sample conservation at daemon boundary"
    );
    assert_eq!(
        model.acc_total().received_samples,
        forwarded - post_forward,
        "sample conservation at network/main boundary"
    );
}

#[test]
fn tree_messages_traverse_expected_hop_counts() {
    // With 4 nodes in a heap tree (0 root, children 1,2; 3 under 1):
    // node 3's batches hop 3->1->0->main: per batch, two merges occur.
    let (model, _) = run_model(SimConfig {
        batch: 1,
        sampling_period_us: 10_000.0,
        ..quick(
            Arch::Mpp {
                forwarding: Forwarding::BinaryTree,
            },
            4,
        )
    });
    // All daemons forwarded roughly the same number of batches (same
    // sampling rate), and everything generated was eventually received.
    let (batches, samples) = model.total_forwarded();
    assert!(batches > 100);
    assert!(model.acc_total().received_samples > 0);
    assert!(samples >= model.acc_total().received_samples);
    // Merge work happened: daemon CPU exceeds the collect-only cost by a
    // measurable margin on interior nodes. Compare total Pd CPU to the
    // collect-only baseline from a direct-forwarding run.
    let (direct, _) = run_model(SimConfig {
        batch: 1,
        sampling_period_us: 10_000.0,
        ..quick(
            Arch::Mpp {
                forwarding: Forwarding::Direct,
            },
            4,
        )
    });
    let tree_pd = model.acc_total().cpu_busy_us[types::class_idx(ProcessClass::ParadynDaemon)];
    let direct_pd = direct.acc_total().cpu_busy_us[types::class_idx(ProcessClass::ParadynDaemon)];
    assert!(
        tree_pd > 1.1 * direct_pd,
        "tree {tree_pd} vs direct {direct_pd}"
    );
}

#[test]
fn sampling_timers_stay_alive_for_run_duration() {
    // Exponential sampling at 40 ms for 2 s over 4 apps: ~200 samples
    // expected; far fewer would mean a dead timer.
    let (model, _) = run_model(SimConfig {
        apps_per_node: 1,
        ..quick(Arch::Now { contention_free: true }, 4)
    });
    let expect = 4.0 * 2.0 / 0.040;
    let got = model.acc_total().generated_samples as f64;
    assert!(
        got > 0.5 * expect && got < 2.0 * expect,
        "generated {got} vs expected ~{expect}"
    );
}

#[test]
fn periodic_sampling_is_exact() {
    let (model, _) = run_model(SimConfig {
        sampling: crate::config::SampleTiming::Periodic,
        apps_per_node: 1,
        ..quick(Arch::Now { contention_free: true }, 2)
    });
    // 2 s / 40 ms = 50 samples per app, ±1 boundary sample.
    let per_app = model.acc_total().generated_samples as f64 / 2.0;
    assert!((per_app - 50.0).abs() <= 1.0, "per-app {per_app}");
}

#[test]
fn main_process_work_lands_on_node_zero_bank() {
    let (model, _) = run_model(quick(Arch::Now { contention_free: true }, 4));
    // Node 0's bank served main-process work; other banks did not. Verify
    // via per-bank busy time exceeding the app+pd share on node 0.
    let main_us = model.acc_total().cpu_busy_us[types::class_idx(ProcessClass::MainParadyn)];
    assert!(main_us > 0.0);
    let node0_busy = model.banks[0].busy_total().as_micros_f64();
    let node1_busy = model.banks[1].busy_total().as_micros_f64();
    assert!(
        node0_busy > node1_busy,
        "host node must carry extra load: {node0_busy} vs {node1_busy}"
    );
}

#[test]
fn uninstrumented_run_schedules_no_is_events() {
    let (model, events) = run_model(SimConfig {
        instrumented: false,
        ..quick(Arch::Now { contention_free: true }, 2)
    });
    assert_eq!(model.acc_total().generated_samples, 0);
    assert_eq!(model.total_forwarded(), (0, 0));
    assert!(events > 0, "application still runs");
}

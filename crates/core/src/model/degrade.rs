//! The graceful-degradation controllers: per-app source throttling
//! (multiplicative decrease / additive recovery with hysteresis, driven by
//! pipe watermarks) and per-daemon low-priority shedding with backpressure
//! propagated down the forwarding tree.
//!
//! Everything here is gated on `cfg.degradation`: with the config absent,
//! none of these methods schedule events, draw randomness, or mutate
//! state, so inert runs stay bitwise identical to the undegradable model
//! (the same pattern fault injection uses).
//!
//! Watermark protocol (see DESIGN.md §9):
//!
//! * Each app pipe has high/low occupancy watermarks. Crossing the high
//!   watermark upward is a *pressure* edge: the app's sampling-period
//!   multiplier is multiplied by `md_factor` (capped at `max_slowdown`)
//!   and a jittered recovery tick is armed. Falling back below the low
//!   watermark merely records when pressure cleared; only after
//!   `hysteresis_us` of sustained clearance do recovery ticks subtract
//!   `recover_step` from the multiplier.
//! * Each daemon FIFO has high/low length watermarks. While the daemon is
//!   under pressure (its own FIFO too long, or an ancestor signalled
//!   pressure), samples from sheddable priority tiers are discarded — both
//!   the buffered backlog (sweeping the FIFO and freeing the pipe slots)
//!   and new deposits at the source, before they enter the pipe.
//! * On an MPP binary forwarding tree, pressure/credit edges propagate to
//!   the children with a small jittered signalling latency, so subtree
//!   daemons shed *before* their batches pile into the congested parent.
//!   Because each edge is jittered independently, a fast off/on flap can
//!   deliver edges out of order; the protocol is level-based per edge
//!   (the last-delivered level wins), which models real signalling races
//!   without breaking conservation or determinism.
//!
//! An app's priority tier is `app_id % tiers` (tier 0 highest); tiers
//! `keep_tiers..` are sheddable. Shed samples are counted per tier and in
//! the extended conservation invariant
//! `emitted == received + lost + shed + in-flight`.

use super::types::{AppId, Ev, PdId};
use super::RoccModel;
use crate::config::{Arch, DegradationConfig, Forwarding};
use paradyn_des::{Ctx, SimDur};

/// Priority tier of an application process (tier 0 = highest priority).
#[inline]
pub(crate) fn app_tier(app: AppId, deg: &DegradationConfig) -> usize {
    app as usize % deg.tiers
}

/// Whether a tier may be shed under pressure.
#[inline]
pub(crate) fn tier_sheddable(tier: usize, deg: &DegradationConfig) -> bool {
    tier >= deg.keep_tiers
}

impl RoccModel {
    /// Whether daemon `pd` is currently under pressure (own FIFO high, or
    /// an ancestor signalled pressure).
    #[inline]
    pub(crate) fn daemon_pressure(&self, pd: PdId) -> bool {
        let d = &self.daemons.hot[pd as usize];
        d.shedding || d.remote_pressure
    }

    /// Re-evaluate `app`'s pipe against the occupancy watermarks. Called
    /// after any occupancy change; a rising edge applies multiplicative
    /// decrease to the sampling rate, a falling edge starts the recovery
    /// hysteresis clock.
    pub(crate) fn degradation_pipe_check(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let Some(deg) = self.cfg.degradation else {
            return;
        };
        let now = ctx.now();
        let fill = self.apps.pipe[app as usize].fill_frac();
        let c = &mut self.apps.cold[app as usize];
        if !c.pressured && fill >= deg.pipe_hi {
            c.pressured = true;
            c.pressure_cleared_at = None;
            c.throttle_mult = (c.throttle_mult * deg.md_factor).min(deg.max_slowdown);
            self.accs[self.cell].throttle_events += 1;
            self.arm_throttle_tick(ctx, app);
        } else if c.pressured && fill <= deg.pipe_lo {
            c.pressured = false;
            c.pressure_cleared_at = Some(now);
        }
    }

    /// Arm a jittered recovery tick for `app` unless one is already armed
    /// or the app is unthrottled. The jitter draw comes from the app's
    /// dedicated `CTRL_THROTTLE` stream, so no other stream is perturbed.
    fn arm_throttle_tick(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let Some(deg) = self.cfg.degradation else {
            return;
        };
        let c = &mut self.apps.cold[app as usize];
        if c.throttle_tick_armed || c.throttle_mult <= 1.0 {
            return;
        }
        c.throttle_tick_armed = true;
        let gap_us = deg.recover_period_us * (0.5 + c.throttle_rng.next_f64());
        ctx.post_in(SimDur::from_micros_f64(gap_us), Ev::ThrottleTick { app });
    }

    /// A recovery tick fired: if pressure has been clear for at least the
    /// hysteresis window, take one additive-recovery step; keep ticking
    /// while the multiplier exceeds 1.
    pub(crate) fn throttle_tick(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let Some(deg) = self.cfg.degradation else {
            return;
        };
        let now = ctx.now();
        let c = &mut self.apps.cold[app as usize];
        c.throttle_tick_armed = false;
        if c.throttle_mult <= 1.0 {
            return;
        }
        let recovered = !c.pressured
            && c.pressure_cleared_at
                .is_some_and(|t| (now - t).as_micros_f64() >= deg.hysteresis_us);
        if recovered {
            c.throttle_mult = (c.throttle_mult - deg.recover_step).max(1.0);
        }
        self.arm_throttle_tick(ctx, app);
    }

    /// Re-evaluate daemon `pd`'s FIFO against the length watermarks and act
    /// on combined-pressure edges (shed the backlog and signal children on
    /// a rising edge; signal credit on a falling edge). Called after any
    /// FIFO length change.
    pub(crate) fn degradation_daemon_check(&mut self, ctx: &mut Ctx<Ev>, pd: PdId) {
        let Some(deg) = self.cfg.degradation else {
            return;
        };
        let before = self.daemon_pressure(pd);
        {
            let len = self.daemons.fifo[pd as usize].len();
            let d = &mut self.daemons.hot[pd as usize];
            if !d.shedding && len >= deg.daemon_hi {
                d.shedding = true;
            } else if d.shedding && len <= deg.daemon_lo {
                d.shedding = false;
            }
        }
        self.apply_pressure_edge(ctx, pd, before, deg);
    }

    /// A pressure/credit edge from the parent arrived (after signalling
    /// jitter). Level-based: the delivered level replaces the stored one.
    pub(crate) fn backpressure_signal(&mut self, ctx: &mut Ctx<Ev>, pd: PdId, on: bool) {
        let Some(deg) = self.cfg.degradation else {
            return;
        };
        let before = self.daemon_pressure(pd);
        self.daemons.hot[pd as usize].remote_pressure = on;
        self.apply_pressure_edge(ctx, pd, before, deg);
    }

    /// Act on a combined-pressure edge for daemon `pd` given the state
    /// `before` the update.
    fn apply_pressure_edge(
        &mut self,
        ctx: &mut Ctx<Ev>,
        pd: PdId,
        before: bool,
        deg: DegradationConfig,
    ) {
        let after = self.daemon_pressure(pd);
        if !before && after {
            self.shed_backlog(ctx, pd, deg);
            self.propagate_pressure(ctx, pd, true);
        } else if before && !after {
            self.propagate_pressure(ctx, pd, false);
        }
    }

    /// Sweep daemon `pd`'s FIFO, discarding every sheddable-tier entry and
    /// freeing its pipe slot. Freed slots may admit parked samples, which
    /// append to the FIFO and are themselves re-examined by the sweep (at
    /// most one parked sample per app, so the sweep terminates). The sweep
    /// stops early if the pressure condition clears mid-sweep.
    fn shed_backlog(&mut self, ctx: &mut Ctx<Ev>, pd: PdId, deg: DegradationConfig) {
        let mut i = 0;
        loop {
            if !self.daemon_pressure(pd) {
                break;
            }
            let fifo = &mut self.daemons.fifo[pd as usize];
            let Some(&(_gen, app)) = fifo.get(i) else {
                break;
            };
            let tier = app_tier(app, &deg);
            if tier_sheddable(tier, &deg) {
                fifo.remove(i);
                self.accs[self.cell].shed_by_tier[tier] += 1;
                // Free the pipe slot the shed sample held; this can admit a
                // parked sample, resume a blocked writer, and clear the
                // pipe's pressure condition.
                self.drain_one(ctx, app);
            } else {
                i += 1;
            }
        }
    }

    /// Propagate a pressure (`on`) or credit (`!on`) edge to `pd`'s
    /// children in the forwarding tree, each with an independent jittered
    /// signalling latency drawn from the daemon's `CTRL_SHED` stream.
    /// Only the MPP binary tree has a forwarding hierarchy; direct
    /// topologies have no children to signal.
    fn propagate_pressure(&mut self, ctx: &mut Ctx<Ev>, pd: PdId, on: bool) {
        if !matches!(
            self.cfg.arch,
            Arch::Mpp {
                forwarding: Forwarding::BinaryTree
            }
        ) {
            return;
        }
        // On MPP, daemon index == node index (heap tree layout).
        let node = self.daemons.hot[pd as usize].node;
        let nodes = self.cfg.nodes as u32;
        for child in [2 * node + 1, 2 * node + 2] {
            if child < nodes {
                let jitter_us = self.daemons.cold[pd as usize].shed_rng.next_f64() * 1_000.0;
                self.accs[self.cell].backpressure_events += 1;
                ctx.post_in(
                    SimDur::from_micros_f64(jitter_us),
                    Ev::Backpressure { pd: child, on },
                );
            }
        }
    }
}

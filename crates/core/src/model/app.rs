//! Application-process behaviour: the two-state computation/communication
//! loop (Figure 7), instrumentation sampling with pipe blocking, and global
//! synchronization barriers.

use super::types::{AppId, CpuJob, CpuKind, Ev, NetJob};
use super::{RoccModel, Step};
use crate::pipe::Deposit;
use paradyn_des::Ctx;
use paradyn_workload::ProcessClass;

impl RoccModel {
    /// Begin the given step for `app`, unless its pipe writer is blocked —
    /// in which case the process pauses and resumes when the daemon drains
    /// the pipe.
    pub(crate) fn app_start_step(&mut self, ctx: &mut Ctx<Ev>, app: AppId, step: Step) {
        if self.apps.pipe[app as usize].writer_blocked() {
            self.apps.cold[app as usize].paused = Some(step);
            return;
        }
        match step {
            Step::Compute => {
                let h = &mut self.apps.hot[app as usize];
                let demand = match &self.cfg.replay {
                    Some(r) => {
                        let c = &mut self.apps.cold[app as usize];
                        let d = r.cpu_at(c.replay_cpu_pos);
                        c.replay_cpu_pos += 1;
                        d
                    }
                    None => self.cfg.app.cpu_req.sample(&mut h.cpu_rng),
                };
                let h = &mut self.apps.hot[app as usize];
                h.current_burst_us = demand;
                let node = h.node;
                self.submit_cpu(
                    ctx,
                    self.bank_of(node),
                    CpuJob {
                        class: ProcessClass::Application,
                        kind: CpuKind::AppCompute { app },
                    },
                    demand,
                );
            }
            Step::Comm => {
                let demand = match &self.cfg.replay {
                    Some(r) => {
                        let c = &mut self.apps.cold[app as usize];
                        let d = r.net_at(c.replay_net_pos);
                        c.replay_net_pos += 1;
                        d
                    }
                    None => {
                        let h = &mut self.apps.hot[app as usize];
                        self.cfg.app.net_req.sample(&mut h.net_rng)
                    }
                };
                self.submit_net(ctx, NetJob::AppComm { app }, demand);
            }
        }
    }

    /// A computation burst finished: account barrier progress, then either
    /// join the barrier or start communicating.
    pub(crate) fn app_compute_done(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let h = &mut self.apps.hot[app as usize];
        h.work_since_barrier_us += h.current_burst_us;
        h.current_burst_us = 0.0;
        match self.cfg.app.barrier_period_us {
            Some(period) if h.work_since_barrier_us >= period => {
                self.join_barrier(ctx, app)
            }
            _ => self.app_start_step(ctx, app, Step::Comm),
        }
    }

    /// A communication burst finished: loop back to computation.
    pub(crate) fn app_comm_done(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        self.app_start_step(ctx, app, Step::Compute);
    }

    /// The process reaches the global barrier. The barrier operation is an
    /// "event of interest" (Figure 6), so with `sample_on_barrier` it also
    /// emits an event-trace sample. When the last process arrives, everyone
    /// is released into their communication step.
    fn join_barrier(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        {
            let h = &mut self.apps.hot[app as usize];
            debug_assert!(!h.at_barrier, "double barrier join");
            h.at_barrier = true;
        }
        self.barrier_waiting.push(app);
        if self.cfg.sample_on_barrier && self.cfg.instrumented {
            // A blocked writer cannot emit the event record;
            // `deposit_sample` counts that case as a lost emission.
            self.deposit_sample(ctx, app);
        }
        if self.barrier_waiting.len() == self.apps.len() {
            self.accs[self.cell].barrier_ops += 1;
            // Swap the roster into recycled scratch storage so the release
            // cycle (and the refilling roster) reuse their capacity.
            let mut released = std::mem::take(&mut self.barrier_scratch);
            std::mem::swap(&mut released, &mut self.barrier_waiting);
            for &w in &released {
                let h = &mut self.apps.hot[w as usize];
                h.at_barrier = false;
                h.work_since_barrier_us = 0.0;
                self.app_start_step(ctx, w, Step::Comm);
            }
            released.clear();
            self.barrier_scratch = released;
        }
    }

    /// The sampling timer fired: deposit a sample. If the pipe is full the
    /// writer blocks — the timer stops until the daemon drains the pipe.
    pub(crate) fn sample_timer_fired(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        self.deposit_sample(ctx, app);
        if self.apps.pipe[app as usize].writer_blocked() {
            self.apps.cold[app as usize].sampling_active = false;
        } else {
            self.schedule_next_sample(ctx, app);
        }
    }

    /// Deposit one sample generated now into `app`'s pipe, waking the
    /// daemon if it can start a collection cycle. Every call counts as one
    /// emission attempt, whatever its fate — the conservation invariant
    /// (emitted == received + lost + shed + in-flight) is anchored here.
    pub(crate) fn deposit_sample(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let now = ctx.now();
        self.accs[self.cell].emitted_samples += 1;
        if self.apps.pipe[app as usize].writer_blocked() {
            // Already blocked on an earlier sample; drop this event record
            // (the writer is stuck inside the earlier write).
            self.accs[self.cell].lost_blocked += 1;
            return;
        }
        let pd = self.apps.hot[app as usize].pd;
        // Source-side shedding: while the owning daemon is under pressure,
        // sheddable-tier samples are discarded before they enter the pipe.
        if let Some(deg) = self.cfg.degradation {
            let tier = super::degrade::app_tier(app, &deg);
            if self.daemon_pressure(pd) && super::degrade::tier_sheddable(tier, &deg) {
                self.accs[self.cell].shed_by_tier[tier] += 1;
                return;
            }
        }
        match self.apps.pipe[app as usize].deposit(now) {
            Deposit::Accepted => {
                self.accs[self.cell].generated_samples += 1;
                self.daemons.fifo[pd as usize].push_back((now, app));
                if self.cfg.degradation.is_some() {
                    // Occupancy and FIFO length both rose; check watermarks
                    // before the daemon starts a collection cycle.
                    self.degradation_pipe_check(ctx, app);
                    self.degradation_daemon_check(ctx, pd);
                }
                self.maybe_collect(ctx, pd);
            }
            Deposit::WouldBlock => {
                // Writer blocks; the daemon's next drain will admit the
                // parked sample and resume the process.
                self.apps.cold[app as usize].blocked_since = Some(now);
            }
            Deposit::AlreadyBlocked => {
                // Unreachable — guarded above — but keep the books straight
                // if the guard ever regresses.
                debug_assert!(false, "deposit raced a blocked writer");
                self.accs[self.cell].lost_blocked += 1;
            }
            Deposit::DroppedNewest => {
                // Lost on the floor; the pipe counted it.
            }
            Deposit::DroppedOldest => {
                // The newcomer takes the place of this app's oldest
                // buffered sample. If every buffered sample of this app is
                // already inside a collecting batch (uncancellable), the
                // newcomer is dropped instead — the pipe counted one loss
                // and occupancy is unchanged either way.
                let fifo = &mut self.daemons.fifo[pd as usize];
                if let Some(idx) = fifo.iter().position(|&(_, who)| who == app) {
                    fifo.remove(idx);
                    fifo.push_back((now, app));
                    self.accs[self.cell].generated_samples += 1;
                    self.maybe_collect(ctx, pd);
                }
            }
        }
    }
}

//! Application-process behaviour: the two-state computation/communication
//! loop (Figure 7), instrumentation sampling with pipe blocking, and global
//! synchronization barriers.

use super::types::{AppId, CpuJob, CpuKind, Ev, NetJob};
use super::{RoccModel, Step};
use crate::pipe::Deposit;
use paradyn_des::Ctx;
use paradyn_workload::ProcessClass;

impl RoccModel {
    /// Begin the given step for `app`, unless its pipe writer is blocked —
    /// in which case the process pauses and resumes when the daemon drains
    /// the pipe.
    pub(crate) fn app_start_step(&mut self, ctx: &mut Ctx<Ev>, app: AppId, step: Step) {
        let a = &mut self.apps[app as usize];
        if a.pipe.writer_blocked() {
            a.paused = Some(step);
            return;
        }
        match step {
            Step::Compute => {
                let demand = match &self.cfg.replay {
                    Some(r) => {
                        let d = r.cpu_at(a.replay_cpu_pos);
                        a.replay_cpu_pos += 1;
                        d
                    }
                    None => self.cfg.app.cpu_req.sample(&mut a.cpu_rng),
                };
                a.current_burst_us = demand;
                let node = a.node;
                self.submit_cpu(
                    ctx,
                    self.bank_of(node),
                    CpuJob {
                        class: ProcessClass::Application,
                        kind: CpuKind::AppCompute { app },
                    },
                    demand,
                );
            }
            Step::Comm => {
                let demand = match &self.cfg.replay {
                    Some(r) => {
                        let d = r.net_at(a.replay_net_pos);
                        a.replay_net_pos += 1;
                        d
                    }
                    None => self.cfg.app.net_req.sample(&mut a.net_rng),
                };
                self.submit_net(ctx, NetJob::AppComm { app }, demand);
            }
        }
    }

    /// A computation burst finished: account barrier progress, then either
    /// join the barrier or start communicating.
    pub(crate) fn app_compute_done(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let a = &mut self.apps[app as usize];
        a.work_since_barrier_us += a.current_burst_us;
        a.current_burst_us = 0.0;
        match self.cfg.app.barrier_period_us {
            Some(period) if a.work_since_barrier_us >= period => {
                self.join_barrier(ctx, app)
            }
            _ => self.app_start_step(ctx, app, Step::Comm),
        }
    }

    /// A communication burst finished: loop back to computation.
    pub(crate) fn app_comm_done(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        self.app_start_step(ctx, app, Step::Compute);
    }

    /// The process reaches the global barrier. The barrier operation is an
    /// "event of interest" (Figure 6), so with `sample_on_barrier` it also
    /// emits an event-trace sample. When the last process arrives, everyone
    /// is released into their communication step.
    fn join_barrier(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        {
            let a = &mut self.apps[app as usize];
            debug_assert!(!a.at_barrier, "double barrier join");
            a.at_barrier = true;
        }
        self.barrier_waiting.push(app);
        if self.cfg.sample_on_barrier && self.cfg.instrumented {
            // A blocked writer cannot emit the event record;
            // `deposit_sample` counts that case as a lost emission.
            self.deposit_sample(ctx, app);
        }
        if self.barrier_waiting.len() == self.apps.len() {
            self.acc.barrier_ops += 1;
            let released = std::mem::take(&mut self.barrier_waiting);
            for w in released {
                let a = &mut self.apps[w as usize];
                a.at_barrier = false;
                a.work_since_barrier_us = 0.0;
                self.app_start_step(ctx, w, Step::Comm);
            }
        }
    }

    /// The sampling timer fired: deposit a sample. If the pipe is full the
    /// writer blocks — the timer stops until the daemon drains the pipe.
    pub(crate) fn sample_timer_fired(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        self.deposit_sample(ctx, app);
        if self.apps[app as usize].pipe.writer_blocked() {
            self.apps[app as usize].sampling_active = false;
        } else {
            self.schedule_next_sample(ctx, app);
        }
    }

    /// Deposit one sample generated now into `app`'s pipe, waking the
    /// daemon if it can start a collection cycle. Every call counts as one
    /// emission attempt, whatever its fate — the conservation invariant
    /// (emitted == received + lost + shed + in-flight) is anchored here.
    pub(crate) fn deposit_sample(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let now = ctx.now();
        self.acc.emitted_samples += 1;
        if self.apps[app as usize].pipe.writer_blocked() {
            // Already blocked on an earlier sample; drop this event record
            // (the writer is stuck inside the earlier write).
            self.acc.lost_blocked += 1;
            return;
        }
        let pd = self.apps[app as usize].pd;
        // Source-side shedding: while the owning daemon is under pressure,
        // sheddable-tier samples are discarded before they enter the pipe.
        if let Some(deg) = self.cfg.degradation {
            let tier = super::degrade::app_tier(app, &deg);
            if self.daemon_pressure(pd) && super::degrade::tier_sheddable(tier, &deg) {
                self.acc.shed_by_tier[tier] += 1;
                return;
            }
        }
        let a = &mut self.apps[app as usize];
        match a.pipe.deposit(now) {
            Deposit::Accepted => {
                self.acc.generated_samples += 1;
                self.daemons[pd as usize].fifo.push_back((now, app));
                if self.cfg.degradation.is_some() {
                    // Occupancy and FIFO length both rose; check watermarks
                    // before the daemon starts a collection cycle.
                    self.degradation_pipe_check(ctx, app);
                    self.degradation_daemon_check(ctx, pd);
                }
                self.maybe_collect(ctx, pd);
            }
            Deposit::WouldBlock => {
                // Writer blocks; the daemon's next drain will admit the
                // parked sample and resume the process.
                a.blocked_since = Some(now);
            }
            Deposit::AlreadyBlocked => {
                // Unreachable — guarded above — but keep the books straight
                // if the guard ever regresses.
                debug_assert!(false, "deposit raced a blocked writer");
                self.acc.lost_blocked += 1;
            }
            Deposit::DroppedNewest => {
                // Lost on the floor; the pipe counted it.
            }
            Deposit::DroppedOldest => {
                // The newcomer takes the place of this app's oldest
                // buffered sample. If every buffered sample of this app is
                // already inside a collecting batch (uncancellable), the
                // newcomer is dropped instead — the pipe counted one loss
                // and occupancy is unchanged either way.
                let fifo = &mut self.daemons[pd as usize].fifo;
                if let Some(idx) = fifo.iter().position(|&(_, who)| who == app) {
                    fifo.remove(idx);
                    fifo.push_back((now, app));
                    self.acc.generated_samples += 1;
                    self.maybe_collect(ctx, pd);
                }
            }
        }
    }
}

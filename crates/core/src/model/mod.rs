//! The ROCC discrete-event model of the Paradyn instrumentation system —
//! the executable form of the paper's Figure 5.
//!
//! One [`RoccModel`] instance simulates the whole system:
//!
//! * a round-robin quantum CPU bank per node (NOW/MPP) or one pooled bank
//!   (SMP);
//! * a network: shared-Ethernet FCFS (NOW), shared-bus FCFS (SMP), or
//!   contention-free delay links (MPP / the "contention-free" NOW variant);
//! * application processes alternating computation and communication
//!   (Figure 7), emitting instrumentation samples into bounded pipes;
//! * Paradyn daemons collecting pipes and forwarding under the CF or BF
//!   policy, directly or along a binary merge tree;
//! * the main Paradyn process consuming messages on node 0;
//! * PVM-daemon and other-process background load.

mod app;
pub(crate) mod arena;
mod background;
mod daemon;
mod degrade;
pub mod snapshot;
#[cfg(test)]
mod tests;
pub mod types;

use crate::config::{Arch, SampleTiming, SimConfig};
use crate::metrics::SimMetrics;
use crate::pipe::Pipe;
use arena::{AppCold, AppHot, Apps, DaemonCold, DaemonHot, Daemons};
use paradyn_des::{
    Ctx, FaultMonitor, FaultSchedule, FcfsServer, Model, Offer, RrCpuBank, Sim, SimDur, SimTime,
    StreamRng, Streams, Submit,
};
use paradyn_workload::ProcessClass;
use std::collections::VecDeque;
use std::sync::Arc;
use types::{class_idx, AppId, Batch, CpuJob, CpuKind, Dest, Ev, NetJob, PdId, Token, TokenTable};

/// Stream-id kinds for reproducible per-element randomness.
///
/// Documented allocation (enforced by `paradyn-lint`'s `rng-stream-id`
/// rule): ids 11–13 are reserved for `FAULT_*` fault-injection streams,
/// 14–15 for `CTRL_*` degradation-controller streams, 16 for the
/// `CHAOS_*` chaos-scenario derivation stream, and 17 for the `SHARD_*`
/// sharded-run case-derivation stream, so an inert fault plan or
/// degradation config leaves every other stream untouched.
pub mod stream_kind {
    /// Application CPU-burst demands.
    pub const APP_CPU: u64 = 1;
    /// Application communication-burst demands.
    pub const APP_NET: u64 = 2;
    /// Application sampling-timer gaps.
    pub const APP_SAMPLE: u64 = 3;
    /// Daemon collect/forward CPU demands.
    pub const PD_CPU: u64 = 4;
    /// Daemon network occupancy demands.
    pub const PD_NET: u64 = 5;
    /// Daemon tree-merge CPU demands.
    pub const PD_MERGE: u64 = 6;
    /// PVM-daemon background load.
    pub const PVMD: u64 = 7;
    /// Other-process background CPU load.
    pub const OTHER_CPU: u64 = 8;
    /// Other-process background network load.
    pub const OTHER_NET: u64 = 9;
    /// Main-process per-message CPU demands.
    pub const MAIN: u64 = 10;
    /// Daemon crash/recovery schedule (fault injection).
    pub const FAULT_CRASH: u64 = 11;
    /// Forwarding-link failure draws (fault injection).
    pub const FAULT_LINK: u64 = 12;
    /// Consumer-stall inter-arrival draws (fault injection).
    pub const FAULT_STALL: u64 = 13;
    /// Per-application throttle recovery-tick jitter (degradation
    /// controller; drawn only when a degradation config is active).
    pub const CTRL_THROTTLE: u64 = 14;
    /// Per-daemon backpressure signalling jitter (degradation controller;
    /// drawn only when a degradation config is active).
    pub const CTRL_SHED: u64 = 15;
    /// Chaos-search scenario derivation (one sub-seed per scenario index).
    pub const CHAOS_SCENARIO: u64 = 16;
    /// Sharded-run smoke/differential case derivation (one sub-seed per
    /// case index; see [`crate::shard::smoke_seed`]).
    pub const SHARD_SMOKE: u64 = 17;
}

/// What an application process does next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Step {
    /// Start a computation burst.
    Compute,
    /// Start a communication burst.
    Comm,
}

/// Internal metric accumulators.
///
/// With scheduling cells enabled (shardable configurations, see
/// [`crate::shard`]) the model keeps one `Acc` per cell and folds them in
/// cell order at reporting time ([`RoccModel::acc_total`]), so per-cell
/// floating-point sums — and therefore the folded totals — are bitwise
/// identical between a serial run and any sharded run.
#[derive(Clone, Default)]
pub(crate) struct Acc {
    /// CPU busy time by class (µs).
    pub cpu_busy_us: [f64; 5],
    /// Network occupancy by class (µs).
    pub net_busy_us: [f64; 5],
    /// Sum of per-sample monitoring latencies (s).
    pub latency_sum_s: f64,
    /// Sum of per-message forwarding latencies (batch-ready to receipt, s).
    pub fwd_latency_sum_s: f64,
    /// Samples received at the main process.
    pub received_samples: u64,
    /// Messages received at the main process.
    pub received_msgs: u64,
    /// Samples deposited into pipes.
    pub generated_samples: u64,
    /// Barrier release operations.
    pub barrier_ops: u64,
    /// Every sample-emission attempt, including ones that were dropped or
    /// arrived while the writer was blocked (the conservation basis:
    /// emitted == received + lost + in-flight).
    pub emitted_samples: u64,
    /// Samples lost because they fired while the writer was blocked.
    pub lost_blocked: u64,
    /// Samples lost to daemon crashes (buffered + in-flight batches).
    pub lost_crash: u64,
    /// Samples lost to exhausted forwarding-link retries.
    pub lost_link: u64,
    /// Total time application writers spent blocked on full pipes (µs),
    /// for intervals closed before the horizon.
    pub writer_block_us: f64,
    /// CPU time injected by consumer-stall faults (µs).
    pub stall_injected_us: f64,
    /// Samples deliberately shed by the degradation controller, by priority
    /// tier. Conservation: emitted == received + lost + shed + in-flight.
    pub shed_by_tier: [u64; crate::metrics::MAX_TIERS],
    /// Pressure rising edges seen by app throttle controllers.
    pub throttle_events: u64,
    /// Backpressure edges propagated down the forwarding tree.
    pub backpressure_events: u64,
}

impl Acc {
    /// Fold `o` into `self` (field-wise sums; used by
    /// [`RoccModel::acc_total`] in ascending cell order).
    pub(crate) fn add(&mut self, o: &Acc) {
        for i in 0..5 {
            self.cpu_busy_us[i] += o.cpu_busy_us[i];
            self.net_busy_us[i] += o.net_busy_us[i];
        }
        self.latency_sum_s += o.latency_sum_s;
        self.fwd_latency_sum_s += o.fwd_latency_sum_s;
        self.received_samples += o.received_samples;
        self.received_msgs += o.received_msgs;
        self.generated_samples += o.generated_samples;
        self.barrier_ops += o.barrier_ops;
        self.emitted_samples += o.emitted_samples;
        self.lost_blocked += o.lost_blocked;
        self.lost_crash += o.lost_crash;
        self.lost_link += o.lost_link;
        self.writer_block_us += o.writer_block_us;
        self.stall_injected_us += o.stall_injected_us;
        for i in 0..crate::metrics::MAX_TIERS {
            self.shed_by_tier[i] += o.shed_by_tier[i];
        }
        self.throttle_events += o.throttle_events;
        self.backpressure_events += o.backpressure_events;
    }
}

/// The slice of a sharded run this model instance executes: used by the
/// boot path to seed only owned cells (every shard replays the same boot
/// code and self-filters; see DESIGN.md §11).
pub(crate) struct ShardSlice {
    /// This shard's id.
    pub me: u16,
    /// Owning shard per cell (cell = node index).
    pub shard_of: Arc<Vec<u16>>,
}

/// The full system model.
pub struct RoccModel {
    // lint:allow(snapshot-exempt): immutable for a run; fork/rewind restore into a model built from the same config
    pub(crate) cfg: SimConfig,
    pub(crate) banks: Vec<RrCpuBank<CpuJob>>,
    /// Shared FCFS network (NOW shared Ethernet / SMP bus); `None` for
    /// contention-free interconnects.
    pub(crate) shared_net: Option<FcfsServer<NetJob>>,
    pub(crate) apps: Apps,
    pub(crate) daemons: Daemons,
    pub(crate) tokens: TokenTable,
    pub(crate) barrier_waiting: Vec<AppId>,
    /// Recycled storage for the barrier-release roster, so a release cycle
    /// allocates nothing in the steady state.
    // lint:allow(snapshot-exempt): scratch buffer, empty between events; restored runs start with an empty one
    pub(crate) barrier_scratch: Vec<AppId>,
    /// Recycled `Batch::drain_apps` vectors (returned when a collect cycle
    /// finishes draining), so collection allocates nothing steady-state.
    // lint:allow(snapshot-exempt): allocation pool only; contents never carry state across events
    pub(crate) drain_pool: Vec<Vec<AppId>>,
    pub(crate) main_rng: StreamRng,
    pub(crate) pvmd_rngs: Vec<StreamRng>,
    pub(crate) other_rngs: Vec<StreamRng>,
    pub(crate) stall_rng: StreamRng,
    /// Whether the configured overload ramp has fired (offered load is
    /// multiplied from that point on).
    pub(crate) overload_on: bool,
    /// Metric accumulators: one per scheduling cell when cells are enabled
    /// (shardable configurations), a single slot otherwise.
    pub(crate) accs: Vec<Acc>,
    /// Cell of the event currently being handled (always 0 when
    /// `cells_on` is false).
    // lint:allow(snapshot-exempt): transient cursor, only meaningful mid-event; snapshots are taken between events
    pub(crate) cell: usize,
    /// Whether scheduling cells are enabled (see [`crate::shard`]).
    // lint:allow(snapshot-exempt): derived from the config the restored model is rebuilt from
    pub(crate) cells_on: bool,
    /// Present only on the workers of a sharded run.
    // lint:allow(snapshot-exempt): worker-only scaffold; snapshots are taken on the merged serial model where it is None
    pub(crate) shard: Option<ShardSlice>,
}

impl RoccModel {
    /// Construct the model for a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`SimConfig::validate`]).
    pub fn new(cfg: SimConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SimConfig: {e}");
        }
        // Shardable configurations run with scheduling cells (cell = node)
        // whether or not the run is actually sharded, so serial runs are
        // the bit-exact oracle for sharded ones at any shard count.
        let cells_on = crate::shard::shardable(&cfg);
        let cells = cfg.nodes;
        let streams = Streams::new(cfg.seed);
        let quantum = SimDur::from_micros_f64(cfg.params.quantum_us);
        let banks = match cfg.arch {
            Arch::Smp => vec![RrCpuBank::new(cfg.nodes, quantum)],
            _ => (0..cfg.nodes)
                .map(|_| RrCpuBank::new(1, quantum))
                .collect(),
        };
        let shared_net = match cfg.arch {
            Arch::Now {
                contention_free: false,
            }
            | Arch::Smp => Some(FcfsServer::new()),
            _ => None,
        };

        let total_apps = cfg.total_apps();
        let total_pds = cfg.total_pds();
        let mut apps = Apps::with_capacity(total_apps);
        for gi in 0..total_apps as u32 {
            let (node, pd) = match cfg.arch {
                Arch::Smp => (0, gi % total_pds as u32),
                _ => {
                    let node = gi / cfg.apps_per_node as u32;
                    (node, node)
                }
            };
            apps.push(
                AppHot {
                    node,
                    pd,
                    cpu_rng: streams.stream3(stream_kind::APP_CPU, gi as u64, 0),
                    net_rng: streams.stream3(stream_kind::APP_NET, gi as u64, 0),
                    current_burst_us: 0.0,
                    work_since_barrier_us: 0.0,
                    at_barrier: false,
                },
                Pipe::with_policy(cfg.params.pipe_capacity, cfg.faults.overflow),
                AppCold {
                    sample_rng: streams.stream3(stream_kind::APP_SAMPLE, gi as u64, 0),
                    blocked_since: None,
                    paused: None,
                    sampling_active: false,
                    // Stagger replay starting points so processes are not
                    // in lockstep.
                    replay_cpu_pos: gi as u64 * 1009,
                    replay_net_pos: gi as u64 * 1013,
                    throttle_rng: streams.stream3(stream_kind::CTRL_THROTTLE, gi as u64, 0),
                    throttle_mult: 1.0,
                    pressured: false,
                    pressure_cleared_at: None,
                    throttle_tick_armed: false,
                },
            );
        }
        // Pre-size hot-path buffers so the steady state allocates nothing:
        // a daemon's FIFO is bounded by its apps' combined pipe capacity
        // (each buffered sample holds a pipe slot).
        let apps_per_pd = total_apps.div_ceil(total_pds);
        let fifo_cap = apps_per_pd * cfg.params.pipe_capacity;
        let mut daemons = Daemons::with_capacity(total_pds);
        for pd in 0..total_pds as u32 {
            daemons.push(
                DaemonHot {
                    node: match cfg.arch {
                        Arch::Smp => 0,
                        _ => pd,
                    },
                    cpu_rng: streams.stream3(stream_kind::PD_CPU, pd as u64, 0),
                    net_rng: streams.stream3(stream_kind::PD_NET, pd as u64, 0),
                    collecting: false,
                    down: false,
                    doomed: false,
                    shedding: false,
                    remote_pressure: false,
                    batch: match &cfg.adaptive {
                        Some(a) => cfg.batch.clamp(a.min_batch, a.max_batch),
                        None => cfg.batch,
                    },
                    flush_gen: 0,
                    cpu_used_us: 0.0,
                    forwarded_batches: 0,
                    forwarded_samples: 0,
                },
                VecDeque::with_capacity(fifo_cap),
                DaemonCold {
                    merge_rng: streams.stream3(stream_kind::PD_MERGE, pd as u64, 0),
                    cpu_at_last_tick_us: 0.0,
                    batch_adjustments: 0,
                    crash: cfg.faults.daemon_crash.map(|c| {
                        FaultSchedule::new(
                            streams.stream3(stream_kind::FAULT_CRASH, pd as u64, 0),
                            c.mtbf_us,
                            c.recovery_us,
                        )
                    }),
                    link_rng: streams.stream3(stream_kind::FAULT_LINK, pd as u64, 0),
                    fault_mon: FaultMonitor::new(),
                    shed_rng: streams.stream3(stream_kind::CTRL_SHED, pd as u64, 0),
                },
            );
        }
        let bg_nodes = match cfg.arch {
            Arch::Smp => 1,
            _ => cfg.nodes,
        };
        RoccModel {
            main_rng: streams.stream3(stream_kind::MAIN, 0, 0),
            pvmd_rngs: (0..bg_nodes)
                .map(|n| streams.stream3(stream_kind::PVMD, n as u64, 0))
                .collect(),
            other_rngs: (0..bg_nodes)
                .map(|n| {
                    streams.stream3(
                        stream_kind::OTHER_CPU ^ stream_kind::OTHER_NET,
                        n as u64,
                        0,
                    )
                })
                .collect(),
            stall_rng: streams.stream3(stream_kind::FAULT_STALL, 0, 0),
            cfg,
            banks,
            shared_net,
            apps,
            daemons,
            tokens: TokenTable::with_pds(total_pds),
            barrier_waiting: Vec::with_capacity(total_apps),
            barrier_scratch: Vec::with_capacity(total_apps),
            drain_pool: Vec::with_capacity(total_pds),
            overload_on: false,
            accs: vec![Acc::default(); if cells_on { cells } else { 1 }],
            cell: 0,
            cells_on,
            shard: None,
        }
    }

    /// True when this instance owns `cell` (trivially true outside a
    /// sharded run).
    #[inline]
    pub(crate) fn owns_cell(&self, cell: u32) -> bool {
        match &self.shard {
            Some(s) => s.shard_of[cell as usize] == s.me,
            None => true,
        }
    }

    /// Attribute subsequent metric writes and event-sequence allocations
    /// to `cell` (the boot path calls this per seeded entity so per-cell
    /// sequence counters advance identically in serial and sharded runs).
    #[inline]
    pub(crate) fn enter_cell(&mut self, ctx: &mut Ctx<Ev>, cell: u32) {
        if self.cells_on {
            self.cell = cell as usize;
            ctx.set_cell(cell);
        }
    }

    /// Fold the per-cell accumulators in ascending cell order. With cells
    /// off this is exactly the single accumulator, so non-cell runs report
    /// bit-identical metrics to the historical single-`Acc` model.
    pub(crate) fn acc_total(&self) -> Acc {
        let mut total = self.accs[0].clone();
        for a in &self.accs[1..] {
            total.add(a);
        }
        total
    }

    /// Which CPU bank serves a node.
    #[inline]
    pub(crate) fn bank_of(&self, node: u32) -> u32 {
        match self.cfg.arch {
            Arch::Smp => 0,
            _ => node,
        }
    }

    /// Submit a CPU occupancy request, scheduling the slice event if it
    /// dispatched immediately.
    pub(crate) fn submit_cpu(
        &mut self,
        ctx: &mut Ctx<Ev>,
        bank: u32,
        job: CpuJob,
        demand_us: f64,
    ) {
        let demand = SimDur::from_micros_f64(demand_us);
        match self.banks[bank as usize].submit(job, demand) {
            Submit::Dispatched { cpu, slice } => {
                ctx.post_in(slice, Ev::Slice { bank, cpu: cpu as u32 });
            }
            Submit::Queued(_) => {}
        }
    }

    /// Submit a network occupancy request. On a shared medium it queues
    /// FCFS; on a contention-free interconnect it is a pure delay. The SMP
    /// bus serves occupancies `smp_bus_speedup` times faster than the
    /// Ethernet the demands were measured on.
    pub(crate) fn submit_net(&mut self, ctx: &mut Ctx<Ev>, job: NetJob, demand_us: f64) {
        let demand_us = match self.cfg.arch {
            Arch::Smp => demand_us / self.cfg.params.smp_bus_speedup,
            _ => demand_us,
        };
        // On contention-free interconnects a forwarding hop takes at least
        // `min_forward_us` of wire time — the lookahead lower bound the
        // sharded driver's conservative windows rest on (DESIGN.md §11).
        let demand_us = match (&self.shared_net, &job) {
            (None, NetJob::Forward { .. }) => demand_us.max(self.cfg.params.min_forward_us),
            _ => demand_us,
        };
        self.accs[self.cell].net_busy_us[class_idx(job.class())] += demand_us;
        let demand = SimDur::from_micros_f64(demand_us);
        match &mut self.shared_net {
            Some(server) => {
                if let Offer::Started(d) = server.submit(ctx.now(), job, demand) {
                    ctx.post_in(d, Ev::NetDone);
                }
            }
            None => {
                ctx.post_in(demand, Ev::Deliver(job));
            }
        }
    }

    /// Allocate a batch token for collecting daemon `pd` (the token value
    /// is a pure function of `pd`'s own allocation history, so it is
    /// identical in serial and sharded runs).
    pub(crate) fn alloc_token(&mut self, pd: PdId, batch: Batch) -> Token {
        self.tokens.insert(pd, batch)
    }

    /// A CPU request finished; run its continuation.
    fn cpu_completed(&mut self, ctx: &mut Ctx<Ev>, job: CpuJob) {
        match job.kind {
            CpuKind::AppCompute { app } => self.app_compute_done(ctx, app),
            CpuKind::PdCollect { pd, token } => self.pd_collect_done(ctx, pd, token),
            CpuKind::PdMerge { node, token } => self.pd_merge_done(ctx, node, token),
            CpuKind::MainRecv { token } => self.main_recv_done(ctx, token),
            CpuKind::PvmdCpu { node } => {
                let d = self.cfg.params.pvmd.net_req.sample(&mut self.pvmd_rngs[node as usize]);
                self.submit_net(ctx, NetJob::PvmdNet { node }, d);
            }
            CpuKind::OtherCpu => {}
        }
    }

    /// A network occupancy ended; the payload arrives.
    fn delivered(&mut self, ctx: &mut Ctx<Ev>, job: NetJob) {
        match job {
            NetJob::AppComm { app } => self.app_comm_done(ctx, app),
            NetJob::Forward { token, dest } => match dest {
                Dest::Main => self.main_receive(ctx, token),
                Dest::Node(node) => self.pd_merge_start(ctx, node, token),
            },
            NetJob::PvmdNet { .. } | NetJob::OtherNet { .. } => {}
        }
    }

    /// A message arrives at the main process's node: charge the per-message
    /// CPU work on the host bank. Receipt (for latency/throughput) counts
    /// when that processing completes — the sample has then truly reached
    /// the "logically central collection facility".
    fn main_receive(&mut self, ctx: &mut Ctx<Ev>, token: Token) {
        let count = self.tokens.get(token).expect("received token must be live").count;
        let p = &self.cfg.params;
        let demand = p.main_cpu_per_msg.sample(&mut self.main_rng)
            + p.main_cpu_per_extra_sample_us * (count as f64 - 1.0);
        self.submit_cpu(
            ctx,
            self.bank_of(0),
            CpuJob {
                class: ProcessClass::MainParadyn,
                kind: CpuKind::MainRecv { token },
            },
            demand,
        );
    }

    /// Main-process handling finished: the batch is consumed.
    fn main_recv_done(&mut self, ctx: &mut Ctx<Ev>, token: Token) {
        let batch = self
            .tokens
            .remove(token)
            .expect("consumed token must be live");
        self.accs[self.cell].latency_sum_s += batch.mean_latency_s(ctx.now()) * batch.count as f64;
        self.accs[self.cell].fwd_latency_sum_s += batch.forwarding_latency_s(ctx.now());
        self.accs[self.cell].received_samples += batch.count as u64;
        self.accs[self.cell].received_msgs += 1;
    }

    /// Extract end-of-run metrics. `horizon` is the simulated duration the
    /// run actually covered.
    pub fn metrics(&self, horizon: SimDur, events: u64) -> SimMetrics {
        SimMetrics::from_model(self, horizon, events)
    }

    pub(crate) fn total_blocked_deposits(&self) -> u64 {
        self.apps.pipe.iter().map(|p| p.blocked_deposits()).sum()
    }

    pub(crate) fn mean_daemon_batch(&self) -> f64 {
        self.daemons.hot.iter().map(|d| d.batch as f64).sum::<f64>() / self.daemons.len() as f64
    }

    pub(crate) fn total_batch_adjustments(&self) -> u64 {
        self.daemons.cold.iter().map(|d| d.batch_adjustments).sum()
    }

    pub(crate) fn total_forwarded(&self) -> (u64, u64) {
        let b = self.daemons.hot.iter().map(|d| d.forwarded_batches).sum();
        let s = self.daemons.hot.iter().map(|d| d.forwarded_samples).sum();
        (b, s)
    }

    /// Samples dropped by lossy pipe overflow, across all pipes.
    pub(crate) fn total_overflow_lost(&self) -> u64 {
        self.apps.pipe.iter().map(|p| p.lost()).sum()
    }

    /// Deposits rejected because the writer was already blocked.
    pub(crate) fn total_rejected_deposits(&self) -> u64 {
        self.apps.pipe.iter().map(|p| p.rejected_deposits()).sum()
    }

    pub(crate) fn total_crashes(&self) -> u64 {
        self.daemons.cold.iter().map(|d| d.fault_mon.crashes()).sum()
    }

    pub(crate) fn total_retries(&self) -> u64 {
        self.daemons.cold.iter().map(|d| d.fault_mon.retries()).sum()
    }

    /// Total daemon downtime up to `end`, including still-open outages.
    pub(crate) fn total_downtime_at(&self, end: SimTime) -> SimDur {
        self.daemons
            .cold
            .iter()
            .fold(SimDur::ZERO, |acc, d| acc + d.fault_mon.downtime_at(end))
    }

    /// Samples emitted but neither received nor lost yet: parked on a full
    /// pipe, buffered in a daemon FIFO, or riding an in-flight batch.
    pub(crate) fn samples_in_flight(&self) -> u64 {
        let parked: u64 = self
            .apps
            .pipe
            .iter()
            .map(|p| u64::from(p.writer_blocked()))
            .sum();
        let buffered: u64 = self.daemons.fifo.iter().map(|f| f.len() as u64).sum();
        let in_batches: u64 = self.tokens.values().map(|b| b.count as u64).sum();
        parked + buffered + in_batches
    }
}

impl Model for RoccModel {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
        if self.cells_on {
            // Attribute this event's metric writes — and the sequence
            // numbers of everything it schedules — to its execution cell,
            // making both independent of how cells are packed onto shards.
            let c = crate::shard::exec_cell(&ev, self.cfg.apps_per_node as u32);
            self.cell = c as usize;
            ctx.set_cell(c);
        }
        match ev {
            Ev::Init => self.init(ctx),
            Ev::Slice { bank, cpu } => {
                let end = self.banks[bank as usize].slice_end(cpu as usize);
                self.accs[self.cell].cpu_busy_us[class_idx(end.job.class)] +=
                    end.ran.as_micros_f64();
                // Per-daemon attribution for adaptive regulation.
                match end.job.kind {
                    CpuKind::PdCollect { pd, .. } => {
                        self.daemons.hot[pd as usize].cpu_used_us += end.ran.as_micros_f64();
                    }
                    CpuKind::PdMerge { node, .. } => {
                        self.daemons.hot[node as usize].cpu_used_us += end.ran.as_micros_f64();
                    }
                    _ => {}
                }
                if let Some(slice) = end.next_slice {
                    ctx.post_in(slice, Ev::Slice { bank, cpu });
                }
                if end.completed {
                    self.cpu_completed(ctx, end.job);
                }
            }
            Ev::NetDone => {
                let server = self.shared_net.as_mut().expect("NetDone without server");
                let (job, _svc, next) = server.complete(ctx.now());
                if let Some(d) = next {
                    ctx.post_in(d, Ev::NetDone);
                }
                self.delivered(ctx, job);
            }
            Ev::Deliver(job) => self.delivered(ctx, job),
            Ev::Sample { app } => self.sample_timer_fired(ctx, app),
            Ev::PvmdArrival { node } => self.pvmd_arrival(ctx, node),
            Ev::FlushTimeout { pd, gen } => self.flush_timeout(ctx, pd, gen),
            Ev::AdaptTick { pd } => self.adapt_tick(ctx, pd),
            Ev::OtherCpuArrival { node } => self.other_cpu_arrival(ctx, node),
            Ev::OtherNetArrival { node } => self.other_net_arrival(ctx, node),
            Ev::DaemonCrash { pd } => self.daemon_crash(ctx, pd),
            Ev::DaemonRecover { pd } => self.daemon_recover(ctx, pd),
            Ev::RetryForward {
                pd,
                token,
                demand_us,
            } => self.submit_forward(ctx, pd, token, demand_us),
            Ev::MainStall => self.main_stall(ctx),
            Ev::ThrottleTick { app } => self.throttle_tick(ctx, app),
            Ev::Backpressure { pd, on } => self.backpressure_signal(ctx, pd, on),
            Ev::OverloadRamp => self.overload_on = true,
        }
    }
}

impl RoccModel {
    /// Seed the time-zero activity: application loops, sampling timers,
    /// and background sources.
    ///
    /// In a sharded run every shard replays this same boot code and
    /// self-filters to the cells it owns; each per-entity seed enters its
    /// entity's cell first, so per-cell sequence counters (and therefore
    /// event identities) come out identical to a serial boot. Skipping an
    /// unowned entity skips only that entity's own stream draws —
    /// construction gives every entity its own stream, so the remaining
    /// draws are unperturbed.
    fn init(&mut self, ctx: &mut Ctx<Ev>) {
        for app in 0..self.apps.len() as u32 {
            let cell = self.apps.hot[app as usize].node;
            if !self.owns_cell(cell) {
                continue;
            }
            self.enter_cell(ctx, cell);
            self.app_start_step(ctx, app, Step::Compute);
            if self.cfg.instrumented {
                self.schedule_next_sample(ctx, app);
            }
        }
        if self.cfg.instrumented {
            if let Some(a) = self.cfg.adaptive {
                let interval = SimDur::from_micros_f64(a.interval_us);
                for pd in 0..self.daemons.len() as u32 {
                    let cell = self.daemons.hot[pd as usize].node;
                    if !self.owns_cell(cell) {
                        continue;
                    }
                    self.enter_cell(ctx, cell);
                    ctx.post_in(interval, Ev::AdaptTick { pd });
                }
            }
            // Fault injection only makes sense with a live IS; nothing is
            // scheduled (and no random draws happen) when the plan is off,
            // so fault-free runs are bit-identical to the fault-free model.
            for pd in 0..self.daemons.len() as u32 {
                let cell = self.daemons.hot[pd as usize].node;
                if !self.owns_cell(cell) {
                    continue;
                }
                if let Some(crash) = &mut self.daemons.cold[pd as usize].crash {
                    let ttf = crash.time_to_failure();
                    self.enter_cell(ctx, cell);
                    ctx.post_in(ttf, Ev::DaemonCrash { pd });
                }
            }
            if self.cfg.faults.stall.is_some() && self.owns_cell(0) {
                self.enter_cell(ctx, 0);
                let gap = self.draw_stall_gap();
                ctx.post_in(gap, Ev::MainStall);
            }
            // Like fault injection, an overload ramp schedules nothing when
            // it is inert (factor 1), so such configs stay bit-identical.
            if let Some(o) = self.cfg.overload {
                if o.factor > 1.0 && self.owns_cell(0) {
                    self.enter_cell(ctx, 0);
                    ctx.post_at(SimTime::from_secs_f64(o.at_s), Ev::OverloadRamp);
                }
            }
        }
        if self.cfg.background {
            for node in 0..self.pvmd_rngs.len() as u32 {
                if !self.owns_cell(node) {
                    continue;
                }
                self.enter_cell(ctx, node);
                let d = self.draw_interarrival(node, BgKind::Pvmd);
                ctx.post_in(d, Ev::PvmdArrival { node });
                let d = self.draw_interarrival(node, BgKind::OtherCpu);
                ctx.post_in(d, Ev::OtherCpuArrival { node });
                let d = self.draw_interarrival(node, BgKind::OtherNet);
                ctx.post_in(d, Ev::OtherNetArrival { node });
            }
        }
    }

    /// Schedule the next sampling-timer firing for `app`.
    ///
    /// The effective period is the configured one divided by the overload
    /// factor once the ramp has fired, then multiplied by the app's throttle
    /// multiplier. Both adjustments are exact no-ops when inert (factor 1 /
    /// multiplier 1), so inert configs draw bit-identical gaps.
    pub(crate) fn schedule_next_sample(&mut self, ctx: &mut Ctx<Ev>, app: AppId) {
        let mut period = self.cfg.sampling_period_us;
        if self.overload_on {
            if let Some(o) = self.cfg.overload {
                period /= o.factor;
            }
        }
        let c = &mut self.apps.cold[app as usize];
        let period = period * c.throttle_mult;
        let gap = match self.cfg.sampling {
            SampleTiming::Exponential => {
                paradyn_stats::Rv::exp(period).sample(&mut c.sample_rng)
            }
            SampleTiming::Periodic => period,
        };
        c.sampling_active = true;
        ctx.post_in(SimDur::from_micros_f64(gap), Ev::Sample { app });
    }
}

/// Background source kinds (for inter-arrival draws).
#[derive(Clone, Copy)]
pub(crate) enum BgKind {
    Pvmd,
    OtherCpu,
    OtherNet,
}

impl RoccModel {
    /// Time until the next injected consumer stall (exponential).
    fn draw_stall_gap(&mut self) -> SimDur {
        let s = self.cfg.faults.stall.expect("stall gap drawn with stalls on");
        let us = paradyn_stats::Rv::exp(s.interval_us).sample(&mut self.stall_rng);
        SimDur::from_micros_f64(us)
    }

    /// Injected slow-consumer stall: the main process's host CPU absorbs a
    /// burst of competing (Other-class) work, delaying `MainRecv`
    /// processing through round-robin sharing.
    fn main_stall(&mut self, ctx: &mut Ctx<Ev>) {
        let s = self.cfg.faults.stall.expect("MainStall only scheduled with stalls on");
        self.accs[self.cell].stall_injected_us += s.stall_us;
        self.submit_cpu(
            ctx,
            self.bank_of(0),
            CpuJob {
                class: ProcessClass::Other,
                kind: CpuKind::OtherCpu,
            },
            s.stall_us,
        );
        let gap = self.draw_stall_gap();
        ctx.post_in(gap, Ev::MainStall);
    }

    pub(crate) fn draw_interarrival(&mut self, node: u32, kind: BgKind) -> SimDur {
        let p = &self.cfg.params;
        let us = match kind {
            BgKind::Pvmd => p
                .pvmd_interarrival
                .sample(&mut self.pvmd_rngs[node as usize]),
            BgKind::OtherCpu => p
                .other_cpu_interarrival
                .sample(&mut self.other_rngs[node as usize]),
            BgKind::OtherNet => p
                .other_net_interarrival
                .sample(&mut self.other_rngs[node as usize]),
        };
        SimDur::from_micros_f64(us)
    }
}

/// Build a ready-to-run simulation: the model plus its `Init` event.
pub fn build(cfg: &SimConfig) -> Sim<RoccModel> {
    build_with_calendar(cfg, paradyn_des::CalendarKind::default_from_env())
}

/// [`build`] with an explicit event-calendar backend (used by the benches
/// to compare the timing wheel against the legacy heap on the full model).
pub fn build_with_calendar(cfg: &SimConfig, kind: paradyn_des::CalendarKind) -> Sim<RoccModel> {
    let mut sim = Sim::with_calendar(RoccModel::new(cfg.clone()), kind);
    // Shardable configurations use per-cell sequence counters even when
    // run serially, so the serial run is the bit-exact oracle for sharded
    // runs (see `crate::shard`). Other configurations keep the historical
    // single global counter and are untouched by sharding.
    if sim.model.cells_on {
        let cells = sim.model.cfg.nodes as u32;
        sim.ctx().enable_cells(cells);
    }
    sim.ctx().post_at(SimTime::ZERO, Ev::Init);
    sim
}

//! Background load: the PVM daemon and "other user/system processes" of
//! Table 2, modelled as open Poisson sources competing for the node
//! resources.

use super::types::{CpuJob, CpuKind, Ev, NetJob};
use super::{BgKind, RoccModel};
use paradyn_des::Ctx;
use paradyn_workload::ProcessClass;

impl RoccModel {
    /// A PVM-daemon request pair arrives: CPU burst now; its network
    /// request follows the CPU completion (see `CpuKind::PvmdCpu`).
    pub(crate) fn pvmd_arrival(&mut self, ctx: &mut Ctx<Ev>, node: u32) {
        let demand = self
            .cfg
            .params
            .pvmd
            .cpu_req
            .sample(&mut self.pvmd_rngs[node as usize]);
        self.submit_cpu(
            ctx,
            self.bank_of(node),
            CpuJob {
                class: ProcessClass::PvmDaemon,
                kind: CpuKind::PvmdCpu { node },
            },
            demand,
        );
        let gap = self.draw_interarrival(node, BgKind::Pvmd);
        ctx.post_in(gap, Ev::PvmdArrival { node });
    }

    /// An other-process CPU request arrives.
    pub(crate) fn other_cpu_arrival(&mut self, ctx: &mut Ctx<Ev>, node: u32) {
        let demand = self
            .cfg
            .params
            .other
            .cpu_req
            .sample(&mut self.other_rngs[node as usize]);
        self.submit_cpu(
            ctx,
            self.bank_of(node),
            CpuJob {
                class: ProcessClass::Other,
                kind: CpuKind::OtherCpu,
            },
            demand,
        );
        let gap = self.draw_interarrival(node, BgKind::OtherCpu);
        ctx.post_in(gap, Ev::OtherCpuArrival { node });
    }

    /// An other-process network request arrives (independent of its CPU
    /// stream, as in Table 2's separate inter-arrival rows).
    pub(crate) fn other_net_arrival(&mut self, ctx: &mut Ctx<Ev>, node: u32) {
        let demand = self
            .cfg
            .params
            .other
            .net_req
            .sample(&mut self.other_rngs[node as usize]);
        self.submit_net(ctx, NetJob::OtherNet { node }, demand);
        let gap = self.draw_interarrival(node, BgKind::OtherNet);
        ctx.post_in(gap, Ev::OtherNetArrival { node });
    }
}

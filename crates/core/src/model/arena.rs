//! Index-handle arenas with struct-of-arrays layout for the entity state
//! the event loop touches on every burst.
//!
//! Entities are addressed by dense `u32` handles ([`super::types::AppId`],
//! [`super::types::PdId`]) assigned at construction; the arenas never grow,
//! shrink, or reuse indices after `RoccModel::new`, so a handle is valid
//! for the lifetime of the model and indexing never checks liveness.
//!
//! Each arena is split by access frequency, not by concept:
//!
//! * the **hot** column holds exactly the fields the per-event handlers
//!   read or write on the compute/communicate loop and the collect/forward
//!   loop, so those handlers walk dense, small records instead of dragging
//!   whole entity structs (with their fault, throttle, and replay baggage)
//!   through the cache;
//! * the **pipe** / **fifo** columns isolate the queue state the
//!   deposit/drain path touches;
//! * the **cold** column holds sampling-timer, replay, fault, and
//!   degradation-controller state that is read orders of magnitude less
//!   often (per sample or per control tick, not per burst).
//!
//! The split is pure layout: every field keeps its meaning, update order,
//! and random-stream discipline, so traces are bit-identical to the
//! array-of-structs model this replaces.

use super::types::{AppId, PdId};
use super::Step;
use crate::pipe::Pipe;
use paradyn_des::{FaultMonitor, FaultSchedule, SimTime, StreamRng};
use std::collections::VecDeque;

/// Per-app state touched on every computation/communication burst.
pub(crate) struct AppHot {
    /// Home node.
    pub node: u32,
    /// Owning daemon.
    pub pd: PdId,
    /// Randomness for CPU bursts.
    pub cpu_rng: StreamRng,
    /// Randomness for communication bursts.
    pub net_rng: StreamRng,
    /// Demand of the burst currently on the CPU (µs), for barrier
    /// accounting at completion.
    pub current_burst_us: f64,
    /// CPU work accumulated since the last barrier (µs).
    pub work_since_barrier_us: f64,
    /// Whether the process is waiting at the barrier.
    pub at_barrier: bool,
}

/// Per-app state touched per sample or per control tick.
pub(crate) struct AppCold {
    /// Randomness for sample timing.
    pub sample_rng: StreamRng,
    /// When the writer entered its current blocked wait (for
    /// writer-block-time accounting).
    pub blocked_since: Option<SimTime>,
    /// Step the process will resume with once its blocked pipe write
    /// completes.
    pub paused: Option<Step>,
    /// Whether the sampling timer is currently scheduled.
    pub sampling_active: bool,
    /// Next replay position for CPU bursts (replay mode only).
    pub replay_cpu_pos: u64,
    /// Next replay position for network bursts (replay mode only).
    pub replay_net_pos: u64,
    /// Randomness for throttle recovery-tick jitter (degradation
    /// controller; untouched unless degradation is configured).
    pub throttle_rng: StreamRng,
    /// Current sampling-period multiplier (>= 1; 1 = no throttling).
    pub throttle_mult: f64,
    /// Whether the pipe is above its high watermark (pressure condition).
    pub pressured: bool,
    /// When the pressure condition last cleared (for recovery hysteresis);
    /// `None` while pressured or never pressured.
    pub pressure_cleared_at: Option<SimTime>,
    /// Whether a throttle recovery tick is currently scheduled.
    pub throttle_tick_armed: bool,
}

/// The application-process arena, indexed by [`AppId`].
pub(crate) struct Apps {
    pub hot: Vec<AppHot>,
    /// Pipe occupancy column (deposit/drain path).
    pub pipe: Vec<Pipe>,
    pub cold: Vec<AppCold>,
}

impl Apps {
    pub fn with_capacity(n: usize) -> Self {
        Apps {
            hot: Vec::with_capacity(n),
            pipe: Vec::with_capacity(n),
            cold: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, hot: AppHot, pipe: Pipe, cold: AppCold) {
        self.hot.push(hot);
        self.pipe.push(pipe);
        self.cold.push(cold);
    }

    pub fn len(&self) -> usize {
        self.hot.len()
    }
}

/// Per-daemon state touched on every collect/forward cycle.
pub(crate) struct DaemonHot {
    /// Node whose CPU bank runs this daemon (SMP: bank 0).
    pub node: u32,
    /// Randomness for collect/forward CPU demands.
    pub cpu_rng: StreamRng,
    /// Randomness for network occupancy demands.
    pub net_rng: StreamRng,
    /// Whether a collect CPU request is in flight (the daemon is a single
    /// process: one cycle at a time).
    pub collecting: bool,
    /// Whether the daemon is currently crashed.
    pub down: bool,
    /// Whether the in-flight collection cycle belongs to a crashed daemon
    /// incarnation (its batch is lost when the CPU work completes).
    pub doomed: bool,
    /// Whether this daemon's own fifo is above its high watermark and the
    /// daemon is shedding sheddable tiers.
    pub shedding: bool,
    /// Whether an ancestor in the forwarding tree signalled pressure (shed
    /// on its behalf until the credit edge arrives).
    pub remote_pressure: bool,
    /// Current batch threshold (fixed = config batch; adaptive regulation
    /// adjusts it per daemon).
    pub batch: usize,
    /// Flush-timer generation; timers with a stale generation are ignored.
    pub flush_gen: u32,
    /// Cumulative CPU time consumed by this daemon (µs).
    pub cpu_used_us: f64,
    /// Batches forwarded so far.
    pub forwarded_batches: u64,
    /// Samples forwarded so far.
    pub forwarded_samples: u64,
}

/// Per-daemon state touched per control tick, merge hop, or injected
/// fault.
pub(crate) struct DaemonCold {
    /// Randomness for merge work.
    pub merge_rng: StreamRng,
    /// CPU reading at the last adaptive control tick (µs).
    pub cpu_at_last_tick_us: f64,
    /// Number of adaptive batch adjustments made.
    pub batch_adjustments: u64,
    /// Crash/recovery event source (`None` = crash injection off).
    pub crash: Option<FaultSchedule>,
    /// Randomness for injected forwarding-link failures.
    pub link_rng: StreamRng,
    /// Fault-cost bookkeeping (crashes, losses, retries, downtime).
    pub fault_mon: FaultMonitor,
    /// Randomness for backpressure signalling jitter (degradation
    /// controller; untouched unless degradation is configured).
    pub shed_rng: StreamRng,
}

/// The daemon arena, indexed by [`PdId`].
pub(crate) struct Daemons {
    pub hot: Vec<DaemonHot>,
    /// FIFO of deposited samples `(generation time, app)` awaiting
    /// collection, one per daemon.
    pub fifo: Vec<VecDeque<(SimTime, AppId)>>,
    pub cold: Vec<DaemonCold>,
}

impl Daemons {
    pub fn with_capacity(n: usize) -> Self {
        Daemons {
            hot: Vec::with_capacity(n),
            fifo: Vec::with_capacity(n),
            cold: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, hot: DaemonHot, fifo: VecDeque<(SimTime, AppId)>, cold: DaemonCold) {
        self.hot.push(hot);
        self.fifo.push(fifo);
        self.cold.push(cold);
    }

    pub fn len(&self) -> usize {
        self.hot.len()
    }
}

//! Job, message, and event types of the ROCC simulation.

use paradyn_des::SimTime;
use paradyn_workload::ProcessClass;

/// Global application-process index.
pub type AppId = u32;

/// Daemon index.
pub type PdId = u32;

/// Token identifying an in-flight batch of samples. Shard-stable encoding:
/// the high bits name the allocating daemon, the low [`TOKEN_CTR_BITS`]
/// bits are that daemon's private wrapping counter — so a token value is a
/// pure function of the allocator's own history, identical whether the run
/// is serial or sharded (DESIGN.md §11).
pub type Token = u32;

/// Low bits of a [`Token`] carrying the allocator's wrapping counter.
pub const TOKEN_CTR_BITS: u32 = 12;

/// Mask of the counter bits of a [`Token`].
pub const TOKEN_CTR_MASK: u32 = (1 << TOKEN_CTR_BITS) - 1;

/// Wrap-aware "allocated before" order on 12-bit token counters; a strict
/// total order as long as the live window spans less than half the
/// counter space (live batches per daemon are a handful).
#[inline]
fn ctr_before(a: u16, b: u16) -> bool {
    let d = b.wrapping_sub(a) & TOKEN_CTR_MASK as u16;
    d != 0 && d < (1 << (TOKEN_CTR_BITS - 1))
}

/// Arena of in-flight batches keyed by `(allocating daemon, counter)`,
/// replacing per-event `HashMap` lookups with short per-daemon vectors.
/// Each daemon's vector holds its live batches in allocation order (a few
/// at a time), so lookups are tiny scans and iteration order — daemon
/// index major, allocation order minor — is deterministic and independent
/// of how shards interleave.
#[derive(Default)]
pub struct TokenTable {
    /// Live batches per allocating daemon, in wrap-aware counter order.
    slots: Vec<Vec<(u16, Batch)>>,
    /// Next counter per daemon (wrapping 12-bit).
    ctrs: Vec<u16>,
    // lint:allow(snapshot-exempt): recomputed as the sum of slot lengths while load rebuilds the slots
    live: usize,
}

impl TokenTable {
    /// One table slot per daemon, pre-sized for the steady-state handful
    /// of concurrently live batches each daemon keeps in flight.
    pub fn with_pds(pds: usize) -> TokenTable {
        TokenTable {
            slots: (0..pds).map(|_| Vec::with_capacity(8)).collect(),
            ctrs: vec![0; pds],
            live: 0,
        }
    }

    /// Number of daemon slots (fixed by the configuration).
    pub fn pds(&self) -> usize {
        self.slots.len()
    }

    /// Store a batch allocated by daemon `pd`, returning its token.
    pub fn insert(&mut self, pd: PdId, batch: Batch) -> Token {
        let ctr = self.ctrs[pd as usize];
        self.ctrs[pd as usize] = ctr.wrapping_add(1) & TOKEN_CTR_MASK as u16;
        debug_assert!(
            !self.slots[pd as usize].iter().any(|&(c, _)| c == ctr),
            "token counter wrapped onto a live batch"
        );
        self.slots[pd as usize].push((ctr, batch));
        self.live += 1;
        ((pd as u32) << TOKEN_CTR_BITS) | ctr as u32
    }

    /// Re-insert a batch under a token allocated elsewhere (a cross-shard
    /// arrival), preserving the per-daemon allocation order.
    pub fn insert_at(&mut self, t: Token, batch: Batch) {
        let pd = (t >> TOKEN_CTR_BITS) as usize;
        let ctr = (t & TOKEN_CTR_MASK) as u16;
        let v = &mut self.slots[pd];
        debug_assert!(!v.iter().any(|&(c, _)| c == ctr), "token re-inserted while live");
        let pos = v
            .iter()
            .position(|&(c, _)| ctr_before(ctr, c))
            .unwrap_or(v.len());
        v.insert(pos, (ctr, batch));
        self.live += 1;
    }

    /// Shared access to a live batch (`None` if the token was consumed).
    #[inline]
    pub fn get(&self, t: Token) -> Option<&Batch> {
        let ctr = (t & TOKEN_CTR_MASK) as u16;
        self.slots
            .get((t >> TOKEN_CTR_BITS) as usize)?
            .iter()
            .find(|&&(c, _)| c == ctr)
            .map(|(_, b)| b)
    }

    /// Mutable access to a live batch.
    #[inline]
    pub fn get_mut(&mut self, t: Token) -> Option<&mut Batch> {
        let ctr = (t & TOKEN_CTR_MASK) as u16;
        self.slots
            .get_mut((t >> TOKEN_CTR_BITS) as usize)?
            .iter_mut()
            .find(|&&mut (c, _)| c == ctr)
            .map(|(_, b)| b)
    }

    /// Remove and return a live batch.
    pub fn remove(&mut self, t: Token) -> Option<Batch> {
        let ctr = (t & TOKEN_CTR_MASK) as u16;
        let v = self.slots.get_mut((t >> TOKEN_CTR_BITS) as usize)?;
        let pos = v.iter().position(|&(c, _)| c == ctr)?;
        self.live -= 1;
        Some(v.remove(pos).1)
    }

    /// Number of live batches.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no batches are in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over live batches (daemon-major, allocation order —
    /// deterministic and shard-independent).
    pub fn values(&self) -> impl Iterator<Item = &Batch> {
        self.slots.iter().flat_map(|v| v.iter().map(|(_, b)| b))
    }

    /// Combine per-shard tables back into the serial table: each daemon's
    /// next counter comes from the daemon's owning shard (the only place
    /// it allocates), and the live batches — scattered across whichever
    /// shards currently hold them — are unioned back into allocation
    /// order.
    pub fn absorb(tables: Vec<TokenTable>, owner_of_pd: impl Fn(usize) -> usize) -> TokenTable {
        let pds = tables.first().map_or(0, TokenTable::pds);
        let mut out = TokenTable::with_pds(pds);
        for pd in 0..pds {
            out.ctrs[pd] = tables[owner_of_pd(pd)].ctrs[pd];
        }
        for mut t in tables {
            debug_assert_eq!(t.pds(), pds);
            out.live += t.live;
            for (pd, v) in t.slots.iter_mut().enumerate() {
                out.slots[pd].append(v);
            }
        }
        for v in &mut out.slots {
            v.sort_unstable_by(|&(a, _), &(b, _)| {
                if a == b {
                    std::cmp::Ordering::Equal
                } else if ctr_before(a, b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            debug_assert!(v.windows(2).all(|p| p[0].0 != p[1].0), "duplicate live token");
        }
        out
    }
}

/// A CPU occupancy request queued at a node's CPU bank.
#[derive(Clone, Copy, Debug)]
pub struct CpuJob {
    /// Owning process class (for busy-time attribution).
    pub class: ProcessClass,
    /// What to do when the request completes.
    pub kind: CpuKind,
}

/// Continuations of CPU requests.
#[derive(Clone, Copy, Debug)]
pub enum CpuKind {
    /// An application computation burst.
    AppCompute {
        /// The computing application process.
        app: AppId,
    },
    /// Daemon work to collect and forward one batch.
    PdCollect {
        /// The daemon performing the cycle.
        pd: PdId,
        /// The batch being collected.
        token: Token,
    },
    /// Merge work for an en-route child message at a tree node.
    PdMerge {
        /// The merging node.
        node: u32,
        /// The message being merged.
        token: Token,
    },
    /// Main-process handling of one received message; latency is recorded
    /// when this completes (receipt at the central collection facility).
    MainRecv {
        /// The message being consumed.
        token: Token,
    },
    /// A PVM daemon burst (its network request follows).
    PvmdCpu {
        /// Node of the PVM daemon instance.
        node: u32,
    },
    /// An other-process burst (no continuation).
    OtherCpu,
}

/// Destination of a forwarded message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// An intermediate tree node's daemon.
    Node(u32),
    /// The main Paradyn process.
    Main,
}

/// A network occupancy request.
#[derive(Clone, Copy, Debug)]
pub enum NetJob {
    /// An application communication step.
    AppComm {
        /// The communicating application process.
        app: AppId,
    },
    /// A daemon forward (one hop).
    Forward {
        /// The in-flight batch.
        token: Token,
        /// Where this hop lands.
        dest: Dest,
    },
    /// PVM daemon network activity.
    PvmdNet {
        /// Node of the PVM daemon instance.
        node: u32,
    },
    /// Other-process network activity.
    OtherNet {
        /// Node of the other-process source.
        node: u32,
    },
}

impl NetJob {
    /// Process class for busy-time attribution.
    pub fn class(&self) -> ProcessClass {
        match self {
            NetJob::AppComm { .. } => ProcessClass::Application,
            NetJob::Forward { .. } => ProcessClass::ParadynDaemon,
            NetJob::PvmdNet { .. } => ProcessClass::PvmDaemon,
            NetJob::OtherNet { .. } => ProcessClass::Other,
        }
    }
}

/// The simulation's event alphabet.
#[derive(Clone, Copy, Debug)]
pub enum Ev {
    /// Kick-off event at time zero: starts application loops, sampling
    /// timers, and background sources.
    Init,
    /// A CPU slice ended on `(bank, cpu)`.
    Slice {
        /// CPU bank index.
        bank: u32,
        /// CPU index within the bank.
        cpu: u32,
    },
    /// The shared network/bus finished its current occupancy.
    NetDone,
    /// A network occupancy on a contention-free link ended; the payload
    /// arrives at its destination.
    Deliver(NetJob),
    /// An application process's sampling timer fired.
    Sample {
        /// The sampled application process.
        app: AppId,
    },
    /// The PVM daemon on `node` issues its next request pair.
    PvmdArrival {
        /// Node index.
        node: u32,
    },
    /// An other-process CPU request arrives on `node`.
    OtherCpuArrival {
        /// Node index.
        node: u32,
    },
    /// An other-process network request arrives on `node`.
    OtherNetArrival {
        /// Node index.
        node: u32,
    },
    /// A partial-batch flush timer fired for daemon `pd` (stale unless
    /// `gen` matches the daemon's current flush generation).
    FlushTimeout {
        /// The daemon.
        pd: PdId,
        /// Flush generation the timer was armed for.
        gen: u32,
    },
    /// Adaptive batch-regulation control tick for daemon `pd`.
    AdaptTick {
        /// The daemon.
        pd: PdId,
    },
    /// Injected fault: daemon `pd` crashes, losing its buffered samples.
    DaemonCrash {
        /// The crashing daemon.
        pd: PdId,
    },
    /// Daemon `pd` finishes restarting and resumes collection.
    DaemonRecover {
        /// The recovering daemon.
        pd: PdId,
    },
    /// Retry a forward whose previous attempt hit an injected link
    /// failure (fires after the exponential backoff).
    RetryForward {
        /// Daemon (or merge node) performing the hop.
        pd: PdId,
        /// The batch being forwarded.
        token: Token,
        /// Network occupancy demand of the hop (µs), reused across
        /// attempts so a retry costs no extra random draws.
        demand_us: f64,
    },
    /// Injected fault: the main process's host CPU absorbs a burst of
    /// competing work, stalling message consumption.
    MainStall,
    /// Degradation-controller recovery tick: an app with a throttled
    /// sampling rate attempts an additive-recovery step (and re-arms while
    /// its multiplier exceeds 1).
    ThrottleTick {
        /// The throttled application process.
        app: AppId,
    },
    /// A backpressure (`on`) or credit (`!on`) edge arriving at daemon `pd`
    /// from its parent in the forwarding tree, after signalling jitter.
    Backpressure {
        /// The receiving daemon.
        pd: PdId,
        /// Pressure rising (`true`) or clearing (`false`).
        on: bool,
    },
    /// The configured overload ramp fires: offered sampling load is
    /// multiplied by the ramp factor from this instant on.
    OverloadRamp,
}

/// Payload of an in-flight batch of samples.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Number of samples in the batch (merging preserves the count for
    /// latency accounting).
    pub count: u32,
    /// Sum of the samples' generation times (ns). The mean monitoring
    /// latency of the batch at receipt time `t` is
    /// `t − sum_gen/count`.
    pub sum_gen_ns: u64,
    /// When the batch was assembled by the daemon (ns). Latency measured
    /// from here excludes batch-accumulation time — the quantity the
    /// paper's NOW/SMP latency figures effectively plot (their model has
    /// batches *arriving* as units; see EXPERIMENTS.md).
    pub ready_ns: u64,
    /// Application processes whose pipe slots this batch still holds;
    /// drained (and writers unblocked) when the collect CPU work finishes.
    pub drain_apps: Vec<AppId>,
    /// Failed forward attempts on the current hop (injected link faults);
    /// reset to zero whenever a hop succeeds.
    pub attempts: u32,
}

impl Batch {
    /// Mean generation-to-receipt latency of the batch if received at
    /// `now`, in seconds (includes batch-accumulation time).
    pub fn mean_latency_s(&self, now: SimTime) -> f64 {
        debug_assert!(self.count > 0);
        let recv = now.as_nanos() as f64 * self.count as f64;
        (recv - self.sum_gen_ns as f64) / self.count as f64 / 1e9
    }

    /// Forwarding latency (batch-ready to receipt) at `now`, in seconds.
    pub fn forwarding_latency_s(&self, now: SimTime) -> f64 {
        (now.as_nanos() as f64 - self.ready_ns as f64) / 1e9
    }
}

/// Index of a process class in metric arrays.
#[inline]
pub fn class_idx(c: ProcessClass) -> usize {
    match c {
        ProcessClass::Application => 0,
        ProcessClass::ParadynDaemon => 1,
        ProcessClass::PvmDaemon => 2,
        ProcessClass::Other => 3,
        ProcessClass::MainParadyn => 4,
    }
}

/// Parent of node `i` in the binary forwarding tree (heap layout,
/// node 0 = root, which hosts the main process).
#[inline]
pub fn tree_parent(i: u32) -> u32 {
    debug_assert!(i > 0, "root has no parent");
    (i - 1) / 2
}

// ---------------------------------------------------------------------------
// Snapshot codec impls. `ProcessClass` is foreign to both this crate and the
// `Persist` trait's crate, so it is encoded inline as its `class_idx` byte.
// ---------------------------------------------------------------------------

use paradyn_des::{Dec, Enc, Persist, SnapError};

fn save_class(c: ProcessClass, w: &mut Enc) {
    w.put_u8(class_idx(c) as u8);
}

fn load_class(r: &mut Dec<'_>) -> Result<ProcessClass, SnapError> {
    let i = r.take_u8()? as usize;
    ProcessClass::ALL
        .into_iter()
        .find(|&c| class_idx(c) == i)
        .ok_or(SnapError::Malformed("unknown process class"))
}

impl Persist for Batch {
    fn save(&self, w: &mut Enc) {
        w.put_u32(self.count);
        w.put_u64(self.sum_gen_ns);
        w.put_u64(self.ready_ns);
        self.drain_apps.save(w);
        w.put_u32(self.attempts);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(Batch {
            count: r.take_u32()?,
            sum_gen_ns: r.take_u64()?,
            ready_ns: r.take_u64()?,
            drain_apps: Persist::load(r)?,
            attempts: r.take_u32()?,
        })
    }
}

impl Persist for TokenTable {
    fn save(&self, w: &mut Enc) {
        w.put_u32(self.slots.len() as u32);
        for v in &self.slots {
            w.put_u32(v.len() as u32);
            for (c, b) in v {
                w.put_u32(*c as u32);
                b.save(w);
            }
        }
        for &c in &self.ctrs {
            w.put_u32(c as u32);
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        let pds = r.take_u32()? as usize;
        let mut slots = Vec::with_capacity(pds);
        let mut live = 0usize;
        for _ in 0..pds {
            let n = r.take_u32()? as usize;
            let mut v: Vec<(u16, Batch)> = Vec::with_capacity(n.max(8));
            for _ in 0..n {
                let c = r.take_u32()?;
                if c > TOKEN_CTR_MASK {
                    return Err(SnapError::Malformed("token counter out of range"));
                }
                v.push((c as u16, Persist::load(r)?));
            }
            // Allocation order (wrap-aware, strictly increasing) is part of
            // the format: iteration order feeds deterministic drains.
            if !v
                .windows(2)
                .all(|p| ctr_before(p[0].0, p[1].0))
            {
                return Err(SnapError::Malformed("token table slot order"));
            }
            live += v.len();
            slots.push(v);
        }
        let mut ctrs = Vec::with_capacity(pds);
        for _ in 0..pds {
            let c = r.take_u32()?;
            if c > TOKEN_CTR_MASK {
                return Err(SnapError::Malformed("token table counter"));
            }
            ctrs.push(c as u16);
        }
        Ok(TokenTable { slots, ctrs, live })
    }
}

impl Persist for CpuKind {
    fn save(&self, w: &mut Enc) {
        match *self {
            CpuKind::AppCompute { app } => {
                w.put_u8(0);
                w.put_u32(app);
            }
            CpuKind::PdCollect { pd, token } => {
                w.put_u8(1);
                w.put_u32(pd);
                w.put_u32(token);
            }
            CpuKind::PdMerge { node, token } => {
                w.put_u8(2);
                w.put_u32(node);
                w.put_u32(token);
            }
            CpuKind::MainRecv { token } => {
                w.put_u8(3);
                w.put_u32(token);
            }
            CpuKind::PvmdCpu { node } => {
                w.put_u8(4);
                w.put_u32(node);
            }
            CpuKind::OtherCpu => w.put_u8(5),
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => CpuKind::AppCompute { app: r.take_u32()? },
            1 => CpuKind::PdCollect {
                pd: r.take_u32()?,
                token: r.take_u32()?,
            },
            2 => CpuKind::PdMerge {
                node: r.take_u32()?,
                token: r.take_u32()?,
            },
            3 => CpuKind::MainRecv { token: r.take_u32()? },
            4 => CpuKind::PvmdCpu { node: r.take_u32()? },
            5 => CpuKind::OtherCpu,
            _ => return Err(SnapError::Malformed("CpuKind tag")),
        })
    }
}

impl Persist for CpuJob {
    fn save(&self, w: &mut Enc) {
        save_class(self.class, w);
        self.kind.save(w);
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(CpuJob {
            class: load_class(r)?,
            kind: Persist::load(r)?,
        })
    }
}

impl Persist for Dest {
    fn save(&self, w: &mut Enc) {
        match *self {
            Dest::Node(n) => {
                w.put_u8(0);
                w.put_u32(n);
            }
            Dest::Main => w.put_u8(1),
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => Dest::Node(r.take_u32()?),
            1 => Dest::Main,
            _ => return Err(SnapError::Malformed("Dest tag")),
        })
    }
}

impl Persist for NetJob {
    fn save(&self, w: &mut Enc) {
        match *self {
            NetJob::AppComm { app } => {
                w.put_u8(0);
                w.put_u32(app);
            }
            NetJob::Forward { token, dest } => {
                w.put_u8(1);
                w.put_u32(token);
                dest.save(w);
            }
            NetJob::PvmdNet { node } => {
                w.put_u8(2);
                w.put_u32(node);
            }
            NetJob::OtherNet { node } => {
                w.put_u8(3);
                w.put_u32(node);
            }
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => NetJob::AppComm { app: r.take_u32()? },
            1 => NetJob::Forward {
                token: r.take_u32()?,
                dest: Persist::load(r)?,
            },
            2 => NetJob::PvmdNet { node: r.take_u32()? },
            3 => NetJob::OtherNet { node: r.take_u32()? },
            _ => return Err(SnapError::Malformed("NetJob tag")),
        })
    }
}

impl Persist for Ev {
    fn save(&self, w: &mut Enc) {
        match *self {
            Ev::Init => w.put_u8(0),
            Ev::Slice { bank, cpu } => {
                w.put_u8(1);
                w.put_u32(bank);
                w.put_u32(cpu);
            }
            Ev::NetDone => w.put_u8(2),
            Ev::Deliver(job) => {
                w.put_u8(3);
                job.save(w);
            }
            Ev::Sample { app } => {
                w.put_u8(4);
                w.put_u32(app);
            }
            Ev::PvmdArrival { node } => {
                w.put_u8(5);
                w.put_u32(node);
            }
            Ev::OtherCpuArrival { node } => {
                w.put_u8(6);
                w.put_u32(node);
            }
            Ev::OtherNetArrival { node } => {
                w.put_u8(7);
                w.put_u32(node);
            }
            Ev::FlushTimeout { pd, gen } => {
                w.put_u8(8);
                w.put_u32(pd);
                w.put_u32(gen);
            }
            Ev::AdaptTick { pd } => {
                w.put_u8(9);
                w.put_u32(pd);
            }
            Ev::DaemonCrash { pd } => {
                w.put_u8(10);
                w.put_u32(pd);
            }
            Ev::DaemonRecover { pd } => {
                w.put_u8(11);
                w.put_u32(pd);
            }
            Ev::RetryForward {
                pd,
                token,
                demand_us,
            } => {
                w.put_u8(12);
                w.put_u32(pd);
                w.put_u32(token);
                w.put_f64(demand_us);
            }
            Ev::MainStall => w.put_u8(13),
            Ev::ThrottleTick { app } => {
                w.put_u8(14);
                w.put_u32(app);
            }
            Ev::Backpressure { pd, on } => {
                w.put_u8(15);
                w.put_u32(pd);
                w.put_bool(on);
            }
            Ev::OverloadRamp => w.put_u8(16),
        }
    }
    fn load(r: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(match r.take_u8()? {
            0 => Ev::Init,
            1 => Ev::Slice {
                bank: r.take_u32()?,
                cpu: r.take_u32()?,
            },
            2 => Ev::NetDone,
            3 => Ev::Deliver(Persist::load(r)?),
            4 => Ev::Sample { app: r.take_u32()? },
            5 => Ev::PvmdArrival { node: r.take_u32()? },
            6 => Ev::OtherCpuArrival { node: r.take_u32()? },
            7 => Ev::OtherNetArrival { node: r.take_u32()? },
            8 => Ev::FlushTimeout {
                pd: r.take_u32()?,
                gen: r.take_u32()?,
            },
            9 => Ev::AdaptTick { pd: r.take_u32()? },
            10 => Ev::DaemonCrash { pd: r.take_u32()? },
            11 => Ev::DaemonRecover { pd: r.take_u32()? },
            12 => Ev::RetryForward {
                pd: r.take_u32()?,
                token: r.take_u32()?,
                demand_us: r.take_f64()?,
            },
            13 => Ev::MainStall,
            14 => Ev::ThrottleTick { app: r.take_u32()? },
            15 => Ev::Backpressure {
                pd: r.take_u32()?,
                on: r.take_bool()?,
            },
            16 => Ev::OverloadRamp,
            _ => return Err(SnapError::Malformed("Ev tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(count: u32) -> Batch {
        Batch {
            count,
            sum_gen_ns: 0,
            ready_ns: 0,
            drain_apps: vec![],
            attempts: 0,
        }
    }

    #[test]
    fn token_table_is_shard_stable_and_ordered() {
        let mut tab = TokenTable::with_pds(3);
        let a = tab.insert(1, batch(1));
        let b = tab.insert(1, batch(2));
        let c = tab.insert(0, batch(3));
        // Tokens are a pure function of (pd, per-pd allocation count).
        assert_eq!(a, (1 << TOKEN_CTR_BITS) | 0);
        assert_eq!(b, (1 << TOKEN_CTR_BITS) | 1);
        assert_eq!(c, 0);
        assert_eq!(tab.len(), 3);
        assert_eq!(tab.get(a).unwrap().count, 1);
        assert_eq!(tab.remove(a).unwrap().count, 1);
        assert!(tab.remove(a).is_none(), "double remove is a no-op");
        // Removing a batch does not perturb later token values.
        let d = tab.insert(1, batch(4));
        assert_eq!(d, (1 << TOKEN_CTR_BITS) | 2);
        tab.get_mut(b).unwrap().attempts = 7;
        assert_eq!(tab.get(b).unwrap().attempts, 7);
        // Iteration is pd-major, allocation order minor.
        let counts: Vec<u32> = tab.values().map(|x| x.count).collect();
        assert_eq!(counts, vec![3, 2, 4]);
        assert!(!tab.is_empty());
        tab.remove(b);
        tab.remove(c);
        tab.remove(d);
        assert!(tab.is_empty());
    }

    #[test]
    fn token_table_absorb_reunites_shards() {
        // Serial reference: pd 0 allocates three, consumes the middle one.
        let mut serial = TokenTable::with_pds(2);
        let s0 = serial.insert(0, batch(10));
        let s1 = serial.insert(0, batch(11));
        let s2 = serial.insert(0, batch(12));
        serial.remove(s1);
        let _ = serial.insert(1, batch(20));

        // Sharded: pd 0 owned by shard 0 allocates the same sequence, but
        // batch s2 is currently in flight on shard 1 (a cross-shard hop).
        let mut sh0 = TokenTable::with_pds(2);
        let t0 = sh0.insert(0, batch(10));
        let t1 = sh0.insert(0, batch(11));
        let t2 = sh0.insert(0, batch(12));
        sh0.remove(t1);
        let moved = sh0.remove(t2).unwrap();
        let mut sh1 = TokenTable::with_pds(2);
        sh1.insert_at(t2, moved);
        let _ = sh1.insert(1, batch(20));

        assert_eq!((t0, t2), (s0, s2));
        let merged = TokenTable::absorb(vec![sh0, sh1], |pd| pd); // pd 0 → shard 0, pd 1 → shard 1
        assert_eq!(merged.len(), serial.len());
        let mc: Vec<u32> = merged.values().map(|x| x.count).collect();
        let sc: Vec<u32> = serial.values().map(|x| x.count).collect();
        assert_eq!(mc, sc);
        // Next allocation matches the serial table's.
        let mut merged = merged;
        let mut serial = serial;
        assert_eq!(merged.insert(0, batch(30)), serial.insert(0, batch(30)));
    }

    #[test]
    fn tree_parent_heap_layout() {
        assert_eq!(tree_parent(1), 0);
        assert_eq!(tree_parent(2), 0);
        assert_eq!(tree_parent(3), 1);
        assert_eq!(tree_parent(4), 1);
        assert_eq!(tree_parent(5), 2);
        assert_eq!(tree_parent(255), 127);
    }

    #[test]
    fn batch_latency_accounting() {
        // Two samples generated at 1s and 3s, received at 5s:
        // latencies 4s and 2s, mean 3s.
        let b = Batch {
            count: 2,
            sum_gen_ns: 4_000_000_000,
            ready_ns: 4_000_000_000,
            drain_apps: vec![],
            attempts: 0,
        };
        let lat = b.mean_latency_s(SimTime::from_secs_f64(5.0));
        assert!((lat - 3.0).abs() < 1e-9);
    }

    #[test]
    fn class_indices_are_distinct() {
        let mut seen = [false; 5];
        for c in ProcessClass::ALL {
            let i = class_idx(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn net_job_classes() {
        assert_eq!(
            NetJob::AppComm { app: 0 }.class(),
            ProcessClass::Application
        );
        assert_eq!(
            NetJob::Forward {
                token: 0,
                dest: Dest::Main
            }
            .class(),
            ProcessClass::ParadynDaemon
        );
        assert_eq!(
            NetJob::PvmdNet { node: 0 }.class(),
            ProcessClass::PvmDaemon
        );
        assert_eq!(NetJob::OtherNet { node: 0 }.class(), ProcessClass::Other);
    }
}
